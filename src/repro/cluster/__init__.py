"""Multi-node cluster simulation: fabric, steering, auto-scaling.

Grows the single-host NFVnice platform into a datacenter row:

* :mod:`~repro.cluster.fabric` — the wire model
  (:class:`~repro.cluster.fabric.FabricLink`: serialisation, latency,
  queue-cap drops, ECN) every topology edge is built from;
* :mod:`~repro.cluster.topology` — N :class:`~repro.platform.manager.
  NFManager` hosts on one event loop behind an
  :class:`~repro.cluster.topology.IngressPoint`;
* :mod:`~repro.cluster.steering` — the ingress load balancer binding
  flows to chain replica :class:`~repro.cluster.steering.Placement`\\ s;
* :mod:`~repro.cluster.autoscaler` — the elastic control loop
  instantiating/draining replicas from Monitor telemetry;
* :mod:`~repro.cluster.scenario` — the builder/runner producing standard
  :class:`~repro.experiments.common.ScenarioResult` objects.

Exports resolve lazily (PEP 562): :mod:`repro.platform.multihost` builds
its ``HostLink`` on :class:`~repro.cluster.fabric.FabricLink`, and eager
re-exports here would close an import cycle through
:mod:`repro.platform`.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.autoscaler import Autoscaler, ChainTemplate
    from repro.cluster.fabric import FabricLink
    from repro.cluster.scenario import ClusterScenario
    from repro.cluster.steering import FlowSteerer, Placement
    from repro.cluster.topology import (
        ClusterHost,
        ClusterTopology,
        IngressPoint,
    )

#: export name -> defining submodule.
_EXPORTS = {
    "Autoscaler": "repro.cluster.autoscaler",
    "ChainTemplate": "repro.cluster.autoscaler",
    "FabricLink": "repro.cluster.fabric",
    "ClusterScenario": "repro.cluster.scenario",
    "FlowSteerer": "repro.cluster.steering",
    "Placement": "repro.cluster.steering",
    "ClusterHost": "repro.cluster.topology",
    "ClusterTopology": "repro.cluster.topology",
    "IngressPoint": "repro.cluster.topology",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> object:
    module_path = _EXPORTS.get(name)
    if module_path is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_path), name)


def __dir__() -> "list[str]":  # pragma: no cover - introspection aid
    return sorted(set(globals()) | set(_EXPORTS))
