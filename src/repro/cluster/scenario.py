"""Builder + runner for cluster experiments (the multi-host Scenario).

Mirrors :class:`repro.experiments.common.Scenario`'s shape — construct,
add SLO classes and flows, ``run(duration_s)`` — but assembles a whole
:class:`~repro.cluster.topology.ClusterTopology` behind a steered
ingress instead of one manager behind one NIC, and summarises every
host into a single standard :class:`~repro.experiments.common.
ScenarioResult` so campaign digests, baselines and render tables reuse
the existing machinery unchanged:

* NF/chain names are replica- and host-qualified, so the merged ``nfs``
  / ``chains`` dicts never collide;
* ``core_utilization`` keys are ``host_index * 100 + core_id``;
* the cluster-only accounting — steering binds, autoscaler events,
  per-link fabric counters — rides ``result.resilience["cluster"]``,
  which :func:`repro.analysis.export.result_to_dict` already serialises
  (digest-covered, so a steering or scaling change cannot drift
  silently past a pinned baseline).

One :class:`~repro.obs.latency.FlowLatencyTracker` is shared by every
host, so a chain that completes on any machine lands in the same
per-flow histograms the SLO grid and the autoscaler's projection
trigger read.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, cast

from repro.cluster.autoscaler import Autoscaler, ChainTemplate
from repro.cluster.steering import FlowSteerer, Placement
from repro.cluster.topology import ClusterTopology, IngressPoint
from repro.experiments.common import (
    ChainSummary,
    NFSummary,
    ScenarioResult,
    feature_config,
)
from repro.metrics.timeseries import IntervalSampler
from repro.obs.latency import FlowLatencyTracker
from repro.platform.nic import NIC
from repro.platform.packet import Flow
from repro.sim.clock import SEC
from repro.sim.engine import EventLoop
from repro.sim.rng import RngFactory
from repro.traffic.generator import TrafficGenerator


class ClusterScenario:
    """One cluster configuration: topology, steering, flows, autoscaler."""

    def __init__(
        self,
        n_hosts: int,
        scheduler: str = "NORMAL",
        features: str = "NFVnice",
        seed: int = 0,
        ingress_latency_ns: int = 10_000,
        ingress_bps: float = 10e9,
        ingress_queue_cap_pkts: Optional[int] = None,
        ingress_ecn_mark_pkts: Optional[int] = None,
        **config_overrides: object,
    ) -> None:
        self.scheduler = scheduler
        self.features = features
        self.seed = int(seed)
        self.loop = EventLoop()
        self.rng_factory = RngFactory(seed)
        self.config = feature_config(features, None, **config_overrides)
        self.topology = ClusterTopology(
            self.loop, n_hosts, scheduler=scheduler, config=self.config,
            ingress_latency_ns=ingress_latency_ns,
            ingress_bps=ingress_bps,
            ingress_queue_cap_pkts=ingress_queue_cap_pkts,
            ingress_ecn_mark_pkts=ingress_ecn_mark_pkts,
        )
        self.steerer = FlowSteerer(seed=seed)
        self.ingress = IngressPoint(self.topology, self.steerer)
        # The generator only uses the NIC's ``receive`` surface, which
        # the ingress point provides.
        self.generator = TrafficGenerator(
            self.loop, cast(NIC, self.ingress),
            rng=self.rng_factory.stream("traffic"),
        )
        #: Shared across every host: cluster-wide flow/chain histograms.
        self.latency = FlowLatencyTracker(max_flows=512)
        for host in self.topology.hosts:
            host.manager.attach_telemetry(latency=self.latency)
        self.template: Optional[ChainTemplate] = None
        self.autoscaler: Optional[Autoscaler] = None
        self._slo_classes: Dict[str, int] = {}
        self._initial_placements: List[Tuple[int, int]] = []
        self._sampler: Optional[IntervalSampler] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_slo_class(self, name: str, slo_us: float) -> None:
        """Declare an end-to-end p99 sojourn budget (µs) for flows."""
        if slo_us <= 0:
            raise ValueError(f"SLO budget must be positive, got {slo_us!r}")
        self._slo_classes[name] = int(slo_us * 1e3)

    def set_chain(
        self,
        name: str,
        costs: Sequence[float],
        slo_us: Optional[float] = None,
        placements: Sequence[Tuple[int, int]] = ((0, 0),),
    ) -> None:
        """Declare the service chain and its initial replica placements.

        ``placements`` is a sequence of ``(host_index, core_id)`` slots;
        each gets one replica before the run starts.  Call once.
        """
        if self.template is not None:
            raise RuntimeError("set_chain may only be called once")
        self.template = ChainTemplate(name, costs, slo_us=slo_us)
        self._initial_placements = [(int(h), int(c)) for h, c in placements]

    def enable_autoscaler(
        self,
        slots: Sequence[Tuple[int, int]],
        period_ns: int = 5_000_000,
        up_load: float = 0.6,
        up_occupancy: float = 0.35,
        up_after: int = 2,
        down_load: float = 0.05,
        down_after: int = 20,
        cooldown_ns: int = 30_000_000,
    ) -> Autoscaler:
        """Attach an :class:`Autoscaler` over the free ``slots``."""
        if self.template is None:
            raise RuntimeError("set_chain before enable_autoscaler")
        if self.autoscaler is not None:
            raise RuntimeError("autoscaler already enabled")
        self.autoscaler = Autoscaler(
            self.topology, self.steerer, self.template, slots,
            latency=self.latency, period_ns=period_ns, up_load=up_load,
            up_occupancy=up_occupancy, up_after=up_after,
            down_load=down_load, down_after=down_after,
            cooldown_ns=cooldown_ns,
        )
        self.autoscaler.on_scale_out = self._on_scale_out
        return self.autoscaler

    def add_flow(
        self,
        flow_id: str,
        rate_pps: float,
        pkt_size: int = 64,
        protocol: str = "udp",
        slo_class: Optional[str] = None,
        **spec_kwargs: object,
    ) -> Flow:
        """Create a flow at cluster ingress (steered at first packet)."""
        slo_ns = None
        if slo_class is not None:
            if slo_class not in self._slo_classes:
                raise ValueError(
                    f"undeclared SLO class {slo_class!r}; declare it with "
                    f"add_slo_class() first")
            slo_ns = self._slo_classes[slo_class]
        flow = Flow(flow_id, pkt_size=pkt_size, protocol=protocol,
                    slo_ns=slo_ns)
        self.steerer.register_flow_rate(flow_id, rate_pps)
        self.generator.add_flow(flow, rate_pps, **spec_kwargs)
        return flow

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _materialise_placements(self) -> None:
        assert self.template is not None
        if self.autoscaler is not None:
            for host_idx, core_id in self._initial_placements:
                self.autoscaler.add_initial_placement(host_idx, core_id)
        else:
            # Static placement: instantiate replicas directly.
            seq = 0
            for host_idx, core_id in self._initial_placements:
                host = self.topology.hosts[host_idx]
                chain = self.template.instantiate(host, seq, core_id)
                seq += 1
                self.steerer.add_placement(
                    host, chain, self.topology.ingress_links[host.name])

    def _on_scale_out(self, placement: Placement) -> None:
        """Give a freshly scaled-out chain its own throughput probe."""
        sampler = self._sampler
        if sampler is not None:
            chain = placement.chain
            sampler.add_probe(
                f"tput:{chain.name}",
                (lambda c: (lambda: c.completed))(chain),
            )

    def run(self, duration_s: float = 1.0) -> ScenarioResult:
        """Run the cluster for ``duration_s`` simulated seconds."""
        from repro.check.sanitizer import current_sanitizer
        from repro.obs.session import current_session

        if self.template is None:
            raise RuntimeError("set_chain before run()")
        if not self.steerer.placements:
            self._materialise_placements()
        session = current_session()
        if session is not None:
            session.attach_cluster(self)
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            sanitizer.attach(self)
        sampler = IntervalSampler(self.loop, SEC)
        self._sampler = sampler
        for host in self.topology.hosts:
            for chain in host.manager.chains.values():
                sampler.add_probe(
                    f"tput:{chain.name}",
                    (lambda c: (lambda: c.completed))(chain),
                )
        self.topology.start()
        self.generator.start()
        sampler.start()
        if self.autoscaler is not None:
            self.autoscaler.start()
        self.loop.run_until(self.loop.now + int(duration_s * SEC))
        self.topology.finalize()
        result = self._summarise(duration_s, sampler)
        if sanitizer is not None:
            result.sanitizer_violations = sanitizer.finish_run(self)
        return result

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def _cluster_summary(self) -> Dict[str, object]:
        """The digest-covered cluster accounting block."""
        summary: Dict[str, object] = {
            "hosts": len(self.topology.hosts),
            "placements": len(self.steerer.placements),
            "active_placements": len(self.steerer.active_placements()),
            "flows_admitted": self.steerer.flows_admitted,
            "binds": {
                name: count for name, count in sorted(
                    self.steerer.binds_per_placement().items())
            },
            "ingress_packets": self.ingress.received_packets,
            "links": {
                link.name: link.counters() for link in self.topology.links
            },
        }
        if self.autoscaler is not None:
            summary["autoscaler"] = self.autoscaler.summary()
        return summary

    def _summarise(self, duration_s: float,
                   sampler: IntervalSampler) -> ScenarioResult:
        horizon_ns = duration_s * SEC
        chains: Dict[str, ChainSummary] = {}
        nfs: Dict[str, NFSummary] = {}
        core_utilization: Dict[int, float] = {}
        completed = wasted = entry = 0
        for host in self.topology.hosts:
            mgr = host.manager
            completed += mgr.total_completed
            wasted += mgr.total_wasted_drops
            entry += mgr.total_entry_discards
            for chain in mgr.chains.values():
                series = sampler[f"tput:{chain.name}"]
                chains[chain.name] = ChainSummary(
                    name=chain.name,
                    completed=chain.completed,
                    throughput_pps=chain.completed / duration_s,
                    throughput_bps=chain.completed_bytes * 8 / duration_s,
                    wasted_drop_pps=chain.wasted_drops / duration_s,
                    entry_discard_pps=chain.entry_discards / duration_s,
                    tput_series=series.summary(),
                    latency_p50_us=chain.latency_hist.median() / 1e3,
                    latency_p99_us=chain.latency_hist.percentile(99) / 1e3,
                )
            for nf in mgr.nfs:
                core = nf.core
                assert core is not None
                busy = core.stats.busy_ns + core.stats.overhead_ns
                nfs[nf.name] = NFSummary(
                    name=nf.name,
                    core_id=host.index * 100 + core.core_id,
                    processed=nf.processed_packets,
                    processed_pps=nf.processed_packets / duration_s,
                    wasted_pps=nf.wasted_processed / duration_s,
                    rx_drop_pps=nf.rx_ring.dropped_total / duration_s,
                    runtime_s=nf.stats.runtime_ns / SEC,
                    cpu_share=(nf.stats.runtime_ns / busy)
                    if busy > 0 else 0.0,
                    cswch_per_s=nf.stats.voluntary_switches / duration_s,
                    nvcswch_per_s=nf.stats.involuntary_switches / duration_s,
                    avg_sched_delay_ms=nf.stats.avg_sched_delay_ns / 1e6,
                    weight=nf.weight,
                    rx_drops_by_reason={
                        k: nf.rx_ring.drops_by_reason[k]
                        for k in sorted(nf.rx_ring.drops_by_reason)
                    },
                    restarts=nf.restarts,
                )
            for core_id, core in mgr.cores.items():
                core_utilization[host.index * 100 + core_id] = \
                    core.stats.utilization(horizon_ns)
        return ScenarioResult(
            scheduler=self.scheduler,
            features=self.features,
            duration_s=duration_s,
            total_throughput_pps=completed / duration_s,
            total_wasted_pps=wasted / duration_s,
            total_entry_discard_pps=entry / duration_s,
            chains=chains,
            nfs=nfs,
            core_utilization=core_utilization,
            series=dict(sampler.series),
            resilience={"cluster": self._cluster_summary()},
            loop_stats=self.loop.stats_dict(),
            flow_latency=self.latency.to_dict(),
        )
