"""Inter-host fabric links: the wire model of the cluster.

Generalises :class:`repro.platform.multihost.HostLink` (the pairwise
host-to-host wire of paper §3.3) into a reusable link primitive an
arbitrary topology graph can be built from.  A :class:`FabricLink` models
one direction of one wire:

* **serialisation** — packets occupy the wire for ``wire_bits / link_bps``
  seconds; back-to-back sends queue behind ``busy_until`` exactly like the
  original ``HostLink`` (same float arithmetic, so existing cross-host
  digests are unchanged);
* **propagation** — delivery lands ``latency_ns`` after serialisation
  completes;
* **queue cap** — at most ``queue_cap_pkts`` packets may be in flight
  (serialising + propagating); the excess is dropped and charged to
  ``flow.stats.queue_drops`` so the sanitizer's packet-conservation
  identity keeps holding across the fabric;
* **ECN** — when the in-flight backlog exceeds ``ecn_mark_pkts``,
  responsive (TCP) flows are CE-marked with the same semantics as
  :meth:`repro.core.ecn.ECNMarker.mark`, extending the paper's cross-host
  congestion signal to fabric queues.

Counters (``carried_packets``, ``carried_bytes``, ``dropped_packets``,
``ecn_marked``, ``in_flight``) are exported as labelled Prometheus
gauges/counters by :meth:`repro.obs.session.ObsSession.
register_link_metrics`; drop and mark events are published on an attached
PR 1 event bus as ``link.drop`` / ``link.ecn``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.platform.nic import WIRE_OVERHEAD_BYTES
from repro.platform.packet import Flow
from repro.sim.clock import SEC
from repro.sim.engine import EventLoop

#: Delivery callback: ``(flow, count, origin_ns)`` at the arrival instant.
DeliverFn = Callable[[Flow, int, int], None]


class FabricLink:
    """One directed link of the cluster fabric."""

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        deliver: DeliverFn,
        latency_ns: int = 10_000,
        link_bps: float = 10e9,
        queue_cap_pkts: Optional[int] = None,
        ecn_mark_pkts: Optional[int] = None,
    ) -> None:
        if queue_cap_pkts is not None and queue_cap_pkts <= 0:
            raise ValueError(
                f"queue_cap_pkts must be positive, got {queue_cap_pkts!r}")
        if ecn_mark_pkts is not None and ecn_mark_pkts < 0:
            raise ValueError(
                f"ecn_mark_pkts must be >= 0, got {ecn_mark_pkts!r}")
        self.loop = loop
        self.name = name
        self.latency_ns = int(latency_ns)
        self.link_bps = float(link_bps)
        self.queue_cap_pkts = queue_cap_pkts
        self.ecn_mark_pkts = ecn_mark_pkts
        self._deliver: DeliverFn = deliver
        self._busy_until: float = 0.0
        #: Packets accepted onto the wire (serialising or propagating).
        self.in_flight: int = 0
        self.carried_packets: int = 0
        self.carried_bytes: int = 0
        self.dropped_packets: int = 0
        self.ecn_marked: int = 0
        #: Optional :class:`repro.obs.bus.EventBus` publishing
        #: ``link.drop`` / ``link.ecn`` events.
        self.bus: Optional[Any] = None

    # ------------------------------------------------------------------
    def send(self, flow: Flow, count: int, now_ns: int,
             origin_ns: Optional[int] = None) -> int:
        """Offer ``count`` packets of ``flow`` to the wire.

        Returns how many were accepted; the rest were queue-capped drops,
        already charged to ``flow.stats.queue_drops``.  ``origin_ns``
        rides through to delivery so end-to-end latency spans the fabric.
        """
        if count <= 0:
            return 0
        origin = int(now_ns) if origin_ns is None else int(origin_ns)
        cap = self.queue_cap_pkts
        if cap is not None and self.in_flight + count > cap:
            accepted = max(0, cap - self.in_flight)
            dropped = count - accepted
            self.dropped_packets += dropped
            flow.stats.queue_drops += dropped
            if self.bus is not None and self.bus.active:
                self.bus.publish("link.drop", self.name, count=dropped,
                                 in_flight=self.in_flight)
            if accepted == 0:
                return 0
            count = accepted
        # Serialise onto the wire (link-rate cap), then propagate — the
        # exact HostLink arithmetic, kept bit-identical.
        wire_bits = count * (flow.pkt_size + WIRE_OVERHEAD_BYTES) * 8
        start = max(float(now_ns), self._busy_until)
        done = start + wire_bits * SEC / self.link_bps
        self._busy_until = done
        arrival = done + self.latency_ns
        self.in_flight += count
        self.carried_packets += count
        self.carried_bytes += count * flow.pkt_size
        mark_at = self.ecn_mark_pkts
        if mark_at is not None and self.in_flight > mark_at:
            self._mark(flow, count, int(now_ns))
        n = count

        def deliver_event() -> None:
            self.in_flight -= n
            self._deliver(flow, n, origin)

        self.loop.call_at(arrival, deliver_event)
        return count

    def _mark(self, flow: Flow, count: int, now_ns: int) -> None:
        """CE-mark a responsive flow (ECNMarker.mark semantics)."""
        if not flow.responsive:
            return
        flow.stats.ecn_marks += count
        self.ecn_marked += count
        if self.bus is not None and self.bus.active:
            self.bus.publish("link.ecn", self.name, count=count,
                             flow=flow.flow_id)
        if flow.tcp is not None:
            flow.tcp.on_ecn_mark(count, now_ns)

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """JSON-safe counter snapshot (digest material for results)."""
        return {
            "carried_packets": self.carried_packets,
            "carried_bytes": self.carried_bytes,
            "dropped_packets": self.dropped_packets,
            "ecn_marked": self.ecn_marked,
            "in_flight": self.in_flight,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FabricLink({self.name!r}, {self.latency_ns}ns, "
                f"{self.link_bps / 1e9:g}Gbps)")
