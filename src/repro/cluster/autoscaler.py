"""Online VNF auto-scaling driven by the Monitor's telemetry.

The elastic half of the cluster (*Online VNF Scaling in Datacenters*):
a periodic control loop that instantiates or drains chain replicas
(:class:`~repro.cluster.steering.Placement`) from a declarative
:class:`ChainTemplate`, using the same per-host signals the paper's
Monitor computes every millisecond (§3.5).

**Scale-out** fires when *every* active placement is pressured for
``up_after`` consecutive evaluations (one replica struggling is a
balancing problem; all of them struggling is a capacity problem) and the
cooldown has expired.  A placement is pressured when any of:

* its CPU demand — the Monitor's ``sum(lambda_i * s_i)`` over the
  replica's NFs — reaches ``up_load`` of a core.  This is the
  *predictive* trigger: demand approaching 1.0 means unbounded queue
  growth, so the replica scales before its rings ever fill;
* its worst Rx-ring occupancy reaches ``up_occupancy`` (the reactive
  trigger, same signal the backpressure watermarks use);
* its live p99 sojourn projects an SLO miss
  (:func:`~repro.sched.deadline.project_slo_miss`, PR 7's governor
  predicate) against the template's budget.

The new replica lands on the next free ``(host, core)`` slot, preferring
the host with the fewest live placements (ties by slot order — fully
deterministic).  Its NFs join the running platform through the
post-start ``add_nf`` path (dynamic membership), so the wakeup scan,
Monitor and a Tx thread adopt them on the next tick.

**Scale-in** drains the newest placement whose demand stayed under
``down_load`` for ``down_after`` consecutive evaluations — never the
last active one — by retiring it from the steerer: bound flows keep
flowing, new flows stop arriving.  ``up_after``/``down_after`` plus the
shared ``cooldown_ns`` are the hysteresis that keeps the loop from
flapping on bursty arrivals.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.steering import FlowSteerer, Placement
from repro.cluster.topology import ClusterHost, ClusterTopology
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.chain import ServiceChain
from repro.sched.deadline import project_slo_miss
from repro.sim.clock import MSEC
from repro.sim.engine import EventHandle


class ChainTemplate:
    """What one chain replica looks like: NF costs and an SLO budget."""

    def __init__(self, name: str, costs: Sequence[float],
                 slo_us: Optional[float] = None) -> None:
        if not costs:
            raise ValueError("a chain template needs >= 1 NF cost")
        if slo_us is not None and slo_us <= 0:
            raise ValueError(f"SLO budget must be positive, got {slo_us!r}")
        self.name = name
        self.costs = tuple(float(c) for c in costs)
        self.slo_us = None if slo_us is None else float(slo_us)

    def instantiate(self, host: ClusterHost, replica: int,
                    core_id: int) -> ServiceChain:
        """Build replica ``replica`` of this chain on ``host``.

        NF and chain names embed the replica index and host so they stay
        unique cluster-wide (``svc~r2.nf1@h1``); all NFs of a replica
        share one core — the slot the autoscaler allocated.
        """
        manager = host.manager
        chain_name = f"{self.name}~r{replica}@{host.name}"
        nfs: List[NFProcess] = []
        for i, cost in enumerate(self.costs, start=1):
            nf = NFProcess(f"{self.name}~r{replica}.nf{i}@{host.name}",
                           FixedCost(cost), config=manager.config)
            manager.add_nf(nf, core_id=core_id)
            nfs.append(nf)
        return manager.add_chain(chain_name, nfs)


class Autoscaler:
    """Hysteretic scale-out/scale-in of chain replicas across hosts."""

    def __init__(
        self,
        topology: ClusterTopology,
        steerer: FlowSteerer,
        template: ChainTemplate,
        slots: Sequence[Tuple[int, int]],
        latency: Optional[Any] = None,
        period_ns: int = 5 * MSEC,
        up_load: float = 0.6,
        up_occupancy: float = 0.35,
        up_after: int = 2,
        down_load: float = 0.05,
        down_after: int = 20,
        cooldown_ns: int = 30 * MSEC,
        occupancy_threshold: float = 0.5,
        headroom: float = 0.8,
    ) -> None:
        if up_after < 1 or down_after < 1:
            raise ValueError("up_after and down_after must be >= 1")
        if not 0.0 < up_load:
            raise ValueError(f"up_load must be positive, got {up_load!r}")
        self.topology = topology
        self.steerer = steerer
        self.template = template
        #: Free (host index, core id) capacity replicas may land on, in
        #: preference order.
        self.slots = [(int(h), int(c)) for h, c in slots]
        for h, _c in self.slots:
            if not 0 <= h < len(topology.hosts):
                raise ValueError(f"slot host {h} outside the cluster")
        #: Optional shared :class:`~repro.obs.latency.FlowLatencyTracker`
        #: (the SLO-projection trigger is inert without it).
        self.latency = latency
        self.period_ns = int(period_ns)
        self.up_load = float(up_load)
        self.up_occupancy = float(up_occupancy)
        self.up_after = int(up_after)
        self.down_load = float(down_load)
        self.down_after = int(down_after)
        self.cooldown_ns = int(cooldown_ns)
        self.occupancy_threshold = float(occupancy_threshold)
        self.headroom = float(headroom)
        #: Scaling actions in event order:
        #: {"t_ns", "kind", "placement", "host", "core"}.
        self.events: List[Dict[str, Any]] = []
        self.scale_outs = 0
        self.scale_ins = 0
        self.evaluations = 0
        #: Called with each new placement right after scale-out (the
        #: scenario hooks sampler probes and metrics here).
        self.on_scale_out: Optional[Callable[[Placement], None]] = None
        self._used_slots: List[Tuple[int, int]] = []
        self._replica_seq = 0
        self._up_streak = 0
        self._down_streaks: Dict[str, int] = {}
        self._last_action_ns: Optional[int] = None
        self._handle: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def add_initial_placement(self, host_index: int,
                              core_id: int) -> Placement:
        """Instantiate a replica before the run starts (static seed)."""
        placement = self._instantiate(host_index, core_id)
        self._used_slots.append((host_index, core_id))
        return placement

    def start(self) -> None:
        if self._handle is None:
            self._handle = self.topology.loop.call_every(
                self.period_ns, self._tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.topology.loop.now
        self.evaluations += 1
        active = self.steerer.active_placements()
        if not active:
            return
        snapshots: Dict[str, Dict[str, Dict[str, float]]] = {}
        loads: Dict[str, float] = {}
        pressured = 0
        for placement in active:
            load, pressure = self._evaluate(placement, now, snapshots)
            loads[placement.placement_id] = load
            if pressure:
                pressured += 1
        if pressured == len(active):
            self._up_streak += 1
        else:
            self._up_streak = 0
        if (self._up_streak >= self.up_after
                and self._cooldown_over(now)
                and self._scale_out(now)):
            self._up_streak = 0
            return
        self._consider_scale_in(active, loads, now)

    def _evaluate(
        self,
        placement: Placement,
        now_ns: int,
        snapshots: Dict[str, Dict[str, Dict[str, float]]],
    ) -> Tuple[float, bool]:
        """(CPU demand, pressured?) for one placement."""
        host = placement.host
        snap = snapshots.get(host.name)
        if snap is None:
            monitor = host.manager.monitor
            snap = (monitor.cluster_snapshot(now_ns)
                    if monitor is not None else {})
            snapshots[host.name] = snap
        load = 0.0
        occupancy = 0.0
        for nf in placement.chain.nfs:
            row = snap.get(nf.name)
            if row is not None:
                load += row["load"]
                occ = row["rx_occupancy"]
            else:
                # No Monitor on this host (cgroups off): fall back to the
                # ring state the watermarks already read.
                occ = nf.rx_ring.occupancy()
            if occ > occupancy:
                occupancy = occ
        if load >= self.up_load or occupancy >= self.up_occupancy:
            return load, True
        slo_us = self.template.slo_us
        if slo_us is not None and self.latency is not None:
            hist = self.latency.chains.get(placement.chain.name)
            if hist is not None:
                self.latency._flush()
                p99_us = hist.percentile(99.0) / 1e3
                if project_slo_miss(p99_us, slo_us, occupancy,
                                    self.occupancy_threshold,
                                    self.headroom):
                    return load, True
        return load, False

    def _cooldown_over(self, now_ns: int) -> bool:
        last = self._last_action_ns
        return last is None or now_ns - last >= self.cooldown_ns

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _free_slots(self) -> List[Tuple[int, int]]:
        return [s for s in self.slots if s not in self._used_slots]

    def _pick_slot(self) -> Optional[Tuple[int, int]]:
        """Least-crowded host first, slot declaration order second."""
        free = self._free_slots()
        if not free:
            return None
        occupancy = {host.name: 0 for host in self.topology.hosts}
        for placement in self.steerer.placements:
            occupancy[placement.host.name] += 1
        return min(free, key=lambda s: (
            occupancy[self.topology.hosts[s[0]].name], free.index(s)))

    def _instantiate(self, host_index: int, core_id: int) -> Placement:
        host = self.topology.hosts[host_index]
        chain = self.template.instantiate(host, self._replica_seq, core_id)
        self._replica_seq += 1
        return self.steerer.add_placement(
            host, chain, self.topology.ingress_links[host.name])

    def _scale_out(self, now_ns: int) -> bool:
        slot = self._pick_slot()
        if slot is None:
            return False
        placement = self._instantiate(slot[0], slot[1])
        self._used_slots.append(slot)
        self._last_action_ns = now_ns
        self.scale_outs += 1
        self.events.append({
            "t_ns": int(now_ns), "kind": "scale_out",
            "placement": placement.placement_id,
            "host": placement.host.name, "core": slot[1],
        })
        if self.on_scale_out is not None:
            self.on_scale_out(placement)
        return True

    def _consider_scale_in(self, active: List[Placement],
                           loads: Dict[str, float], now_ns: int) -> None:
        for placement in active:
            pid = placement.placement_id
            if loads[pid] < self.down_load:
                self._down_streaks[pid] = self._down_streaks.get(pid, 0) + 1
            else:
                self._down_streaks[pid] = 0
        if len(active) <= 1 or not self._cooldown_over(now_ns):
            return
        # Drain the newest idle placement (reverse creation order) so the
        # cluster contracts the way it grew.
        for placement in reversed(active):
            pid = placement.placement_id
            if self._down_streaks.get(pid, 0) >= self.down_after:
                self.steerer.retire_placement(placement)
                self._down_streaks[pid] = 0
                self._last_action_ns = now_ns
                self.scale_ins += 1
                self.events.append({
                    "t_ns": int(now_ns), "kind": "scale_in",
                    "placement": pid, "host": placement.host.name,
                    "core": (placement.chain.nfs[0].core.core_id
                             if placement.chain.nfs[0].core is not None
                             else -1),
                })
                return

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-safe control-loop summary (digest material)."""
        return {
            "evaluations": self.evaluations,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "replicas": self._replica_seq,
            "events": list(self.events),
        }
