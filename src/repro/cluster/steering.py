"""Cluster-level flow steering: ingress admission and replica balancing.

A :class:`Placement` is one runnable replica of the service chain — a
concrete :class:`~repro.platform.chain.ServiceChain` instantiated on one
host, reachable over that host's ingress link.  The :class:`FlowSteerer`
is the cluster's load balancer: each new flow is bound to the active
placement with the least assigned offered load, ties broken by a seeded
hash of ``(flow_id, placement_id)`` so the choice is stable under
insertion order, worker count and ``PYTHONHASHSEED``.

Binding is **permanent** (flow-level ECMP, not per-packet spraying): the
platform's ``flow.chain`` backref is read by ring accounting, Tx routing
and libnf on every hop, so moving a flow with packets still queued on
its old host would route those packets through the new host's chain.
Elasticity instead comes from *late* binding — a flow that first sends
after a scale-out lands on the new replica — which matches how
connection-affine L4 balancers behave in front of autoscaled backends.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, TYPE_CHECKING

from repro.platform.chain import ServiceChain
from repro.platform.packet import Flow

from repro.cluster.fabric import FabricLink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterHost


class Placement:
    """One chain replica on one host, addressable from cluster ingress."""

    def __init__(self, placement_id: str, host: "ClusterHost",
                 chain: ServiceChain, link: FabricLink) -> None:
        self.placement_id = placement_id
        self.host = host
        self.chain = chain
        self.link = link
        #: Deactivated placements keep serving bound flows but receive no
        #: new bindings (scale-in).
        self.active = True
        self.assigned_flows = 0
        #: Sum of the declared offered rates of bound flows — the load
        #: signal the balancer spreads on.
        self.assigned_pps = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "drained"
        return (f"Placement({self.placement_id!r} on {self.host.name}, "
                f"{self.assigned_flows} flows, {state})")


class FlowSteerer:
    """Binds flows to chain placements at cluster ingress."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.placements: List[Placement] = []
        self._by_flow: Dict[str, Placement] = {}
        #: Declared offered rate per flow (registered by the scenario
        #: builder) so the balancer can weigh a bind before any packets.
        self._rates: Dict[str, float] = {}
        #: Bind log, in event order: {"t_ns", "flow", "placement"}.
        self.binds: List[Dict[str, Any]] = []
        self.flows_admitted = 0

    # ------------------------------------------------------------------
    # Placement lifecycle
    # ------------------------------------------------------------------
    def add_placement(self, host: "ClusterHost", chain: ServiceChain,
                      link: FabricLink) -> Placement:
        """Register a chain replica; its id is the chain's unique name."""
        for existing in self.placements:
            if existing.placement_id == chain.name:
                raise ValueError(f"duplicate placement {chain.name!r}")
        placement = Placement(chain.name, host, chain, link)
        self.placements.append(placement)
        return placement

    def retire_placement(self, placement: Placement) -> None:
        """Scale-in: stop offering ``placement`` to new flows.

        Bound flows keep flowing (binding is permanent); the placement
        drains as they expire.
        """
        placement.active = False

    def active_placements(self) -> List[Placement]:
        return [p for p in self.placements if p.active]

    # ------------------------------------------------------------------
    # Flow admission
    # ------------------------------------------------------------------
    def register_flow_rate(self, flow_id: str, rate_pps: float) -> None:
        """Declare a flow's offered rate for load-aware binding."""
        self._rates[flow_id] = float(rate_pps)

    def placement_of(self, flow: Flow, now_ns: int) -> Placement:
        """The flow's placement, binding it on first sight."""
        placement = self._by_flow.get(flow.flow_id)
        if placement is None:
            placement = self._bind(flow, now_ns)
        return placement

    def _tiebreak(self, flow_id: str, placement_id: str) -> int:
        """Seeded, hash-seed-independent tie-break key."""
        key = f"{flow_id}|{placement_id}|{self.seed}".encode()
        return zlib.crc32(key)

    def _bind(self, flow: Flow, now_ns: int) -> Placement:
        candidates = self.active_placements()
        if not candidates:
            raise RuntimeError(
                f"no active placements to bind flow {flow.flow_id!r}")
        fid = flow.flow_id
        best = min(
            candidates,
            key=lambda p: (p.assigned_pps, p.assigned_flows,
                           self._tiebreak(fid, p.placement_id)),
        )
        best.assigned_flows += 1
        best.assigned_pps += self._rates.get(fid, 0.0)
        best.host.manager.install_flow(flow, best.chain)
        self._by_flow[fid] = best
        self.flows_admitted += 1
        self.binds.append({
            "t_ns": int(now_ns), "flow": fid,
            "placement": best.placement_id,
        })
        return best

    def binds_per_placement(self) -> Dict[str, int]:
        """Bound-flow counts keyed by placement id (result material)."""
        counts = {p.placement_id: 0 for p in self.placements}
        for placement in self._by_flow.values():
            counts[placement.placement_id] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowSteerer({len(self.placements)} placements, "
                f"{self.flows_admitted} flows)")
