"""N-host cluster topology: many NF managers, one event loop, one fabric.

The paper schedules NF chains on a single OpenNetVM host; the cluster
layer grows that into a datacenter row (*DCSim*'s host/cluster split):

* each :class:`ClusterHost` wraps a full, unmodified
  :class:`~repro.platform.manager.NFManager` — NIC, Rx/Tx threads,
  wakeup, backpressure, cgroups, Monitor — on the **shared**
  :class:`~repro.sim.engine.EventLoop`, so cross-host causality needs no
  synchronization protocol;
* hosts hang off a :class:`~repro.cluster.fabric.FabricLink` graph.  The
  stock shape is a star — one ingress link per host, modelling the
  ToR-to-host wire — and :meth:`ClusterTopology.connect` adds arbitrary
  host-to-host edges (a chain spanning machines, paper §3.3) on top;
* the :class:`IngressPoint` duck-types the NIC surface the
  :class:`~repro.traffic.generator.TrafficGenerator` drives
  (``receive(flow, count, now_ns)``) and forwards each batch over the
  bound placement's ingress link, so cluster scenarios reuse every
  arrival model unchanged.

Flows bind to a placement at their **first packet** (see
:mod:`repro.cluster.steering`): the ``flow.chain`` backref that rings,
Tx routing and libnf consult is single-valued, so a bound flow can never
be re-steered mid-run — late binding is what lets a flash crowd land on
replicas that did not exist when the run started.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.cluster.fabric import FabricLink
from repro.platform.config import PlatformConfig
from repro.platform.manager import NFManager
from repro.platform.nic import NIC
from repro.platform.packet import Flow
from repro.sim.clock import USEC
from repro.sim.engine import EventLoop

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.steering import FlowSteerer
    from repro.platform.multihost import HostLink


class ClusterHost:
    """One machine of the cluster: an index, a name, and its manager."""

    def __init__(self, index: int, manager: NFManager) -> None:
        self.index = index
        self.name = f"h{index}"
        self.manager = manager

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterHost({self.name}, nfs={len(self.manager.nfs)})"


class ClusterTopology:
    """N hosts on one event loop, wired by a fabric link graph."""

    def __init__(
        self,
        loop: EventLoop,
        n_hosts: int,
        scheduler: str = "NORMAL",
        config: Optional[PlatformConfig] = None,
        ingress_latency_ns: int = 10 * USEC,
        ingress_bps: float = 10e9,
        ingress_queue_cap_pkts: Optional[int] = None,
        ingress_ecn_mark_pkts: Optional[int] = None,
    ) -> None:
        if n_hosts < 1:
            raise ValueError(f"a cluster needs >= 1 host, got {n_hosts}")
        self.loop = loop
        self.config = config if config is not None else PlatformConfig()
        self.hosts: List[ClusterHost] = []
        #: Every fabric link of the topology (ingress star + host-host
        #: edges), in creation order — the sanitizer folds their
        #: ``in_flight`` into packet conservation.
        self.links: List[FabricLink] = []
        #: host name -> its ToR-to-host ingress link.
        self.ingress_links: Dict[str, FabricLink] = {}
        for i in range(n_hosts):
            manager = NFManager(
                loop, scheduler=scheduler, config=self.config,
                nic=NIC(name=f"h{i}.nic"),
            )
            host = ClusterHost(i, manager)
            self.hosts.append(host)
            link = FabricLink(
                loop,
                name=f"ingress->{host.name}",
                deliver=self._deliver_to(host),
                latency_ns=ingress_latency_ns,
                link_bps=ingress_bps,
                queue_cap_pkts=ingress_queue_cap_pkts,
                ecn_mark_pkts=ingress_ecn_mark_pkts,
            )
            self.ingress_links[host.name] = link
            self.links.append(link)
        self._started = False

    def _deliver_to(self, host: ClusterHost
                    ) -> Callable[[Flow, int, int], None]:
        def deliver(flow: Flow, count: int, origin_ns: int) -> None:
            host.manager.nic.rx_ring.enqueue(
                flow, count, self.loop.now, origin_ns=origin_ns)
        return deliver

    # ------------------------------------------------------------------
    def host(self, index: int) -> ClusterHost:
        return self.hosts[index]

    def connect(self, upstream: int, downstream: int,
                latency_ns: int = 10 * USEC,
                link_bps: float = 10e9) -> "HostLink":
        """Add a host-to-host edge (a chain segment spanning machines)."""
        # Deferred: repro.platform.multihost builds on repro.cluster.fabric,
        # so a module-level import here would be circular.
        from repro.platform.multihost import HostLink

        link = HostLink(
            self.loop,
            self.hosts[upstream].manager,
            self.hosts[downstream].manager,
            latency_ns=latency_ns,
            link_bps=link_bps,
        )
        self.links.append(link)
        return link

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every host's manager threads; idempotent."""
        if self._started:
            return
        self._started = True
        for host in self.hosts:
            host.manager.start()

    def finalize(self) -> None:
        """Close per-core idle accounting on every host."""
        for host in self.hosts:
            host.manager.finalize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClusterTopology(hosts={len(self.hosts)}, "
                f"links={len(self.links)})")


class IngressPoint:
    """The cluster's front door: a duck-typed NIC the generator feeds.

    Exposes exactly the surface :class:`~repro.traffic.generator.
    TrafficGenerator` uses (``receive``) plus the counters observability
    reads.  Each batch is steered to the flow's bound placement — binding
    happens on the first packet — and forwarded over that host's ingress
    link with ``origin_ns = now``, so end-to-end sojourn includes the
    fabric.
    """

    def __init__(self, topology: ClusterTopology,
                 steerer: "FlowSteerer") -> None:
        self.topology = topology
        self.steerer = steerer
        self.received_packets = 0
        self.received_bytes = 0

    def receive(self, flow: Flow, count: int, now_ns: int) -> int:
        """Admit ``count`` packets of ``flow`` into the cluster."""
        placement = self.steerer.placement_of(flow, now_ns)
        self.received_packets += count
        self.received_bytes += count * flow.pkt_size
        return placement.link.send(flow, count, now_ns)
