"""Runtime invariant sanitizer (``repro run --sanitize``).

The static half of :mod:`repro.check` keeps nondeterminism out of the
source; this half checks that a *run* obeyed the simulator's conservation
laws.  All checks are exact — integer identities or monotonicity, never
tolerances — so a single lost packet or nanosecond is a violation:

* **packet conservation** — every packet the generator offered is
  delivered, discarded at entry, dropped at a ring, unroutable, or still
  queued somewhere at the horizon.
* **core time accounting** — ``busy_ns + overhead_ns + idle_ns`` equals
  the core's lifetime exactly, in integer nanoseconds.
* **vruntime monotonicity** — a CFS runqueue's ``min_vruntime`` never
  decreases.
* **ring occupancy** — every ring's depth stays within ``[0, capacity]``
  and its flow identity holds: ``enqueued == dequeued + purged + len``,
  ``dropped_total == sum(drops_by_reason)``.
* **non-negative counters** — no flow/ring/core/task counter underflows.

End-of-run checks are free (one pass over the platform's counters).
``per_tick=True`` additionally samples the monotonicity/occupancy checks
on a fixed cadence (default 1 ms — the Monitor's tick), catching
transients that a later compensating bug would mask; cost is one event
per tick per run.

Violations are :class:`SanitizerViolation` records surfaced in
``ScenarioResult.sanitizer_violations`` (serialised by
:mod:`repro.analysis.export`, so a violating run changes its digest —
and a clean ``--sanitize`` run digests identically to a normal run).

Activation follows the observability-session pattern::

    sanitizer = Sanitizer(per_tick=True)
    activate_sanitizer(sanitizer)
    try:
        result = scenario.run(...)   # Scenario.run attaches automatically
    finally:
        deactivate_sanitizer()
    assert not result.sanitizer_violations
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SanitizerViolation",
    "Sanitizer",
    "activate_sanitizer",
    "current_sanitizer",
    "deactivate_sanitizer",
]


@dataclass(frozen=True)
class SanitizerViolation:
    """One failed invariant.

    ``check`` names the invariant class, ``subject`` the entity
    (``core:0``, ``ring:nf1.rx``, ``flow:f0`` …), ``time_ns`` when it was
    detected (the horizon for end-of-run checks).
    """

    check: str
    subject: str
    message: str
    time_ns: int

    def render(self) -> str:
        return (f"[sanitize] {self.check} {self.subject} "
                f"at t={self.time_ns}ns: {self.message}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "subject": self.subject,
            "message": self.message,
            "time_ns": self.time_ns,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SanitizerViolation":
        return cls(
            check=str(data["check"]),
            subject=str(data["subject"]),
            message=str(data["message"]),
            time_ns=int(data["time_ns"]),
        )


class Sanitizer:
    """Installs the invariant checks on every scenario it is attached to.

    One sanitizer may serve many sequential scenario runs (a sweep grid);
    ``violations`` accumulates across runs while each
    :class:`~repro.experiments.common.ScenarioResult` carries only its own
    run's records.
    """

    def __init__(self, per_tick: bool = False, tick_ns: int = 1_000_000):
        self.per_tick = per_tick
        self.tick_ns = int(tick_ns)
        #: All violations across every run this sanitizer observed.
        self.violations: List[SanitizerViolation] = []
        self.runs = 0
        self._scenario: Optional[Any] = None
        self._run_violations: List[SanitizerViolation] = []
        #: Keyed by core_id on a single-host scenario, by
        #: ``(host, core_id)`` on a cluster.
        self._min_vruntime_seen: Dict[Any, float] = {}
        self._tick_handle: Optional[Any] = None

    @staticmethod
    def _iter_managers(scenario: Any) -> Iterator[Tuple[str, Any]]:
        """(subject prefix, NFManager) per platform of ``scenario``.

        A single-host :class:`~repro.experiments.common.Scenario` has one
        ``manager`` and an empty prefix (existing subjects unchanged); a
        :class:`~repro.cluster.scenario.ClusterScenario` exposes a
        ``topology`` whose hosts each carry a manager, prefixed with the
        host name so a violating ring is attributable to its machine.
        """
        topology = getattr(scenario, "topology", None)
        if topology is not None:
            for host in topology.hosts:
                yield f"{host.name}.", host.manager
        else:
            yield "", scenario.manager

    # ------------------------------------------------------------------
    # Run lifecycle (driven by Scenario.run)
    # ------------------------------------------------------------------
    def attach(self, scenario: Any) -> None:
        """Begin observing ``scenario`` (called once, before start)."""
        self._scenario = scenario
        self._run_violations = []
        self._min_vruntime_seen = {}
        if self.per_tick:
            self._tick_handle = scenario.loop.call_every(
                self.tick_ns, self._tick)

    def finish_run(self, scenario: Any) -> List[SanitizerViolation]:
        """Run the end-of-run checks; returns this run's violations."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        if scenario is not self._scenario:
            # finish without a matching attach (manual use): still check.
            self._run_violations = []
            self._min_vruntime_seen = {}
        now = scenario.loop.now
        self._check_packet_conservation(scenario, now)
        for prefix, mgr in self._iter_managers(scenario):
            self._check_time_accounting(mgr, now, prefix)
            self._check_vruntime(mgr, now, prefix)
            self._check_rings(mgr, now, prefix)
        self._check_non_negative(scenario, now)
        self.runs += 1
        out = self._run_violations
        self.violations.extend(out)
        self._scenario = None
        self._run_violations = []
        return out

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _report(self, check: str, subject: str, message: str,
                time_ns: int) -> None:
        self._run_violations.append(
            SanitizerViolation(check, subject, message, time_ns))

    def _tick(self) -> None:
        scenario = self._scenario
        if scenario is None:
            return
        now = scenario.loop.now
        for prefix, mgr in self._iter_managers(scenario):
            self._check_vruntime(mgr, now, prefix)
            for name, ring in self._iter_rings(mgr):
                if not 0 <= len(ring) <= ring.capacity:
                    self._report(
                        "ring-occupancy", f"ring:{prefix}{name}",
                        f"depth {len(ring)} outside [0, {ring.capacity}]",
                        now)

    @staticmethod
    def _iter_rings(mgr: Any) -> Iterator[Tuple[str, Any]]:
        yield "nic.rx", mgr.nic.rx_ring
        for nf in mgr.nfs:
            yield f"{nf.name}.rx", nf.rx_ring
            yield f"{nf.name}.tx", nf.tx_ring

    def _check_packet_conservation(self, scenario: Any, now: int) -> None:
        delivered = entry = drops = offered = 0
        seen = set()
        for spec in scenario.generator.specs:
            f = spec.flow
            if id(f) in seen:  # two specs may drive one flow object
                continue
            seen.add(id(f))
            offered += f.stats.offered
            delivered += f.stats.delivered
            entry += f.stats.entry_discards
            drops += f.stats.queue_drops
        unroutable = in_flight = 0
        for _prefix, mgr in self._iter_managers(scenario):
            if mgr.rx_thread is not None:
                unroutable += mgr.rx_thread.unroutable
            in_flight += sum(
                len(ring) for _n, ring in self._iter_rings(mgr))
        topology = getattr(scenario, "topology", None)
        if topology is not None:
            # Packets serialising/propagating on fabric links are neither
            # in a ring nor delivered yet: they are the wire's in-flight.
            in_flight += sum(link.in_flight for link in topology.links)
        accounted = delivered + entry + drops + unroutable + in_flight
        if offered != accounted:
            self._report(
                "packet-conservation", "platform",
                f"offered {offered} != delivered {delivered} + "
                f"entry_discards {entry} + queue_drops {drops} + "
                f"unroutable {unroutable} + in_flight {in_flight} "
                f"(= {accounted})", now)

    def _check_time_accounting(self, mgr: Any, now: int,
                               prefix: str = "") -> None:
        for core_id, core in sorted(mgr.cores.items()):
            s = core.stats
            for label, value in (("busy_ns", s.busy_ns),
                                 ("overhead_ns", s.overhead_ns),
                                 ("idle_ns", s.idle_ns)):
                if not isinstance(value, int):
                    self._report(
                        "time-accounting", f"core:{prefix}{core_id}",
                        f"{label} is {type(value).__name__}, not int "
                        f"(exactness requires integer nanoseconds)", now)
            lifetime = now - core.epoch_ns
            total = s.busy_ns + s.overhead_ns + s.idle_ns
            if total != lifetime:
                self._report(
                    "time-accounting", f"core:{prefix}{core_id}",
                    f"busy {s.busy_ns} + overhead {s.overhead_ns} + "
                    f"idle {s.idle_ns} = {total} != lifetime {lifetime}",
                    now)

    def _check_vruntime(self, mgr: Any, now: int, prefix: str = "") -> None:
        for core_id, core in sorted(mgr.cores.items()):
            min_vr = getattr(core.scheduler, "min_vruntime", None)
            if min_vr is None:
                continue
            # Plain core_id key on a single host (back-compat with
            # callers priming the dict); (host, core) on a cluster.
            key: Any = (prefix, core_id) if prefix else core_id
            seen = self._min_vruntime_seen.get(key)
            if seen is not None and min_vr < seen:
                self._report(
                    "vruntime-monotonic", f"core:{prefix}{core_id}",
                    f"min_vruntime decreased {seen!r} -> {min_vr!r}", now)
            self._min_vruntime_seen[key] = min_vr

    def _check_rings(self, mgr: Any, now: int, prefix: str = "") -> None:
        for name, ring in self._iter_rings(mgr):
            subject = f"ring:{prefix}{name}"
            depth = len(ring)
            if not 0 <= depth <= ring.capacity:
                self._report(
                    "ring-occupancy", subject,
                    f"depth {depth} outside [0, {ring.capacity}]", now)
            purged = ring.drops_by_reason.get("purged", 0)
            if ring.enqueued_total != ring.dequeued_total + purged + depth:
                self._report(
                    "ring-occupancy", subject,
                    f"enqueued {ring.enqueued_total} != dequeued "
                    f"{ring.dequeued_total} + purged {purged} + "
                    f"depth {depth}", now)
            by_reason = sum(ring.drops_by_reason.values())
            if ring.dropped_total != by_reason:
                self._report(
                    "ring-occupancy", subject,
                    f"dropped_total {ring.dropped_total} != "
                    f"sum(drops_by_reason) {by_reason}", now)

    def _check_non_negative(self, scenario: Any, now: int) -> None:
        counters: List[Tuple[str, str, Any]] = []
        for prefix, mgr in self._iter_managers(scenario):
            for core_id, core in sorted(mgr.cores.items()):
                s = core.stats
                subject = f"core:{prefix}{core_id}"
                counters += [
                    (subject, "busy_ns", s.busy_ns),
                    (subject, "overhead_ns", s.overhead_ns),
                    (subject, "idle_ns", s.idle_ns),
                    (subject, "dispatches", s.dispatches),
                ]
            for nf in mgr.nfs:
                t = nf.stats
                counters += [
                    (f"nf:{nf.name}", "runtime_ns", t.runtime_ns),
                    (f"nf:{nf.name}", "voluntary_switches",
                     t.voluntary_switches),
                    (f"nf:{nf.name}", "involuntary_switches",
                     t.involuntary_switches),
                    (f"nf:{nf.name}", "processed_packets",
                     nf.processed_packets),
                    (f"nf:{nf.name}", "wasted_processed",
                     nf.wasted_processed),
                ]
            for name, ring in self._iter_rings(mgr):
                counters += [
                    (f"ring:{prefix}{name}", "enqueued_total",
                     ring.enqueued_total),
                    (f"ring:{prefix}{name}", "dequeued_total",
                     ring.dequeued_total),
                    (f"ring:{prefix}{name}", "dropped_total",
                     ring.dropped_total),
                ]
                counters += [
                    (f"ring:{prefix}{name}", f"drops[{reason}]", count)
                    for reason, count in sorted(ring.drops_by_reason.items())
                ]
        topology = getattr(scenario, "topology", None)
        if topology is not None:
            for link in topology.links:
                counters += [
                    (f"link:{link.name}", "carried_packets",
                     link.carried_packets),
                    (f"link:{link.name}", "dropped_packets",
                     link.dropped_packets),
                    (f"link:{link.name}", "in_flight", link.in_flight),
                ]
        for spec in scenario.generator.specs:
            st = spec.flow.stats
            counters += [
                (f"flow:{spec.flow.flow_id}", "offered", st.offered),
                (f"flow:{spec.flow.flow_id}", "delivered", st.delivered),
                (f"flow:{spec.flow.flow_id}", "entry_discards",
                 st.entry_discards),
                (f"flow:{spec.flow.flow_id}", "queue_drops", st.queue_drops),
            ]
        for subject, label, value in counters:
            if value < 0:
                self._report(
                    "non-negative", subject,
                    f"{label} = {value} underflowed", now)


# ----------------------------------------------------------------------
# Context activation (mirrors repro.obs.session / repro.faults.plan)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Sanitizer] = None


def activate_sanitizer(sanitizer: Sanitizer) -> None:
    """Make ``sanitizer`` the ambient sanitizer new scenario runs attach to."""
    global _ACTIVE
    _ACTIVE = sanitizer


def current_sanitizer() -> Optional[Sanitizer]:
    return _ACTIVE


def deactivate_sanitizer() -> None:
    global _ACTIVE
    _ACTIVE = None
