"""The digest-safety registry: the single source of truth for what the
campaign digest covers.

Every invariant the whole-program analyzer (:mod:`repro.check.flow`)
enforces is *declared* here rather than scattered through rule code:

* which :class:`~repro.experiments.common.ScenarioResult` fields are
  **digest-checked** (canonicalised by
  :func:`repro.analysis.export.result_to_dict` and hashed by
  :func:`repro.runner.digest.digest_of`) and which are
  **digest-invisible** (telemetry that must never perturb a digest);
* which callables *produce* digest-invisible payloads, so a value that
  flows from one of them into a digest-checked field is a statically
  detectable leak (rule SIM601);
* which modules must carry an explicit ``__digest_safety__`` marker
  (rule SIM603), so the contract is visible at the definition site;
* which functions are sanctioned RNG constructors (rule SIM612);
* which module-level globals are *deliberately* process-local mutable
  state (the activate/deactivate singleton pattern), exempting them from
  the pool-safety rules SIM701/SIM702.

Adding a ``ScenarioResult`` field without declaring it in exactly one of
the two field sets fails ``repro check --deep`` (SIM602) *and* the
registry unit tests — staged adoption happens through this file, never
through inline suppressions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = [
    "REGISTRY_VERSION",
    "DIGEST_CHECKED_FIELDS",
    "DIGEST_INVISIBLE_FIELDS",
    "TELEMETRY_EXPORT_FIELDS",
    "TELEMETRY_GATES",
    "SIBLING_KEYS",
    "DIGEST_PAYLOAD_BUILDERS",
    "INVISIBLE_PRODUCERS",
    "MARKED_MODULES",
    "RNG_SANCTIONED",
    "RNG_SANCTIONED_PREFIXES",
    "PROCESS_LOCAL_STATE",
    "RUNTIME_PREFIXES",
    "validate_fields",
]

#: Bump when any declaration below changes meaning — feeds the simcheck
#: incremental-cache key so stale per-file summaries are discarded.
REGISTRY_VERSION = "1"

# ----------------------------------------------------------------------
# ScenarioResult field partition
# ----------------------------------------------------------------------
#: Fields serialised by ``result_to_dict`` into the digest payload.  A
#: change to any of these values changes every campaign digest.
DIGEST_CHECKED_FIELDS: FrozenSet[str] = frozenset({
    "scheduler",
    "features",
    "duration_s",
    "total_throughput_pps",
    "total_wasted_pps",
    "total_entry_discard_pps",
    "chains",
    "nfs",
    "core_utilization",
    "series",
    "sched_trace_dropped",
    "resilience",
    "sanitizer_violations",
})

#: Telemetry fields that must NEVER enter the digest payload: campaigns
#: are digest-identical with telemetry on or off.
DIGEST_INVISIBLE_FIELDS: FrozenSet[str] = frozenset({
    "loop_stats",
    "flow_latency",
    "causality",
    "slo",
})

#: The digest-invisible subset allowed to ride *next to* the digest
#: payload (the worker's sibling ``telemetry`` key, or the
#: ``include_telemetry=True`` archive path).
TELEMETRY_EXPORT_FIELDS: FrozenSet[str] = frozenset({
    "flow_latency",
    "causality",
})

#: Parameter names that gate a telemetry branch inside a payload
#: builder.  A digest-invisible read under an ``if <gate>:`` guard is an
#: explicit opt-in, not a leak.
TELEMETRY_GATES: FrozenSet[str] = frozenset({"include_telemetry"})

#: Payload keys that live *beside* the digested ``value`` (the campaign
#: digest hashes only ``payload["value"]``).
SIBLING_KEYS: FrozenSet[str] = frozenset({"telemetry"})

# ----------------------------------------------------------------------
# Digest payload builders and invisible producers
# ----------------------------------------------------------------------
#: Fully qualified names of the functions that build the canonical
#: digest payload.  The taint pass analyses these plus everything they
#: transitively call; functions that call
#: ``repro.runner.digest.digest_of``/``canonical_json`` are added
#: structurally.
DIGEST_PAYLOAD_BUILDERS: FrozenSet[str] = frozenset({
    "repro.analysis.export.result_to_dict",
    "repro.runner.worker._encode_result",
})

#: Call signatures whose return value is digest-invisible, as
#: ``(receiver_attribute, method)`` pairs; a ``None`` receiver matches
#: any receiver.  ``mgr.causality.summary()`` matches
#: ``("causality", "summary")``; ``loop.stats_dict()`` matches
#: ``(None, "stats_dict")``.  Note ``("faults", "summary")`` is *not*
#: here: the resilience summary is digest-checked by design.
INVISIBLE_PRODUCERS: Tuple[Tuple[object, str], ...] = (
    (None, "stats_dict"),          # EventLoop.stats_dict -> loop_stats
    ("latency", "to_dict"),        # FlowLatencyTracker.to_dict -> flow_latency
    ("causality", "summary"),      # CausalityTracer.summary -> causality
    ("slo_governor", "summary"),   # SLOGovernor.summary -> slo
)

#: Modules that must declare a module-level ``__digest_safety__`` string
#: containing the given kind (SIM603): producers of digest-relevant
#: payloads carry their contract at the definition site.
MARKED_MODULES: Dict[str, str] = {
    "repro/runner/digest.py": "digest-checked",
    "repro/analysis/export.py": "digest-checked",
    "repro/core/nf.py": "digest-checked",
    "repro/sim/engine.py": "digest-invisible",
    "repro/obs/latency.py": "digest-invisible",
    "repro/obs/causality.py": "digest-invisible",
    "repro/core/monitor.py": "digest-invisible",
}

# ----------------------------------------------------------------------
# RNG construction surface (SIM612)
# ----------------------------------------------------------------------
#: Functions inside the SIM401-allowlisted ``repro/sim/rng.py`` that are
#: *sanctioned* to construct generators.  Any other function in that
#: file that constructs an RNG and is transitively callable from
#: simulation code is flagged.
RNG_SANCTIONED: FrozenSet[str] = frozenset({
    "repro.sim.rng.fallback_generator",
})

#: Prefixes covering whole sanctioned classes (the seeded factory).
RNG_SANCTIONED_PREFIXES: Tuple[str, ...] = (
    "repro.sim.rng.RngFactory.",
)

# ----------------------------------------------------------------------
# Process-pool safety (SIM701/SIM702)
# ----------------------------------------------------------------------
#: Module-level globals that are deliberately process-local mutable
#: state, with the reason they are safe under ``--workers`` fan-out.
#: Every campaign worker is a fresh process that re-activates its own
#: copy, so cross-worker invariance holds by construction.
PROCESS_LOCAL_STATE: Dict[str, str] = {
    "repro.obs.session._ACTIVE": (
        "per-process ObsSession singleton; activated/deactivated around "
        "each run, never shared across pool workers"),
    "repro.faults.plan._ACTIVE": (
        "per-process FaultPlan singleton mirroring the obs session "
        "pattern"),
    "repro.check.sanitizer._ACTIVE": (
        "per-process Sanitizer singleton mirroring the obs session "
        "pattern"),
}

#: Package-relative path prefixes of code that executes inside a
#: campaign worker (the runtime surface the pool-safety and lifted
#: rules take as reachability roots).
RUNTIME_PREFIXES: Tuple[str, ...] = (
    "repro/sim/", "repro/sched/", "repro/platform/", "repro/core/",
    "repro/nfs/", "repro/traffic/", "repro/experiments/",
    "repro/cluster/", "repro/faults/", "repro/obs/", "repro/runner/",
)


def validate_fields(field_names: Iterable[str]) -> List[str]:
    """Check a ``ScenarioResult`` field list against the registry.

    Returns a list of human-readable problems (empty when the field set
    and the registry partition agree exactly).
    """
    problems: List[str] = []
    fields = set(field_names)
    overlap = DIGEST_CHECKED_FIELDS & DIGEST_INVISIBLE_FIELDS
    for name in sorted(overlap):
        problems.append(
            f"field {name!r} declared both digest-checked and "
            f"digest-invisible")
    declared = DIGEST_CHECKED_FIELDS | DIGEST_INVISIBLE_FIELDS
    for name in sorted(fields - declared):
        problems.append(
            f"field {name!r} not declared in the digest-safety registry "
            f"(add it to DIGEST_CHECKED_FIELDS or "
            f"DIGEST_INVISIBLE_FIELDS)")
    for name in sorted(declared - fields):
        problems.append(
            f"registry declares {name!r} but ScenarioResult has no such "
            f"field (stale entry)")
    if not TELEMETRY_EXPORT_FIELDS <= DIGEST_INVISIBLE_FIELDS:
        problems.append(
            "TELEMETRY_EXPORT_FIELDS must be a subset of "
            "DIGEST_INVISIBLE_FIELDS")
    return problems
