"""Determinism and precision tooling for the reproduction.

Two halves:

* :mod:`repro.check.simcheck` — a static AST lint pass (``repro check``)
  that bans the nondeterminism and float-precision bug classes this
  codebase has actually hit (wall-clock reads, global-RNG use, set
  iteration order leaking into event order, float contamination of
  integer-nanosecond counters, RNG construction outside the seeded
  factory).
* :mod:`repro.check.sanitizer` — a runtime invariant sanitizer
  (``repro run --sanitize``) that checks conservation laws at the end of
  (and optionally during) a run: packet conservation, exact per-core
  time accounting, CFS vruntime monotonicity, ring occupancy bounds and
  non-negative counters.

See ``docs/static-analysis.md`` for the rule catalog and policy.
"""

from repro.check.simcheck import Finding, check_paths, iter_rules
from repro.check.sanitizer import (
    SanitizerViolation,
    Sanitizer,
    activate_sanitizer,
    current_sanitizer,
    deactivate_sanitizer,
)

__all__ = [
    "Finding",
    "check_paths",
    "iter_rules",
    "SanitizerViolation",
    "Sanitizer",
    "activate_sanitizer",
    "current_sanitizer",
    "deactivate_sanitizer",
]
