"""Determinism and precision tooling for the reproduction.

Three layers:

* :mod:`repro.check.simcheck` — a static AST lint pass (``repro check``)
  that bans the nondeterminism and float-precision bug classes this
  codebase has actually hit (wall-clock reads, global-RNG use, set
  iteration order leaking into event order, float contamination of
  integer-nanosecond counters, RNG construction outside the seeded
  factory).
* the whole-program analyzer (``repro check --deep``) —
  :mod:`repro.check.graph` links the project import/call graph and
  :mod:`repro.check.flow` runs cross-module passes over it: digest
  taint (SIM6xx, against the :mod:`repro.check.registry` contract),
  interprocedurally lifted SIM101/SIM401 (SIM611/SIM612 with call-chain
  witnesses), and process-pool state safety (SIM7xx).
* :mod:`repro.check.sanitizer` — a runtime invariant sanitizer
  (``repro run --sanitize``) that checks conservation laws at the end of
  (and optionally during) a run: packet conservation, exact per-core
  time accounting, CFS vruntime monotonicity, ring occupancy bounds and
  non-negative counters.

See ``docs/static-analysis.md`` for the rule catalog and policy.
"""

from repro.check.simcheck import (
    Finding,
    check_paths,
    iter_rules,
    run_deep,
)
from repro.check.sanitizer import (
    SanitizerViolation,
    Sanitizer,
    activate_sanitizer,
    current_sanitizer,
    deactivate_sanitizer,
)

__all__ = [
    "Finding",
    "check_paths",
    "iter_rules",
    "run_deep",
    "SanitizerViolation",
    "Sanitizer",
    "activate_sanitizer",
    "current_sanitizer",
    "deactivate_sanitizer",
]
