"""Whole-program import/call graph over the repro source tree.

Stdlib-``ast`` only, like the rest of simcheck.  Two layers:

* :func:`extract_summary` — one pass over a single file producing a
  plain-dict **module summary**: functions with their outgoing calls
  (alias-resolved where possible), module-level mutable globals,
  class-level mutables, digest-safety facts (invisible-field reads,
  invisible-producer calls, ``ScenarioResult(...)`` construction sites),
  ``global`` rebinds and mutation sites.  Summaries are JSON-compatible
  so the incremental cache can store them and worker processes can ship
  them back from parallel parses.

* :class:`ProjectGraph` — links the summaries of every parseable file
  into a call graph: function table, caller→callee edges (same-module
  defs, ``self.method``, import-alias targets, class instantiation,
  nested defs), and BFS reachability with parent pointers so the flow
  passes (:mod:`repro.check.flow`) can render call-chain witnesses.

Resolution is deliberately an under-approximation: a call through a
duck-typed object (``obj.run()``) creates no edge.  The flow rules that
consume the graph are therefore *sound for what they claim* — every
rendered witness chain is a real chain of statically resolvable calls —
rather than exhaustive.
"""

from __future__ import annotations

import ast
import os
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.check import registry

__all__ = ["extract_summary", "ProjectGraph", "module_name_for_rel",
           "package_rel"]

#: Pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "add", "update", "pop", "popitem", "clear", "extend",
    "insert", "remove", "discard", "setdefault", "appendleft",
    "extendleft", "sort", "reverse",
})

#: Constructor names whose result is a mutable container.
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "deque", "defaultdict", "OrderedDict",
    "Counter",
})


def package_rel(path: str) -> str:
    """Path relative to the package root (``repro/...``), or basename."""
    norm = path.replace(os.sep, "/")
    marker = "repro/"
    idx = norm.rfind("/" + marker)
    if idx >= 0:
        return norm[idx + 1:]
    if norm.startswith(marker):
        return norm
    return norm.rsplit("/", 1)[-1]


def module_name_for_rel(rel: str) -> str:
    """Dotted module name for a package-relative path."""
    name = rel[:-3] if rel.endswith(".py") else rel
    parts = [p for p in name.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else name


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CTORS
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        # collections.deque(...), collections.defaultdict(...)
        return node.func.attr in _MUTABLE_CTORS
    return False


def _dotted_parts(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``, or None for other shapes."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    parts.reverse()
    return parts


def _collect_aliases(tree: ast.Module, module: str,
                     is_package: bool) -> Dict[str, str]:
    """local name -> fully qualified dotted name, relative imports
    resolved against ``module``."""
    aliases: Dict[str, str] = {}
    pkg_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname:
                    aliases[a.asname] = a.name
                else:
                    aliases[a.name.split(".")[0]] = a.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # For module "a.b.c": level 1 anchors at "a.b", level 2
                # at "a".  A package __init__ IS its own anchor at
                # level 1 (module_name_for_rel already stripped
                # "__init__"), so drop one fewer component.
                drop = node.level - 1 if is_package else node.level
                anchor = pkg_parts[:len(pkg_parts) - drop]
                base = ".".join(
                    anchor + ([node.module] if node.module else []))
            if not base:
                continue
            for a in node.names:
                aliases[a.asname or a.name] = f"{base}.{a.name}"
    return aliases


class _FuncRecord:
    """Mutable accumulator for one function's summary."""

    def __init__(self, lineno: int):
        self.lineno = lineno
        self.calls: List[Dict[str, Any]] = []
        self.nested: List[str] = []
        self.producer_calls: List[Dict[str, Any]] = []
        self.invisible_reads: List[Dict[str, Any]] = []
        self.sr_calls: List[Dict[str, Any]] = []
        self.mutations: List[Dict[str, Any]] = []
        self.rebinds: List[Dict[str, Any]] = []
        self.locals: Set[str] = set()
        self.globals_declared: Set[str] = set()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lineno": self.lineno,
            "calls": self.calls,
            "nested": self.nested,
            "producer_calls": self.producer_calls,
            "invisible_reads": self.invisible_reads,
            "sr_calls": self.sr_calls,
            "mutations": self.mutations,
            "rebinds": self.rebinds,
            "locals": sorted(self.locals),
        }


class _Extractor:
    """One pass over a parsed module producing the summary dict."""

    def __init__(self, rel: str, tree: ast.Module):
        self.rel = rel
        self.module = module_name_for_rel(rel)
        self.tree = tree
        self.aliases = _collect_aliases(
            tree, self.module, is_package=rel.endswith("__init__.py"))
        self.functions: Dict[str, _FuncRecord] = {}
        self.top_funcs: Set[str] = set()
        self.classes: Dict[str, List[str]] = {}
        self.module_globals: Dict[str, int] = {}
        self.mutable_globals: Dict[str, int] = {}
        self.class_mutables: List[Dict[str, Any]] = []
        self.marker: Optional[str] = None
        self.scenario_fields: Optional[List[Dict[str, Any]]] = None

    # -- entry ----------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        mod_rec = _FuncRecord(1)
        self.functions[MODULE_BODY] = mod_rec
        for stmt in self.tree.body:
            self._module_stmt(stmt, mod_rec)
        return {
            "rel": self.rel,
            "module": self.module,
            "top_funcs": sorted(self.top_funcs),
            "classes": {c: sorted(m) for c, m in self.classes.items()},
            "module_globals": self.module_globals,
            "mutable_globals": self.mutable_globals,
            "class_mutables": self.class_mutables,
            "marker": self.marker,
            "scenario_fields": self.scenario_fields,
            "functions": {q: r.to_dict() for q, r in self.functions.items()},
        }

    # -- module / class level -------------------------------------------
    def _module_stmt(self, stmt: ast.stmt, mod_rec: _FuncRecord) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.top_funcs.add(stmt.name)
            self._function(stmt, stmt.name, None)
        elif isinstance(stmt, ast.ClassDef):
            self._class(stmt)
        else:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._record_module_assign(stmt)
            self._stmt(stmt, mod_rec, guards=(), cls=None)

    def _record_module_assign(self, stmt: ast.stmt) -> None:
        targets: List[ast.expr]
        value: Optional[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:  # pragma: no cover - guarded by caller
            return
        for tgt in targets:
            if not isinstance(tgt, ast.Name):
                continue
            self.module_globals.setdefault(tgt.id, stmt.lineno)
            if tgt.id == "__digest_safety__" and value is not None \
                    and isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                self.marker = value.value
            if value is not None and _is_mutable_value(value):
                self.mutable_globals.setdefault(tgt.id, stmt.lineno)

    def _class(self, node: ast.ClassDef) -> None:
        methods: List[str] = []
        rebound: Set[str] = set()
        mutables: List[Tuple[str, int, int]] = []
        fields: List[Dict[str, Any]] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                rebound |= _self_assigned_names(stmt)
                self._function(stmt, f"{node.name}.{stmt.name}", node.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                tgts = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                value = stmt.value
                for tgt in tgts:
                    if not isinstance(tgt, ast.Name):
                        continue
                    if isinstance(stmt, ast.AnnAssign):
                        fields.append({"name": tgt.id,
                                       "lineno": stmt.lineno,
                                       "col": stmt.col_offset})
                    if value is not None and _is_mutable_value(value):
                        mutables.append((tgt.id, stmt.lineno,
                                         stmt.col_offset))
        self.classes[node.name] = methods
        for attr, lineno, col in mutables:
            self.class_mutables.append({
                "cls": node.name, "attr": attr, "lineno": lineno,
                "col": col, "rebound": attr in rebound,
            })
        if node.name == "ScenarioResult":
            self.scenario_fields = fields

    # -- functions ------------------------------------------------------
    def _function(self, node: ast.stmt, qual: str,
                  cls: Optional[str]) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        rec = _FuncRecord(node.lineno)
        self.functions[qual] = rec
        args = node.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs
                  + ([args.vararg] if args.vararg else [])
                  + ([args.kwarg] if args.kwarg else [])):
            rec.locals.add(a.arg)
        # Pre-pass: locally bound names (so a shadowing local never
        # resolves to a module global).
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                rec.globals_declared.update(sub.names)
            elif isinstance(sub, ast.Assign):
                for tgt in sub.targets:
                    for n in ast.walk(tgt):
                        # Only Store-context names bind (``d[k] = v``
                        # leaves ``d`` and ``k`` in Load context).
                        if isinstance(n, ast.Name) \
                                and isinstance(n.ctx, ast.Store):
                            rec.locals.add(n.id)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(sub.target, ast.Name):
                    rec.locals.add(sub.target.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for n in ast.walk(sub.target):
                    if isinstance(n, ast.Name):
                        rec.locals.add(n.id)
            elif isinstance(sub, ast.comprehension):
                for n in ast.walk(sub.target):
                    if isinstance(n, ast.Name):
                        rec.locals.add(n.id)
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if item.optional_vars is not None:
                        for n in ast.walk(item.optional_vars):
                            if isinstance(n, ast.Name):
                                rec.locals.add(n.id)
        rec.locals -= rec.globals_declared
        for stmt in node.body:
            self._stmt(stmt, rec, guards=(), cls=cls, func_qual=qual)

    # -- statement walk -------------------------------------------------
    def _stmt(self, stmt: ast.stmt, rec: _FuncRecord,
              guards: Tuple[str, ...], cls: Optional[str],
              func_qual: Optional[str] = None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: its own record, conservatively reachable from
            # the parent (closures are almost always invoked by it).
            parent = func_qual or MODULE_BODY
            nested_qual = (f"{func_qual}.{stmt.name}" if func_qual
                           else stmt.name)
            if func_qual is None:
                self.top_funcs.add(stmt.name)
            self._function(stmt, nested_qual, cls)
            self.functions[parent].nested.append(nested_qual)
            return
        if isinstance(stmt, ast.ClassDef):
            self._class(stmt)
            return
        if isinstance(stmt, ast.Global):
            rec.globals_declared.update(stmt.names)
            return
        if isinstance(stmt, ast.If):
            test_names = tuple(sorted({
                n.id for n in ast.walk(stmt.test)
                if isinstance(n, ast.Name)}))
            self._expr(stmt.test, rec, guards, in_test=True, key=None)
            inner = tuple(sorted(set(guards) | set(test_names)))
            for s in stmt.body:
                self._stmt(s, rec, inner, cls, func_qual)
            for s in stmt.orelse:
                self._stmt(s, rec, guards, cls, func_qual)
            return
        if isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                self._mutation_target(tgt, rec, "subscript-assign")
            key = _assign_key(stmt.targets)
            if key is None and stmt.targets \
                    and isinstance(stmt.targets[0], ast.Attribute):
                # Writing INTO a field (result.flow_latency = ...) is a
                # store, not a digest read; name the slot after the attr
                # so invisible->invisible stores stay exempt.
                key = stmt.targets[0].attr
            self._expr(stmt.value, rec, guards, in_test=False, key=key)
            if rec.globals_declared:
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name) \
                            and tgt.id in rec.globals_declared:
                        rec.rebinds.append({
                            "name": tgt.id, "lineno": stmt.lineno,
                            "col": stmt.col_offset})
            return
        if isinstance(stmt, ast.AugAssign):
            self._mutation_target(stmt.target, rec, "aug-assign")
            if isinstance(stmt.target, ast.Name) \
                    and stmt.target.id in rec.globals_declared:
                rec.rebinds.append({
                    "name": stmt.target.id, "lineno": stmt.lineno,
                    "col": stmt.col_offset})
            self._expr(stmt.value, rec, guards, in_test=False, key=None)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, rec, guards, in_test=False,
                           key=None)
            if isinstance(stmt.target, ast.Name) \
                    and stmt.target.id in rec.globals_declared:
                rec.rebinds.append({
                    "name": stmt.target.id, "lineno": stmt.lineno,
                    "col": stmt.col_offset})
            return
        if isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                self._mutation_target(tgt, rec, "delete")
            return
        # Generic recursion: child statements keep the guard context;
        # child expressions are scanned without a slot.
        for field_name, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                self._expr(value, rec, guards, in_test=False, key=None)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        self._stmt(item, rec, guards, cls, func_qual)
                    elif isinstance(item, ast.expr):
                        self._expr(item, rec, guards, in_test=False,
                                   key=None)
                    elif isinstance(item, ast.excepthandler):
                        for s in item.body:
                            self._stmt(s, rec, guards, cls, func_qual)
                    elif isinstance(item, ast.withitem):
                        self._expr(item.context_expr, rec, guards,
                                   in_test=False, key=None)

    def _mutation_target(self, tgt: ast.expr, rec: _FuncRecord,
                         op: str) -> None:
        if isinstance(tgt, ast.Subscript) \
                and isinstance(tgt.value, ast.Name):
            self._record_mutation(tgt.value.id, op, tgt, rec)

    def _record_mutation(self, name: str, op: str, node: ast.AST,
                         rec: _FuncRecord) -> None:
        rec.mutations.append({
            "name": name,
            "resolved": self.aliases.get(name),
            "op": op,
            "lineno": getattr(node, "lineno", 0),
            "col": getattr(node, "col_offset", 0),
        })

    # -- expression walk ------------------------------------------------
    def _expr(self, node: ast.expr, rec: _FuncRecord,
              guards: Tuple[str, ...], in_test: bool,
              key: Optional[str]) -> None:
        if isinstance(node, ast.Call):
            self._call(node, rec, guards, in_test, key)
            return
        if isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Load) \
                and node.attr in registry.DIGEST_INVISIBLE_FIELDS:
            rec.invisible_reads.append({
                "attr": node.attr, "lineno": node.lineno,
                "col": node.col_offset, "in_test": in_test,
                "key": key, "guards": list(guards),
            })
            self._expr(node.value, rec, guards, in_test, key)
            return
        if isinstance(node, ast.Dict):
            for k, v in zip(node.keys, node.values):
                if k is not None:
                    self._expr(k, rec, guards, in_test, None)
                child_key = k.value if (isinstance(k, ast.Constant)
                                        and isinstance(k.value, str)) \
                    else key
                self._expr(v, rec, guards, in_test, child_key)
            return
        if isinstance(node, (ast.BoolOp,)) and in_test:
            for v in node.values:
                self._expr(v, rec, guards, in_test, key)
            return
        if isinstance(node, ast.IfExp):
            self._expr(node.test, rec, guards, True, None)
            self._expr(node.body, rec, guards, in_test, key)
            self._expr(node.orelse, rec, guards, in_test, key)
            return
        if isinstance(node, ast.Lambda):
            self._expr(node.body, rec, guards, in_test, None)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, rec, guards, in_test, key)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, rec, guards, in_test, None)
                for cond in child.ifs:
                    self._expr(cond, rec, guards, True, None)

    def _call(self, node: ast.Call, rec: _FuncRecord,
              guards: Tuple[str, ...], in_test: bool,
              key: Optional[str]) -> None:
        parts = _dotted_parts(node.func)
        raw = ".".join(parts) if parts else None
        resolved: Optional[str] = None
        if parts:
            head = self.aliases.get(parts[0])
            if head is not None:
                resolved = ".".join([head] + parts[1:])
            rec.calls.append({
                "raw": raw, "resolved": resolved,
                "lineno": node.lineno, "col": node.col_offset,
            })
            # In-place mutation through a method call: X.append(...)
            if isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.attr in _MUTATORS:
                self._record_mutation(node.func.value.id,
                                      f".{node.func.attr}()", node, rec)
            # Digest-invisible producer signature.
            if parts and len(parts) >= 1:
                method = parts[-1]
                recv = parts[-2] if len(parts) >= 2 else None
                for want_recv, want_method in registry.INVISIBLE_PRODUCERS:
                    if method != want_method:
                        continue
                    if want_recv is not None and recv != want_recv:
                        continue
                    rec.producer_calls.append({
                        "recv": recv, "method": method,
                        "lineno": node.lineno, "col": node.col_offset,
                        "in_test": in_test, "key": key,
                        "guards": list(guards),
                    })
                    break
            # ScenarioResult construction site: capture per-kwarg taint.
            if raw is not None and (raw == "ScenarioResult"
                                    or raw.endswith(".ScenarioResult")
                                    or (resolved is not None and resolved
                                        .endswith(".ScenarioResult"))):
                self._scenario_result_call(node, rec)
        else:
            self._expr(node.func, rec, guards, in_test, None)
        for arg in node.args:
            self._expr(arg, rec, guards, in_test, None)
        for kw in node.keywords:
            self._expr(kw.value, rec, guards, in_test, kw.arg)

    def _scenario_result_call(self, node: ast.Call,
                              rec: _FuncRecord) -> None:
        kwargs: List[Dict[str, Any]] = []
        for kw in node.keywords:
            if kw.arg is None:
                continue
            producers: List[List[Optional[str]]] = []
            reads: List[str] = []
            for sub in ast.walk(kw.value):
                if isinstance(sub, ast.Call):
                    p = _dotted_parts(sub.func)
                    if p:
                        method = p[-1]
                        recv = p[-2] if len(p) >= 2 else None
                        for want_recv, want_method in \
                                registry.INVISIBLE_PRODUCERS:
                            if method == want_method and (
                                    want_recv is None
                                    or recv == want_recv):
                                producers.append([recv, method])
                                break
                elif isinstance(sub, ast.Attribute) \
                        and isinstance(sub.ctx, ast.Load) \
                        and sub.attr in registry.DIGEST_INVISIBLE_FIELDS:
                    reads.append(sub.attr)
            kwargs.append({
                "name": kw.arg,
                "lineno": kw.value.lineno,
                "col": kw.value.col_offset,
                "producers": producers,
                "reads": reads,
            })
        rec.sr_calls.append({
            "lineno": node.lineno, "col": node.col_offset,
            "kwargs": kwargs,
        })


def _self_assigned_names(func: ast.stmt) -> Set[str]:
    """Attribute names assigned on ``self`` anywhere in a method."""
    out: Set[str] = set()
    for sub in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = sub.targets
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            targets = [sub.target]
        for tgt in targets:
            if isinstance(tgt, ast.Attribute) \
                    and isinstance(tgt.value, ast.Name) \
                    and tgt.value.id == "self":
                out.add(tgt.attr)
    return out


def _assign_key(targets: Sequence[ast.expr]) -> Optional[str]:
    """Literal string key for ``out["key"] = ...`` target shapes."""
    for tgt in targets:
        if isinstance(tgt, ast.Subscript):
            sl = tgt.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                return sl.value
    return None


def extract_summary(path: str, source: str) -> Dict[str, Any]:
    """Parse one file into its JSON-compatible module summary.

    Raises ``SyntaxError``/``ValueError`` like ``ast.parse`` — the
    caller decides how parse failures are reported.
    """
    tree = ast.parse(source, filename=path)
    return _Extractor(package_rel(path), tree).run()


# ----------------------------------------------------------------------
# Linking
# ----------------------------------------------------------------------
class ProjectGraph:
    """Call graph linked from per-file module summaries."""

    def __init__(self, summaries: Dict[str, Dict[str, Any]]):
        #: path -> summary
        self.summaries = summaries
        #: module dotted name -> summary
        self.by_module: Dict[str, Dict[str, Any]] = {}
        #: full qualname -> (path, rel, suffix)
        self.functions: Dict[str, Tuple[str, str, str]] = {}
        #: module -> set of class names
        self.classes: Dict[str, Set[str]] = {}
        for path in sorted(summaries):
            s = summaries[path]
            self.by_module[s["module"]] = s
            self.classes[s["module"]] = set(s["classes"])
            for suffix in s["functions"]:
                self.functions[f"{s['module']}.{suffix}"] = (
                    path, s["rel"], suffix)
        self.edges: Dict[str, List[str]] = {}
        self._build_edges()

    # -- lookups --------------------------------------------------------
    def func_summary(self, qual: str) -> Dict[str, Any]:
        path, _rel, suffix = self.functions[qual]
        summary: Dict[str, Any] = \
            self.summaries[path]["functions"][suffix]
        return summary

    def func_rel(self, qual: str) -> str:
        return self.functions[qual][1]

    def func_line(self, qual: str) -> int:
        lineno: int = self.func_summary(qual)["lineno"]
        return lineno

    def func_path(self, qual: str) -> str:
        return self.functions[qual][0]

    # -- linking --------------------------------------------------------
    def _build_edges(self) -> None:
        for qual in sorted(self.functions):
            self.edges[qual] = self._callees(qual)

    def _callees(self, qual: str) -> List[str]:
        path, _rel, suffix = self.functions[qual]
        s = self.summaries[path]
        module = s["module"]
        rec = s["functions"][suffix]
        cls = None
        head = suffix.split(".")[0]
        if head in s["classes"] and "." in suffix:
            cls = head
        out: List[str] = []
        seen: Set[str] = set()

        def add(target: str) -> None:
            if target not in seen and target in self.functions:
                seen.add(target)
                out.append(target)

        for nested in rec["nested"]:
            add(f"{module}.{nested}")
        for call in rec["calls"]:
            raw = call["raw"]
            if raw is None:
                continue
            parts = raw.split(".")
            # self.method() within a class
            if parts[0] == "self" and cls is not None and len(parts) == 2:
                add(f"{module}.{cls}.{parts[1]}")
                continue
            # Same-module top-level function or class
            if len(parts) == 1 and parts[0] in s["top_funcs"]:
                add(f"{module}.{parts[0]}")
                continue
            if parts[0] in s["classes"]:
                if len(parts) == 1:
                    add(f"{module}.{parts[0]}.__init__")
                else:
                    add(f"{module}.{'.'.join(parts)}")
                continue
            resolved = call["resolved"]
            if resolved is None:
                continue
            # Project function / method / class referenced via imports
            add(resolved)
            rparts = resolved.split(".")
            if len(rparts) >= 2:
                mod = ".".join(rparts[:-1])
                name = rparts[-1]
                if mod in self.by_module \
                        and name in self.classes.get(mod, set()):
                    add(f"{resolved}.__init__")
        return out

    # -- reachability ---------------------------------------------------
    def reachable_from(self, roots: Sequence[str]) \
            -> Dict[str, Optional[str]]:
        """BFS closure; maps reached qualname -> parent (None for a
        root).  Iteration order is deterministic (sorted roots, FIFO)."""
        parents: Dict[str, Optional[str]] = {}
        queue: "deque[str]" = deque()
        for root in sorted(set(roots)):
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            cur = queue.popleft()
            for nxt in self.edges.get(cur, ()):
                if nxt not in parents:
                    parents[nxt] = cur
                    queue.append(nxt)
        return parents

    def chain_to(self, parents: Dict[str, Optional[str]],
                 qual: str) -> List[str]:
        """Root-to-target call chain for a reached function."""
        chain: List[str] = []
        cur: Optional[str] = qual
        while cur is not None:
            chain.append(cur)
            cur = parents.get(cur)
        chain.reverse()
        return chain

    def render_chain(self, chain: Sequence[str]) -> str:
        parts = []
        for qual in chain:
            _path, rel, suffix = self.functions[qual]
            parts.append(f"{rel}:{self.func_line(qual)}:{suffix}")
        return " -> ".join(parts)
