"""Cross-module flow passes for ``repro check --deep``.

Three whole-program analyses over the :class:`repro.check.graph.ProjectGraph`,
each enforcing an invariant the runtime can only check after the fact:

* **SIM6xx — digest taint.**  The campaign digest must be a function of
  the digest-checked ``ScenarioResult`` fields only.  SIM601 flags a
  digest-invisible value (a read of ``loop_stats``/``flow_latency``/
  ``causality``/``slo``, or a call to a registered invisible producer)
  reaching the digest region — the forward call closure of the payload
  builders declared in :mod:`repro.check.registry` plus every function
  that calls ``repro.runner.digest.digest_of``/``canonical_json`` — or
  flowing into a digest-checked constructor field.  SIM602 flags a
  ``ScenarioResult`` field not declared in the registry partition.
  SIM603 flags a registered digest-relevant module missing its
  ``__digest_safety__`` marker.

* **SIM61x — interprocedural rule lifting.**  SIM101 and SIM401 are
  file-local and deliberately allowlist harness layers; SIM611/SIM612
  close the transitive gap: a wall-clock read (SIM611) or RNG
  construction (SIM612) sitting in an allowlisted file is flagged when
  the function holding it is transitively callable from ``sim/``/
  ``sched/``/``platform/`` code, with the call chain rendered as a
  witness.

* **SIM7xx — process-pool safety.**  Campaign ``--workers`` invariance
  assumes runtime code keeps no cross-run module state.  SIM701 flags a
  module-level mutable global mutated from a runtime code path, SIM702 a
  ``global``-statement rebind from runtime code (unless registered as
  deliberate process-local state), SIM703 a class-level mutable default
  in a runtime module.

Every exemption is declared in :mod:`repro.check.registry`; the passes
themselves carry no inline allowlists.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.check import registry
from repro.check.graph import MODULE_BODY, ProjectGraph
from repro.check.simcheck import (
    _RNG_CONSTRUCTORS,
    _WALL_CLOCK,
    _WALL_CLOCK_ALLOWED_PREFIXES,
    Finding,
)

__all__ = ["run_flow_passes", "EXPLAIN", "DEEP_RULES"]

#: Dotted names whose *callers* are structurally part of the digest
#: region even when not listed as payload builders.
_DIGEST_SINK_FUNCS = frozenset({
    "repro.runner.digest.digest_of",
    "repro.runner.digest.canonical_json",
    "repro.runner.digest.combine_digests",
})

#: Reachability roots for the lifted rules: code the simulation itself
#: executes (the file-local allowlists of SIM101/SIM401 were designed
#: around these layers never calling back into the harness).
_LIFT_ROOT_PREFIXES = ("repro/sim/", "repro/sched/", "repro/platform/")

#: Summaries of the deep rules, mirroring ``Rule.summary`` for SIM1xx-5xx.
DEEP_RULES: Dict[str, str] = {
    "SIM601": ("digest-invisible value reaches the digest-checked "
               "payload (cross-module taint)"),
    "SIM602": ("ScenarioResult field not declared in the digest-safety "
               "registry"),
    "SIM603": ("digest-relevant module missing its __digest_safety__ "
               "marker"),
    "SIM611": ("wall-clock/entropy read transitively reachable from "
               "simulation code (lifted SIM101)"),
    "SIM612": ("unsanctioned RNG construction transitively reachable "
               "from simulation code (lifted SIM401)"),
    "SIM701": ("module-level mutable global mutated from runtime code "
               "(breaks --workers invariance)"),
    "SIM702": ("global-statement rebind from runtime code outside the "
               "registered process-local singletons"),
    "SIM703": "class-level mutable default in a runtime module",
}

EXPLAIN: Dict[str, str] = {
    "SIM101": (
        "Wall-clock / entropy read in simulation code.  time.time(), "
        "datetime.now(), os.urandom(), uuid1/4() and friends return "
        "host-dependent values, so any influence on simulation state "
        "breaks bit-identical digests.  Simulation code takes time from "
        "the EventLoop and randomness from repro.sim.rng.  The "
        "repro/runner/ harness layer is allowlisted because there the "
        "wall clock is the measured quantity (see SIM611 for the "
        "transitive closure of that allowlist)."),
    "SIM102": (
        "Module-level random.*/numpy.random.* call.  The global RNGs "
        "are process-wide mutable state seeded outside the scenario; "
        "results stop being a function of the scenario seed.  Draw "
        "from a repro.sim.rng.RngFactory stream instead."),
    "SIM103": (
        "id() inside a sort/min/max key.  CPython id() is a memory "
        "address, so the order varies run to run.  Key on a stable "
        "field (name, index) instead."),
    "SIM201": (
        "Iteration over an unordered set expression.  Set order depends "
        "on hash seeding and insertion history, and in an event-driven "
        "simulator any such order leaks into event order.  Wrap the "
        "expression in sorted(...)."),
    "SIM301": (
        "Implicit float contamination of a *_ns quantity in "
        "sim/sched/platform.  Nanosecond state is integer; a float "
        "caps precision at 2^53 ns (~104 days) and rounds event times. "
        "Use int literals, or an explicit ': float' annotation where a "
        "quantity is genuinely fractional.  True division is exempt."),
    "SIM401": (
        "RNG constructed outside repro/sim/rng.py.  Every stream must "
        "come from the seeded RngFactory so seeding stays centralised "
        "and per-scenario.  (SIM612 checks the inside of rng.py "
        "itself.)"),
    "SIM501": (
        "Direct heapq use outside repro/sim/engine.py.  The engine owns "
        "every hot-path priority queue; ad-hoc heaps re-introduce "
        "per-event O(log n) cost and tie-ordering hazards.  Schedule "
        "through the EventLoop (call_at/call_after/call_every)."),
    "SIM601": (
        "Digest taint: a digest-invisible value reaches the digest "
        "payload.  The campaign digest hashes only the digest-checked "
        "ScenarioResult fields (registry.DIGEST_CHECKED_FIELDS); "
        "telemetry (loop_stats, flow_latency, causality, slo) must "
        "never perturb it, or digests stop being comparable across "
        "telemetry settings.  The pass computes the digest region - "
        "the forward call closure of the registered payload builders "
        "plus every caller of repro.runner.digest functions - and flags "
        "any invisible-field read or invisible-producer call inside it "
        "that is not stored under an invisible/sibling key or guarded "
        "by a registered telemetry gate, plus any ScenarioResult "
        "construction passing an invisible payload to a digest-checked "
        "field.  The finding carries the call-chain witness from the "
        "digest root.  Fix by moving the value to a digest-invisible "
        "field or the sibling telemetry payload; never suppress."),
    "SIM602": (
        "ScenarioResult field not declared in the digest-safety "
        "registry.  Every field must be listed in exactly one of "
        "registry.DIGEST_CHECKED_FIELDS or DIGEST_INVISIBLE_FIELDS so "
        "the digest contract is explicit; an undeclared field would "
        "silently fall outside both the taint pass and the export "
        "canonicalisation.  Declare the field in "
        "src/repro/check/registry.py (and in result_to_dict if "
        "checked)."),
    "SIM603": (
        "Digest-relevant module missing its __digest_safety__ marker. "
        "Modules registered in registry.MARKED_MODULES must declare a "
        "module-level __digest_safety__ string containing their kind "
        "('digest-checked' or 'digest-invisible') so the contract is "
        "visible at the definition site and the analyzer can verify "
        "the registry and the code agree."),
    "SIM611": (
        "Lifted SIM101: wall-clock/entropy read transitively reachable "
        "from simulation code.  SIM101 allowlists repro/runner/ because "
        "the harness legitimately times worker processes - but a "
        "sim/sched/platform function calling into such a helper imports "
        "host time into the simulation.  The finding's witness line "
        "renders the call chain from the simulation root to the "
        "offending call.  Fix by passing simulated time in, or moving "
        "the helper out of the reachable set."),
    "SIM612": (
        "Lifted SIM401: unsanctioned RNG construction transitively "
        "reachable from simulation code.  repro/sim/rng.py is exempt "
        "from SIM401 wholesale, so a rogue constructor added there "
        "would go unflagged; this pass checks that any construction "
        "inside the allowlisted file reachable from simulation code "
        "belongs to the sanctioned factory surface "
        "(registry.RNG_SANCTIONED / RNG_SANCTIONED_PREFIXES)."),
    "SIM701": (
        "Module-level mutable global mutated from runtime code.  The "
        "campaign pool requires digests invariant to --workers; a "
        "dict/list/set global mutated on a runtime path accumulates "
        "cross-run state inside a worker process, so results depend on "
        "which tasks shared a worker.  Pass state explicitly, or - for "
        "a deliberate per-process singleton - register it with a "
        "justification in registry.PROCESS_LOCAL_STATE."),
    "SIM702": (
        "global-statement rebind from runtime code.  Rebinding a "
        "module global from a runtime path is the same cross-run "
        "state hazard as SIM701 in assignment form.  The "
        "activate/deactivate singleton pattern (obs session, fault "
        "plan, sanitizer) is registered in "
        "registry.PROCESS_LOCAL_STATE; anything else is a finding."),
    "SIM703": (
        "Class-level mutable default in a runtime module.  A mutable "
        "class attribute (dict/list/set) is shared by every instance "
        "in the process, so two scenario runs in one worker can "
        "observe each other's state.  Initialise per-instance state "
        "in __init__ (the pass exempts class attributes every "
        "instance rebinds)."),
}


def _finding(graph: ProjectGraph, rel_to_path: Dict[str, str], rel: str,
             line: int, col: int, code: str, message: str,
             chain: Tuple[str, ...] = ()) -> Finding:
    return Finding(rel_to_path.get(rel, rel), line, col, code, message,
                   chain=chain)


def _witness(graph: ProjectGraph,
             parents: Dict[str, Optional[str]],
             qual: str) -> Tuple[str, ...]:
    return tuple(graph.chain_to(parents, qual))


def _digest_roots(graph: ProjectGraph) -> List[str]:
    roots: Set[str] = set()
    for builder in registry.DIGEST_PAYLOAD_BUILDERS:
        if builder in graph.functions:
            roots.add(builder)
    for qual in graph.functions:
        rec = graph.func_summary(qual)
        for call in rec["calls"]:
            resolved = call["resolved"]
            raw = call["raw"]
            if resolved in _DIGEST_SINK_FUNCS:
                roots.add(qual)
            elif raw is not None and resolved is None:
                # Bare/attribute call named like a digest function whose
                # import we could not resolve - be conservative only for
                # exact tail matches of the known sink names.
                tail = raw.split(".")[-1]
                if any(s.endswith("." + tail) for s in _DIGEST_SINK_FUNCS):
                    roots.add(qual)
    return sorted(roots)


def _exempt_invisible_use(entry: Dict[str, Any]) -> bool:
    """Is this invisible read / producer call an explicit non-digest use?"""
    if entry.get("in_test"):
        return True
    key = entry.get("key")
    if key is not None and (key in registry.DIGEST_INVISIBLE_FIELDS
                            or key in registry.SIBLING_KEYS):
        return True
    guards = set(entry.get("guards") or ())
    if guards & registry.TELEMETRY_GATES:
        return True
    return False


def _pass_digest_taint(graph: ProjectGraph,
                       rel_to_path: Dict[str, str]) -> List[Finding]:
    findings: List[Finding] = []
    roots = _digest_roots(graph)
    parents = graph.reachable_from(roots)
    for qual in sorted(parents):
        rec = graph.func_summary(qual)
        rel = graph.func_rel(qual)
        chain = _witness(graph, parents, qual)
        for read in rec["invisible_reads"]:
            if _exempt_invisible_use(read):
                continue
            findings.append(_finding(
                graph, rel_to_path, rel, read["lineno"], read["col"],
                "SIM601",
                f"digest-invisible field {read['attr']!r} read inside "
                f"the digest region ({qual}); route it through a "
                f"digest-invisible field or the sibling telemetry "
                f"payload", chain))
        for call in rec["producer_calls"]:
            if _exempt_invisible_use(call):
                continue
            recv = call["recv"]
            desc = f"{recv}.{call['method']}" if recv else call["method"]
            findings.append(_finding(
                graph, rel_to_path, rel, call["lineno"], call["col"],
                "SIM601",
                f"digest-invisible producer {desc}() called inside the "
                f"digest region ({qual}); its payload must not enter "
                f"the digest", chain))
    # ScenarioResult construction sites: invisible payload into a
    # digest-checked constructor field (anywhere, not just the region).
    for qual in sorted(graph.functions):
        rec = graph.func_summary(qual)
        rel = graph.func_rel(qual)
        for sr in rec["sr_calls"]:
            for kw in sr["kwargs"]:
                if kw["name"] not in registry.DIGEST_CHECKED_FIELDS:
                    continue
                for recv, method in kw["producers"]:
                    desc = f"{recv}.{method}" if recv else method
                    findings.append(_finding(
                        graph, rel_to_path, rel, kw["lineno"], kw["col"],
                        "SIM601",
                        f"digest-invisible producer {desc}() assigned to "
                        f"digest-checked ScenarioResult field "
                        f"{kw['name']!r}"))
                for attr in kw["reads"]:
                    findings.append(_finding(
                        graph, rel_to_path, rel, kw["lineno"], kw["col"],
                        "SIM601",
                        f"digest-invisible field {attr!r} flows into "
                        f"digest-checked ScenarioResult field "
                        f"{kw['name']!r}"))
    return findings


def _pass_field_registry(graph: ProjectGraph,
                         rel_to_path: Dict[str, str]) -> List[Finding]:
    findings: List[Finding] = []
    declared = (registry.DIGEST_CHECKED_FIELDS
                | registry.DIGEST_INVISIBLE_FIELDS)
    for path in sorted(graph.summaries):
        s = graph.summaries[path]
        fields = s.get("scenario_fields")
        if not fields:
            continue
        for field in fields:
            if field["name"] in declared:
                continue
            findings.append(_finding(
                graph, rel_to_path, s["rel"], field["lineno"],
                field["col"], "SIM602",
                f"ScenarioResult field {field['name']!r} is not declared "
                f"in the digest-safety registry; add it to "
                f"DIGEST_CHECKED_FIELDS or DIGEST_INVISIBLE_FIELDS in "
                f"repro/check/registry.py"))
    return findings


def _pass_markers(graph: ProjectGraph,
                  rel_to_path: Dict[str, str]) -> List[Finding]:
    findings: List[Finding] = []
    by_rel = {s["rel"]: s for s in graph.summaries.values()}
    for rel, kind in sorted(registry.MARKED_MODULES.items()):
        s = by_rel.get(rel)
        if s is None:
            continue
        marker = s.get("marker")
        if marker is None:
            findings.append(_finding(
                graph, rel_to_path, rel, 1, 0, "SIM603",
                f"module is registered as {kind!r} but declares no "
                f"__digest_safety__ marker"))
        elif kind not in marker:
            findings.append(_finding(
                graph, rel_to_path, rel, 1, 0, "SIM603",
                f"__digest_safety__ marker {marker!r} does not match the "
                f"registered kind {kind!r}"))
    return findings


def _lift_roots(graph: ProjectGraph) -> List[str]:
    return [qual for qual, (_p, rel, _s) in graph.functions.items()
            if rel.startswith(_LIFT_ROOT_PREFIXES)]


def _pass_lifted_wall_clock(graph: ProjectGraph,
                            rel_to_path: Dict[str, str],
                            parents: Dict[str, Optional[str]]) \
        -> List[Finding]:
    findings: List[Finding] = []
    for qual in sorted(parents):
        rel = graph.func_rel(qual)
        # File-local SIM101 already covers non-allowlisted files; the
        # lifted rule closes exactly the allowlist gap.
        if not rel.startswith(_WALL_CLOCK_ALLOWED_PREFIXES):
            continue
        rec = graph.func_summary(qual)
        for call in rec["calls"]:
            if call["resolved"] in _WALL_CLOCK:
                chain = _witness(graph, parents, qual)
                findings.append(_finding(
                    graph, rel_to_path, rel, call["lineno"], call["col"],
                    "SIM611",
                    f"{call['resolved']}() is host-dependent and "
                    f"transitively reachable from simulation code via "
                    f"{chain[0]}; pass simulated time in instead",
                    chain))
    return findings


def _rng_sanctioned(qual: str) -> bool:
    if qual in registry.RNG_SANCTIONED:
        return True
    return any(qual.startswith(p) for p in registry.RNG_SANCTIONED_PREFIXES)


def _pass_lifted_rng(graph: ProjectGraph,
                     rel_to_path: Dict[str, str],
                     parents: Dict[str, Optional[str]]) -> List[Finding]:
    from repro.check.simcheck import _RNG_ALLOWED
    findings: List[Finding] = []
    for qual in sorted(parents):
        rel = graph.func_rel(qual)
        if rel not in _RNG_ALLOWED:
            continue  # file-local SIM401 already covers everything else
        if _rng_sanctioned(qual):
            continue
        rec = graph.func_summary(qual)
        for call in rec["calls"]:
            if call["resolved"] in _RNG_CONSTRUCTORS:
                chain = _witness(graph, parents, qual)
                findings.append(_finding(
                    graph, rel_to_path, rel, call["lineno"], call["col"],
                    "SIM612",
                    f"{call['resolved']}() constructed in {qual}, which "
                    f"is outside the sanctioned RngFactory surface but "
                    f"reachable from simulation code", chain))
    return findings


def _runtime_functions(graph: ProjectGraph) -> Dict[str, Optional[str]]:
    roots = [qual for qual, (_p, rel, _s) in graph.functions.items()
             if rel.startswith(registry.RUNTIME_PREFIXES)]
    return graph.reachable_from(roots)


def _pass_pool_safety(graph: ProjectGraph,
                      rel_to_path: Dict[str, str],
                      runtime: Dict[str, Optional[str]]) -> List[Finding]:
    findings: List[Finding] = []
    for qual in sorted(runtime):
        path, rel, suffix = graph.functions[qual]
        if suffix == MODULE_BODY:
            continue  # import-time initialisation is once-per-process
        s = graph.summaries[path]
        module = s["module"]
        rec = graph.func_summary(qual)
        local_names = set(rec["locals"])
        for mut in rec["mutations"]:
            name = mut["name"]
            target_module: Optional[str] = None
            target_name: Optional[str] = None
            if name not in local_names and name in s["mutable_globals"]:
                target_module, target_name = module, name
            else:
                resolved = mut["resolved"]
                if resolved is not None:
                    mod, _sep, gname = resolved.rpartition(".")
                    other = graph.by_module.get(mod)
                    if other is not None \
                            and gname in other["mutable_globals"]:
                        target_module, target_name = mod, gname
            if target_module is None or target_name is None:
                continue
            full = f"{target_module}.{target_name}"
            if full in registry.PROCESS_LOCAL_STATE:
                continue
            findings.append(_finding(
                graph, rel_to_path, rel, mut["lineno"], mut["col"],
                "SIM701",
                f"module-level mutable global {full} mutated "
                f"({mut['op']}) from runtime code path {qual}; "
                f"cross-run state breaks --workers invariance"))
        for rebind in rec["rebinds"]:
            full = f"{module}.{rebind['name']}"
            if full in registry.PROCESS_LOCAL_STATE:
                continue
            findings.append(_finding(
                graph, rel_to_path, rel, rebind["lineno"], rebind["col"],
                "SIM702",
                f"global {full} rebound from runtime code path {qual}; "
                f"register deliberate process-local singletons in "
                f"registry.PROCESS_LOCAL_STATE"))
    # Class-level mutables: declaration-site check per runtime module.
    for path in sorted(graph.summaries):
        s = graph.summaries[path]
        if not s["rel"].startswith(registry.RUNTIME_PREFIXES):
            continue
        for cm in s["class_mutables"]:
            if cm["rebound"]:
                continue  # every instance replaces it in a method
            full = f"{s['module']}.{cm['cls']}.{cm['attr']}"
            if f"{s['module']}.{cm['attr']}" in registry.PROCESS_LOCAL_STATE \
                    or full in registry.PROCESS_LOCAL_STATE:
                continue
            findings.append(_finding(
                graph, rel_to_path, s["rel"], cm["lineno"], cm["col"],
                "SIM703",
                f"class-level mutable {cm['cls']}.{cm['attr']} is shared "
                f"by every instance in the process; initialise it in "
                f"__init__"))
    return findings


def run_flow_passes(graph: ProjectGraph,
                    rel_to_path: Optional[Dict[str, str]] = None) \
        -> List[Finding]:
    """Run all deep passes; returns findings sorted by location."""
    r2p = rel_to_path if rel_to_path is not None else {
        s["rel"]: p for p, s in graph.summaries.items()}
    findings: List[Finding] = []
    findings += _pass_digest_taint(graph, r2p)
    findings += _pass_field_registry(graph, r2p)
    findings += _pass_markers(graph, r2p)
    lift_parents = graph.reachable_from(_lift_roots(graph))
    findings += _pass_lifted_wall_clock(graph, r2p, lift_parents)
    findings += _pass_lifted_rng(graph, r2p, lift_parents)
    findings += _pass_pool_safety(graph, r2p, _runtime_functions(graph))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))
    return findings
