"""simcheck: an AST lint pass for simulation determinism and precision.

The simulator's contract is bit-identical, digest-checked results.  The
properties that guarantee that are easy to break silently, so this module
enforces them statically (stdlib ``ast`` only, no third-party deps):

* **SIM101** — wall-clock / entropy reads (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid1/4`` …) outside the
  allowlisted ``repro/runner/`` harness layer, where real-world timing is
  the point.
* **SIM102** — module-level ``random.*`` / ``numpy.random.*`` calls: the
  global RNGs are process-wide mutable state seeded outside the scenario,
  so results stop being a function of the scenario seed.
* **SIM103** — ``id(...)`` inside a sort/min/max key: CPython ``id`` is
  an address, so the order varies run to run.
* **SIM201** — iterating an unordered set expression (set literal,
  set comprehension, ``set(...)``/``frozenset(...)``,
  ``.intersection(...)`` …) directly in a ``for``/comprehension: the
  iteration order depends on hash seeding and insertion history, and in
  an event-driven simulator any such order leaks into event order (the
  ``BackpressureController`` bug class).  Wrap in ``sorted(...)``.
* **SIM301** — float contamination of integer-nanosecond state in
  ``repro/sim``, ``repro/sched``, ``repro/platform``: a float literal
  assigned to / compared with / multiplied into a ``*_ns`` variable, or a
  ``float(...)`` cast of one, silently caps precision at 2^53 ns (~104
  days) and rounds event times (the PR 4 bug class).  Declaring a
  quantity fractional takes an *explicit* ``float`` annotation at its
  definition; implicit contamination is flagged.  True division is
  exempt (ratios and unit conversions are legitimately float).
* **SIM401** — RNG construction (``random.Random``,
  ``np.random.default_rng`` …) outside ``repro/sim/rng.py``: every
  stream must come from the seeded :class:`~repro.sim.rng.RngFactory`.
* **SIM501** — direct ``heapq`` use outside ``repro/sim/engine.py``: the
  timer-wheel/heap engines own every priority queue on the hot path, and
  ad-hoc heaps re-introduce the O(log n)-per-event cost (and subtle
  tie-ordering hazards) the engine exists to centralise.  Schedule
  through the EventLoop instead.

Suppression: append ``# simcheck: ignore[CODE]`` (comma-separate several
codes) to the offending line.  Suppressions are counted and reported —
CI runs with zero.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
import sys
import textwrap
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = ["Finding", "FileReport", "check_file", "check_paths",
           "iter_rules", "main", "run_deep", "RULES_VERSION",
           "render_sarif", "finding_fingerprint"]

#: Bump when any rule's behaviour changes — combined with the registry
#: version and file content hash into the incremental-cache key.
RULES_VERSION = "2"


# ----------------------------------------------------------------------
# Framework
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``chain`` is the call-chain witness for cross-module findings
    (root-to-site function qualnames); empty for file-local rules.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    chain: Tuple[str, ...] = ()

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.chain:
            text += "\n    witness: " + " -> ".join(self.chain)
        return text

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
        if self.chain:
            out["chain"] = list(self.chain)
        return out


@dataclass
class FileReport:
    """Findings for one file plus suppression bookkeeping."""

    path: str
    findings: List[Finding]
    suppressed: int = 0
    error: Optional[str] = None


class FileContext:
    """Parsed source plus the import-alias map the rules resolve against."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: Path relative to the package root ("repro/...") for allowlists,
        #: or the basename when the file is outside the package.
        self.rel = _package_rel(path)
        #: local name -> fully qualified dotted module/function name.
        self.aliases = _collect_aliases(self.tree)

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Dotted name a call target resolves to, or None.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``numpy.random.default_rng``; ``monotonic`` after ``from time
        import monotonic`` resolves to ``time.monotonic``.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0])
        if head is None:
            # Unimported bare name: only builtins resolve (id, float, ...).
            return parts[0] if len(parts) == 1 else None
        return ".".join([head] + parts[1:])


def _package_rel(path: str) -> str:
    norm = path.replace(os.sep, "/")
    marker = "repro/"
    idx = norm.rfind("/" + marker)
    if idx >= 0:
        return norm[idx + 1:]
    if norm.startswith(marker):
        return norm
    return norm.rsplit("/", 1)[-1]


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


_RULES: List["Rule"] = []


def register(cls: Type["Rule"]) -> Type["Rule"]:
    _RULES.append(cls())
    return cls


def iter_rules() -> Iterator["Rule"]:
    return iter(_RULES)


class Rule:
    """One lint rule: a code, a summary, and a ``check`` pass."""

    code = "SIM000"
    summary = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(ctx.path, getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0), self.code, message)


# ----------------------------------------------------------------------
# SIM1xx — nondeterminism sources
# ----------------------------------------------------------------------
#: Functions whose return value depends on the host rather than the seed.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbelow",
}

#: Layers where real wall-clock time is the measured quantity, not a
#: simulation input: the campaign harness times worker processes.
_WALL_CLOCK_ALLOWED_PREFIXES = ("repro/runner/",)


@register
class WallClockRule(Rule):
    code = "SIM101"
    summary = ("wall-clock/entropy read in simulation code "
               "(time.*, datetime.now, os.urandom, uuid1/4, secrets)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.startswith(_WALL_CLOCK_ALLOWED_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target in _WALL_CLOCK:
                yield self.finding(
                    ctx, node,
                    f"call to {target}() is host-dependent; simulation "
                    f"code must take time from the EventLoop and "
                    f"randomness from repro.sim.rng")
            elif (target is None and isinstance(node.func, ast.Attribute)
                  and node.func.attr in ("now", "utcnow")
                  and _mentions_datetime(ctx, node.func.value)):
                yield self.finding(
                    ctx, node,
                    "datetime now()/utcnow() is host-dependent; simulation "
                    "code must take time from the EventLoop")


def _mentions_datetime(ctx: FileContext, node: ast.expr) -> bool:
    """Does this expression resolve to the datetime module/class?"""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return False
    head = ctx.aliases.get(cur.id)
    return head is not None and head.split(".")[0] == "datetime"


_GLOBAL_RNG_EXEMPT = {
    # Constructors/types: SIM401's territory, not global-state use.
    "random.Random", "random.SystemRandom",
    "numpy.random.Generator", "numpy.random.default_rng",
    "numpy.random.RandomState", "numpy.random.SeedSequence",
    "numpy.random.PCG64", "numpy.random.Philox", "numpy.random.MT19937",
    "numpy.random.BitGenerator",
}


@register
class GlobalRandomRule(Rule):
    code = "SIM102"
    summary = ("module-level random.*/numpy.random.* call "
               "(global RNG state is not seeded by the scenario)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target is None or target in _GLOBAL_RNG_EXEMPT:
                continue
            if (target.startswith("random.")
                    and target.count(".") == 1) or \
                    target.startswith("numpy.random."):
                yield self.finding(
                    ctx, node,
                    f"{target}() uses the process-global RNG; draw from a "
                    f"repro.sim.rng.RngFactory stream instead")


_SORT_CALLS = {"sorted", "min", "max"}


@register
class IdInSortKeyRule(Rule):
    code = "SIM103"
    summary = "id() inside a sort/min/max key (address-dependent order)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            is_sort = (
                (isinstance(node.func, ast.Name)
                 and node.func.id in _SORT_CALLS)
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort")
            )
            if not is_sort:
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                # key=id passes the builtin itself; key=lambda t: id(t)
                # calls it — both order by memory address.
                if (isinstance(kw.value, ast.Name)
                        and ctx.resolve_call(kw.value) == "id"):
                    yield self.finding(
                        ctx, kw.value,
                        "id as a sort key orders by memory address, "
                        "which varies across runs; key on a stable "
                        "field (name, index) instead")
                    continue
                for sub in ast.walk(kw.value):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Name)
                            and sub.func.id == "id"
                            and ctx.resolve_call(sub.func) == "id"):
                        yield self.finding(
                            ctx, sub,
                            "id() in a sort key orders by memory address, "
                            "which varies across runs; key on a stable "
                            "field (name, index) instead")


# ----------------------------------------------------------------------
# SIM2xx — unordered iteration
# ----------------------------------------------------------------------
_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}


def _is_set_expr(ctx: FileContext, node: ast.expr) -> Optional[str]:
    """Describe ``node`` if it is statically known to be an unordered set."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        target = ctx.resolve_call(node.func)
        if target in ("set", "frozenset"):
            return f"{target}(...)"
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS):
            return f".{node.func.attr}(...)"
    return None


@register
class SetIterationRule(Rule):
    code = "SIM201"
    summary = ("iteration over an unordered set expression "
               "(order leaks into event order; wrap in sorted())")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                desc = _is_set_expr(ctx, it)
                if desc is not None:
                    yield self.finding(
                        ctx, it,
                        f"iterating {desc} directly: set order depends on "
                        f"hash seeding/insertion history; wrap in sorted()")


# ----------------------------------------------------------------------
# SIM3xx — float contamination of integer-nanosecond state
# ----------------------------------------------------------------------
#: Only the hot simulation layers carry the integer-ns invariant; the
#: analysis/metrics layers legitimately convert to float seconds.
_NS_SCOPED_PREFIXES = ("repro/sim/", "repro/sched/", "repro/platform/")


def _ns_name(node: ast.expr) -> Optional[str]:
    """The ``*_ns`` identifier an expression names, if any."""
    if isinstance(node, ast.Name) and node.id.endswith("_ns"):
        return node.id
    if isinstance(node, ast.Attribute) and node.attr.endswith("_ns"):
        return node.attr
    return None


def _mentions_ns(node: ast.expr) -> Optional[str]:
    for sub in ast.walk(node):
        name = _ns_name(sub)
        if name is not None:
            return name
    return None


def _is_float_const(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_const(node.operand)
    return False


#: Arithmetic that must stay in the integer domain (Div is exempt: a
#: ratio or unit conversion is legitimately float).
_INT_DOMAIN_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Mod, ast.FloorDiv)


@register
class FloatNsRule(Rule):
    code = "SIM301"
    summary = ("implicit float contamination of a *_ns quantity in "
               "sim/sched/platform (2^53 precision hazard)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.rel.startswith(_NS_SCOPED_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            yield from self._check_node(ctx, node)

    def _check_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        # x_ns = 1.5  /  self.x_ns = 0.0   (implicit float declaration)
        if isinstance(node, ast.Assign) and _is_float_const(node.value):
            for tgt in node.targets:
                name = _ns_name(tgt)
                if name is not None:
                    yield self.finding(
                        ctx, node,
                        f"float literal assigned to {name}: nanosecond "
                        f"state is integer; use an int literal (annotate "
                        f"': float' at the declaration if fractional is "
                        f"intended)")
        # x_ns: int = 0.0 — float default contradicting a non-float
        # annotation; x_ns: float = ... is an explicit opt-in and passes.
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            name = _ns_name(node.target)
            if (name is not None and _is_float_const(node.value)
                    and not _is_float_annotation(node.annotation)):
                yield self.finding(
                    ctx, node,
                    f"float default for {name} without an explicit float "
                    f"annotation; nanosecond state is integer")
        # x_ns += 0.5
        elif isinstance(node, ast.AugAssign):
            name = _ns_name(node.target)
            if name is not None and _is_float_const(node.value) \
                    and isinstance(node.op, _INT_DOMAIN_OPS):
                yield self.finding(
                    ctx, node,
                    f"float literal folded into {name} with an integer-"
                    f"domain operator")
        # x_ns + 1.5, 2.5 * x_ns (Div exempt)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, _INT_DOMAIN_OPS):
            for a, b in ((node.left, node.right), (node.right, node.left)):
                name = _ns_name(a)
                if name is not None and _is_float_const(b):
                    yield self.finding(
                        ctx, node,
                        f"float literal combined with {name} via an "
                        f"integer-domain operator")
                    break
        # x_ns == 1.5, x_ns < 0.0
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            if any(_ns_name(o) for o in operands) \
                    and any(_is_float_const(o) for o in operands):
                yield self.finding(
                    ctx, node,
                    "comparison between a *_ns quantity and a float "
                    "literal; compare against an int")
        # float(x_ns) — explicit down-conversion of an integer counter.
        elif isinstance(node, ast.Call) and ctx.resolve_call(node.func) == "float" \
                and len(node.args) == 1:
            name = _mentions_ns(node.args[0])
            if name is not None:
                yield self.finding(
                    ctx, node,
                    f"float({name}) caps precision at 2^53; keep "
                    f"nanosecond state integer (divide for ratios instead)")
        # def f(x_ns=1.5) — float default without a float annotation.
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            all_args = args.posonlyargs + args.args + args.kwonlyargs
            defaults = ([None] * (len(args.posonlyargs) + len(args.args)
                                  - len(args.defaults))
                        + list(args.defaults) + list(args.kw_defaults))
            for arg, default in zip(all_args, defaults):
                if (default is not None and arg.arg.endswith("_ns")
                        and _is_float_const(default)
                        and not (arg.annotation is not None
                                 and _is_float_annotation(arg.annotation))):
                    yield self.finding(
                        ctx, default,
                        f"float default for parameter {arg.arg} without an "
                        f"explicit float annotation")


def _is_float_annotation(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "float"


# ----------------------------------------------------------------------
# SIM4xx — RNG construction
# ----------------------------------------------------------------------
_RNG_CONSTRUCTORS = {
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator",
}

#: The one module allowed to construct generators: the seeded factory.
_RNG_ALLOWED = ("repro/sim/rng.py",)


@register
class RngConstructionRule(Rule):
    code = "SIM401"
    summary = ("RNG constructed outside repro/sim/rng.py "
               "(all streams come from the seeded RngFactory)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel in _RNG_ALLOWED:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_call(node.func)
            if target in _RNG_CONSTRUCTORS:
                yield self.finding(
                    ctx, node,
                    f"{target}() constructed outside repro/sim/rng.py; "
                    f"request a named stream from RngFactory so seeding "
                    f"stays centralised")


# ----------------------------------------------------------------------
# SIM5xx — hot-path structure
# ----------------------------------------------------------------------
#: The one module allowed to touch heapq: the event-loop engines.
_HEAPQ_ALLOWED = ("repro/sim/engine.py",)


@register
class HeapqOutsideEngineRule(Rule):
    code = "SIM501"
    summary = ("direct heapq use outside repro/sim/engine.py "
               "(hot paths must schedule through the EventLoop)")

    _MSG = ("direct heapq use outside repro/sim/engine.py; priority "
            "queues on the hot path belong to the EventLoop engines "
            "(call_at/call_after/call_every), which centralise "
            "tie-ordering and amortise dispatch cost")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel in _HEAPQ_ALLOWED:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "heapq" or a.name.startswith("heapq."):
                        yield self.finding(ctx, node, self._MSG)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq" and not node.level:
                    yield self.finding(ctx, node, self._MSG)
            elif isinstance(node, ast.Call):
                target = ctx.resolve_call(node.func)
                if target is not None and target.startswith("heapq."):
                    yield self.finding(ctx, node, self._MSG)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"#\s*simcheck:\s*ignore\[([A-Z0-9,\s]+)\]")


def _suppressions(source: str) -> Dict[int, set]:
    out: Dict[int, set] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[i] = {c.strip() for c in m.group(1).split(",") if c.strip()}
    return out


def check_file(path: str) -> FileReport:
    """Lint one file; parse errors are reported, not raised."""
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        ctx = FileContext(path, source)
    except (OSError, SyntaxError, ValueError, RecursionError) as exc:
        return FileReport(path, [], error=str(exc))
    suppress = _suppressions(source)
    findings: List[Finding] = []
    suppressed = 0
    for rule in _RULES:
        for finding in rule.check(ctx):
            codes = suppress.get(finding.line)
            if codes is not None and finding.code in codes:
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return FileReport(path, findings, suppressed=suppressed)


def _iter_py_files(paths: Sequence[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git", ".hypothesis"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def check_paths(paths: Sequence[str]) -> Tuple[List[FileReport], int]:
    """Lint files/directories; returns (reports, total suppressed)."""
    reports = []
    suppressed = 0
    for path in _iter_py_files(paths):
        report = check_file(path)
        reports.append(report)
        suppressed += report.suppressed
    return reports, suppressed


# ----------------------------------------------------------------------
# Deep mode: incremental cache, parallel extraction, flow passes
# ----------------------------------------------------------------------
def _cache_version() -> str:
    from repro.check.registry import REGISTRY_VERSION
    return f"{RULES_VERSION}:{REGISTRY_VERSION}"


def _content_key(source: str) -> str:
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return f"{digest}:{_cache_version()}"


def _analyze_file(path: str) -> Dict[str, Any]:
    """File-local findings plus the whole-program summary for one file.

    Returns a JSON-compatible cache entry; never raises on bad input
    (the error lands in ``entry["error"]``).
    """
    entry: Dict[str, Any] = {
        "key": None, "findings": [], "suppressed": 0, "error": None,
        "summary": None, "suppress": {},
    }
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        entry["error"] = str(exc)
        return entry
    entry["key"] = _content_key(source)
    try:
        ctx = FileContext(path, source)
    except (SyntaxError, ValueError, RecursionError) as exc:
        entry["error"] = str(exc)
        return entry
    suppress = _suppressions(source)
    entry["suppress"] = {str(line): sorted(codes)
                         for line, codes in suppress.items()}
    findings: List[Finding] = []
    suppressed = 0
    for rule in _RULES:
        for finding in rule.check(ctx):
            codes = suppress.get(finding.line)
            if codes is not None and finding.code in codes:
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    entry["findings"] = [f.to_dict() for f in findings]
    entry["suppressed"] = suppressed
    try:
        from repro.check.graph import extract_summary
        entry["summary"] = extract_summary(path, source)
    except (SyntaxError, ValueError, RecursionError) as exc:
        entry["error"] = str(exc)
    return entry


def _load_cache(cache_path: Optional[str]) -> Dict[str, Any]:
    if not cache_path or not os.path.exists(cache_path):
        return {}
    try:
        with open(cache_path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != _cache_version():
        return {}
    entries = data.get("entries")
    return entries if isinstance(entries, dict) else {}


def _save_cache(cache_path: Optional[str],
                entries: Dict[str, Any]) -> None:
    if not cache_path:
        return
    payload = {"version": _cache_version(), "entries": entries}
    try:
        parent = os.path.dirname(cache_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = cache_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, cache_path)
    except OSError:
        pass  # cache is best-effort; never fail the check over it


def _finding_from_dict(path: str, data: Dict[str, Any]) -> Finding:
    return Finding(path, int(data["line"]), int(data["col"]),
                   str(data["code"]), str(data["message"]),
                   chain=tuple(data.get("chain") or ()))


@dataclass
class DeepResult:
    """Everything one ``repro check --deep`` run produced."""

    reports: List[FileReport]
    deep_findings: List[Finding]
    suppressed: int
    cache_hits: int
    cache_misses: int


def run_deep(paths: Sequence[str], cache_path: Optional[str] = None,
             jobs: Optional[int] = None) -> DeepResult:
    """File-local rules plus whole-program flow passes.

    Per-file work (parse + rules + graph summary) is cached by content
    hash and parallelised across processes; the linked graph and flow
    passes run in the parent.  Parse errors stay per-file (`FileReport
    .error`) — the graph is built from the parseable subset.
    """
    from repro.check.flow import run_flow_passes
    from repro.check.graph import ProjectGraph

    files = list(_iter_py_files(paths))
    cached = _load_cache(cache_path)
    entries: Dict[str, Any] = {}
    hits = 0
    todo: List[str] = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                key = _content_key(fh.read())
        except OSError:
            key = None
        prior = cached.get(path)
        if key is not None and prior is not None \
                and prior.get("key") == key:
            entries[path] = prior
            hits += 1
        else:
            todo.append(path)

    if jobs is None:
        jobs = min(os.cpu_count() or 1, 8)
    if jobs > 1 and len(todo) >= 16:
        from concurrent.futures import ProcessPoolExecutor
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for path, entry in zip(todo, pool.map(
                        _analyze_file, todo, chunksize=8)):
                    entries[path] = entry
        except OSError:  # no process spawning available — degrade
            for path in todo:
                entries[path] = _analyze_file(path)
    else:
        for path in todo:
            entries[path] = _analyze_file(path)
    _save_cache(cache_path, entries)

    reports: List[FileReport] = []
    suppressed = 0
    summaries: Dict[str, Dict[str, Any]] = {}
    suppress_by_path: Dict[str, Dict[int, set]] = {}
    for path in files:
        entry = entries[path]
        reports.append(FileReport(
            path,
            [_finding_from_dict(path, f) for f in entry["findings"]],
            suppressed=entry["suppressed"],
            error=entry["error"],
        ))
        suppressed += entry["suppressed"]
        if entry["summary"] is not None and entry["error"] is None:
            summaries[path] = entry["summary"]
        suppress_by_path[path] = {
            int(line): set(codes)
            for line, codes in entry["suppress"].items()}

    graph = ProjectGraph(summaries)
    deep_findings: List[Finding] = []
    for finding in run_flow_passes(graph):
        codes = suppress_by_path.get(finding.path, {}).get(finding.line)
        if codes is not None and finding.code in codes:
            suppressed += 1
        else:
            deep_findings.append(finding)
    return DeepResult(reports, deep_findings, suppressed,
                      cache_hits=hits, cache_misses=len(todo))


# ----------------------------------------------------------------------
# Output formats and baseline
# ----------------------------------------------------------------------
def _all_rule_docs(deep: bool) -> Dict[str, str]:
    docs = {r.code: r.summary for r in _RULES}
    if deep:
        from repro.check.flow import DEEP_RULES
        docs.update(DEEP_RULES)
    return docs


def finding_fingerprint(finding: Finding) -> str:
    """Stable identity for baselining: path (package-relative), code and
    message — deliberately line-number independent so unrelated edits
    don't churn the baseline."""
    rel = _package_rel(finding.path)
    raw = f"{rel}|{finding.code}|{finding.message}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


def _baseline_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for f in findings:
        fp = finding_fingerprint(f)
        counts[fp] = counts.get(fp, 0) + 1
    return counts


def load_baseline(path: str) -> Dict[str, int]:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    fps = data.get("fingerprints", {})
    return {str(k): int(v) for k, v in fps.items()}


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    payload = {
        "format": "simcheck-baseline-v1",
        "rules_version": RULES_VERSION,
        "fingerprints": _baseline_counts(findings),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def apply_baseline(findings: Sequence[Finding],
                   baseline: Dict[str, int]) -> Tuple[List[Finding], int]:
    """Split findings into (new, baselined-count)."""
    budget = dict(baseline)
    new: List[Finding] = []
    matched = 0
    for f in findings:
        fp = finding_fingerprint(f)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            matched += 1
        else:
            new.append(f)
    return new, matched


def render_sarif(findings: Sequence[Finding], deep: bool) -> Dict[str, Any]:
    """Minimal SARIF 2.1.0 document for GitHub code scanning."""
    docs = _all_rule_docs(deep)
    results = []
    for f in findings:
        message = f.message
        if f.chain:
            message += " [witness: " + " -> ".join(f.chain) + "]"
        results.append({
            "ruleId": f.code,
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace(os.sep, "/")},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": f.col + 1,
                    },
                },
            }],
            "partialFingerprints": {
                "simcheck/v1": finding_fingerprint(f)},
        })
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "simcheck",
                "version": RULES_VERSION,
                "informationUri": "docs/static-analysis.md",
                "rules": [
                    {"id": code,
                     "shortDescription": {"text": summary}}
                    for code, summary in sorted(docs.items())],
            }},
            "results": results,
        }],
    }


def explain(code: str, out: Any) -> int:
    """``repro check --explain CODE``: print the rule's documentation."""
    from repro.check.flow import EXPLAIN
    text = EXPLAIN.get(code.upper())
    if text is None:
        known = ", ".join(sorted(EXPLAIN))
        print(f"simcheck: unknown rule code {code!r} (known: {known})",
              file=out)
        return 2
    print(f"{code.upper()} — {_all_rule_docs(True).get(code.upper(), '')}",
          file=out)
    print(file=out)
    print(textwrap.fill(text, width=78), file=out)
    return 0


def main(paths: Sequence[str], as_json: bool = False,
         out: Optional[Any] = None, deep: bool = False,
         fmt: Optional[str] = None, baseline: Optional[str] = None,
         update_baseline: bool = False, explain_code: Optional[str] = None,
         jobs: Optional[int] = None, cache: Optional[str] = None,
         no_cache: bool = False) -> int:
    """Entry point for ``repro check``.

    Exit codes: 0 clean, 1 findings, 2 a file could not be parsed (or
    usage error).  ``--deep`` adds the whole-program flow passes on top
    of the file-local rules, with a content-hash incremental cache.
    """
    out = out if out is not None else sys.stdout
    if explain_code is not None:
        return explain(explain_code, out)
    fmt = fmt or ("json" if as_json else "text")

    cache_hits = cache_misses = 0
    if deep:
        cache_path = None if no_cache else (
            cache or os.path.join(".cache", "simcheck.json"))
        result = run_deep(paths, cache_path=cache_path, jobs=jobs)
        reports = result.reports
        suppressed = result.suppressed
        findings = [f for r in reports for f in r.findings]
        findings += result.deep_findings
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        cache_hits, cache_misses = result.cache_hits, result.cache_misses
    else:
        reports, suppressed = check_paths(paths)
        findings = [f for r in reports for f in r.findings]
    errors = [(r.path, r.error) for r in reports if r.error]

    if update_baseline:
        if not baseline:
            print("simcheck: --update-baseline requires --baseline PATH",
                  file=out)
            return 2
        save_baseline(baseline, findings)
        print(f"simcheck: baseline written to {baseline} "
              f"({len(findings)} finding(s))", file=out)
        return 2 if errors else 0

    baselined = 0
    if baseline:
        try:
            known = load_baseline(baseline)
        except (OSError, ValueError) as exc:
            print(f"simcheck: cannot read baseline {baseline}: {exc}",
                  file=out)
            return 2
        findings, baselined = apply_baseline(findings, known)

    if fmt == "sarif":
        print(json.dumps(render_sarif(findings, deep), indent=2,
                         sort_keys=True), file=out)
    elif fmt == "json":
        payload: Dict[str, Any] = {
            "files": len(reports),
            "findings": [f.to_dict() for f in findings],
            "suppressed": suppressed,
            "errors": [{"path": p, "error": e} for p, e in errors],
            "rules": _all_rule_docs(deep),
        }
        if deep:
            payload["deep"] = True
            payload["cache"] = {"hits": cache_hits,
                                "misses": cache_misses}
        if baseline:
            payload["baselined"] = baselined
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        for f in findings:
            print(f.render(), file=out)
        for path, err in errors:
            print(f"{path}: ERROR {err}", file=out)
        tail = ""
        if deep:
            tail += (f", cache {cache_hits} hit(s)/"
                     f"{cache_misses} miss(es)")
        if baseline:
            tail += f", {baselined} baselined"
        if errors:
            tail += f", {len(errors)} error(s)"
        print(f"simcheck: {len(reports)} files, {len(findings)} "
              f"finding(s), {suppressed} suppression(s)" + tail, file=out)
    if errors:
        return 2
    return 1 if findings else 0
