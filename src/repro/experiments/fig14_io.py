"""Figure 14: NFs performing disk I/O (§4.3.5).

Two flows at line rate share a two-NF chain; only the first flow is
logged to disk by the second NF.  The baseline logs synchronously (each
write blocks the NF for a device round trip — head-of-line blocking the
non-logged flow too); NFVnice uses libnf's batched, double-buffered
asynchronous writes and its scheduling, so the NF keeps processing the
second flow while the device drains the first flow's log.

Packet size is swept (the paper varies it along the x-axis): larger
packets raise the bytes-per-write and the line-rate interval, shifting
where the disk, not the CPU, becomes the logged flow's bottleneck.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.io import AsyncIOContext, DiskDevice, SyncIOContext
from repro.experiments.common import Scenario, ScenarioResult
from repro.metrics.report import render_table

PKT_SIZES = (64, 128, 256, 512, 1024)
NF1_COST = 270.0
LOGGER_COST = 300.0


def run_case(pkt_size: int, features: str, duration_s: float = 1.0,
             disk_bandwidth_bps: float = 400e6 * 8,
             seed: int = 0) -> ScenarioResult:
    use_async = features != "Default"
    scenario = Scenario(scheduler="BATCH", features=features, seed=seed)
    disk = DiskDevice(scenario.loop, bandwidth_bps=disk_bandwidth_bps)
    if use_async:
        io = AsyncIOContext(scenario.loop, disk, buffer_requests=256)
    else:
        io = SyncIOContext(scenario.loop, disk)
    scenario.add_nf("nf1", NF1_COST, core=0)
    scenario.add_nf(
        "logger", LOGGER_COST, core=0, io=io,
        io_selector=lambda flow: flow.flow_id == "logged",
    )
    scenario.add_chain("chain-logged", ["nf1", "logger"])
    scenario.add_chain("chain-plain", ["nf1", "logger"])
    scenario.add_flow("logged", "chain-logged", line_rate_fraction=0.5,
                      pkt_size=pkt_size)
    scenario.add_flow("plain", "chain-plain", line_rate_fraction=0.5,
                      pkt_size=pkt_size)
    return scenario.run(duration_s)


def run_fig14(duration_s: float = 1.0) -> Dict[Tuple[int, str], ScenarioResult]:
    return {
        (pkt, system): run_case(pkt, system, duration_s)
        for pkt in PKT_SIZES
        for system in ("Default", "NFVnice")
    }


def format_figure14(results: Dict[Tuple[int, str], ScenarioResult]) -> str:
    pkt_sizes = sorted({k[0] for k in results})
    rows: List[list] = []
    for pkt in pkt_sizes:
        row: List[object] = [pkt]
        for system in ("Default", "NFVnice"):
            res = results[(pkt, system)]
            total_bps = sum(c.throughput_bps for c in res.chains.values())
            row.append(round(total_bps / 1e9, 3))
        d = results[(pkt, "Default")]
        n = results[(pkt, "NFVnice")]
        d_bps = sum(c.throughput_bps for c in d.chains.values())
        n_bps = sum(c.throughput_bps for c in n.chains.values())
        row.append(round(n_bps / d_bps, 1) if d_bps > 0 else float("inf"))
        rows.append(row)
    return render_table(
        ["pkt size", "sync/Default Gbps", "async/NFVnice Gbps", "speedup"],
        rows, title="Figure 14: throughput with one flow logging to disk",
    )


def main(duration_s: float = 1.0) -> str:
    return format_figure14(run_fig14(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
