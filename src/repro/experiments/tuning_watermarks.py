"""§4.3.8: tuning the backpressure watermarks.

The paper sweeps the HIGH watermark with a fixed margin and then the
margin with HIGH fixed at 80 %: below ~70 % the queue is under-used and
throughput drops; above ~80 % upstream drops rise (not enough buffering
headroom); margins under ~5 thrash the throttle and margins above ~30
degrade throughput.  The sweep uses the Figure 7 Low-Med-High chain.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import Scenario, ScenarioResult, build_linear_chain
from repro.metrics.report import render_table

CHAIN_COSTS = (120.0, 270.0, 550.0)
HIGH_SWEEP = (0.50, 0.60, 0.70, 0.80, 0.90, 0.95)
MARGIN_SWEEP = (0.01, 0.05, 0.10, 0.20, 0.30, 0.40)
DEFAULT_MARGIN = 0.20
DEFAULT_HIGH = 0.80


def run_point(high: float, low: float, duration_s: float = 1.0,
              seed: int = 0) -> ScenarioResult:
    scenario = Scenario(
        scheduler="BATCH", features="NFVnice", seed=seed,
        high_watermark=high, low_watermark=low,
    )
    build_linear_chain(scenario, CHAIN_COSTS, core=0)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def run_high_sweep(duration_s: float = 1.0) -> Dict[float, ScenarioResult]:
    return {
        high: run_point(high, max(0.05, high - DEFAULT_MARGIN), duration_s)
        for high in HIGH_SWEEP
    }


def run_margin_sweep(duration_s: float = 1.0) -> Dict[float, ScenarioResult]:
    return {
        margin: run_point(DEFAULT_HIGH, DEFAULT_HIGH - margin, duration_s)
        for margin in MARGIN_SWEEP
    }


def _rows(results: Dict[float, ScenarioResult], label: str) -> List[list]:
    rows: List[list] = []
    for key in sorted(results):
        res = results[key]
        rows.append([
            f"{key:.2f}",
            round(res.total_throughput_pps / 1e6, 3),
            round(res.total_wasted_pps / 1e3, 1),
            round(res.total_entry_discard_pps / 1e6, 2),
        ])
    return rows


def format_sweeps(high: Dict[float, ScenarioResult],
                  margin: Dict[float, ScenarioResult]) -> str:
    headers = ["value", "tput Mpps", "wasted Kpps", "entry-drop Mpps"]
    return "\n".join([
        render_table(headers, _rows(high, "high"),
                     title="Watermark tuning: HIGH sweep (margin 0.20)"),
        render_table(headers, _rows(margin, "margin"),
                     title="Watermark tuning: margin sweep (HIGH 0.80)"),
    ])


def main(duration_s: float = 1.0) -> str:
    return format_sweeps(run_high_sweep(duration_s),
                         run_margin_sweep(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
