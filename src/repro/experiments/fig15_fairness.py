"""Figure 15: dynamic CPU tuning and rate-cost proportional fairness
(§4.3.6).

* 15a — two NFs with a 1:3 cost ratio share a core; midway through the
  run NF1's cost triples (to NF2's level), later reverting.  NFVnice's
  Monitor re-estimates the service time and re-writes cgroup weights
  within tens of milliseconds, so the CPU split tracks 25/75 → 50/50 →
  25/75; the NORMAL scheduler stays at 50/50 throughout.  The paper's
  31 s/60 s switch points are reproduced proportionally on a compressed
  timeline.

* 15b — Jain's fairness index of per-flow throughput as NF cost diversity
  grows (ratios 1:2:5:20:40:60): the vanilla scheduler decays toward
  ~0.6, NFVnice stays ~1.0.

* 15c — at diversity 6, the per-NF CPU share NFVnice assigns (~1 % for
  the lightest, ~46 % for the heaviest) and the resulting equal flow
  throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import Scenario, ScenarioResult
from repro.metrics.fairness import jain_index
from repro.metrics.report import render_table
from repro.nfs.cost_models import FixedCost
from repro.sim.clock import SEC

# ----------------------------------------------------------------------
# 15a: dynamic tuning
# ----------------------------------------------------------------------
BASE_COST = 500.0
HEAVY_COST = 1500.0
STEP_ON_S = 3.0     # paper: 31 s of 90; ours: 3 s of 9
STEP_OFF_S = 6.0
DYN_DURATION_S = 9.0


@dataclass
class DynamicTuningResult:
    features: str
    #: Mean CPU share of (nf1, nf2) in each phase.
    phase_shares: Dict[str, Tuple[float, float]]


def run_dynamic_tuning(features: str,
                       duration_s: float = DYN_DURATION_S,
                       seed: int = 0) -> DynamicTuningResult:
    scenario = Scenario(scheduler="NORMAL", features=features, seed=seed,
                        num_rx_threads=2)
    nf1 = scenario.add_nf("nf1", BASE_COST, core=0)
    nf2 = scenario.add_nf("nf2", HEAVY_COST, core=0)
    scenario.add_chain("chain1", ["nf1"])
    scenario.add_chain("chain2", ["nf2"])
    scenario.add_flow("flow1", "chain1", rate_pps=3.0e6)
    scenario.add_flow("flow2", "chain2", rate_pps=3.0e6)

    ovh = scenario.config.nf_overhead_cycles

    def step_up() -> None:
        nf1.cost_model = FixedCost(HEAVY_COST + ovh)

    def step_down() -> None:
        nf1.cost_model = FixedCost(BASE_COST + ovh)

    scenario.loop.call_at(int(STEP_ON_S * SEC), step_up)
    scenario.loop.call_at(int(STEP_OFF_S * SEC), step_down)

    probes = {
        "rt1": ((lambda: nf1.stats.runtime_ns), True),
        "rt2": ((lambda: nf2.stats.runtime_ns), True),
    }
    result = scenario.run(duration_s, extra_probes=probes)

    phases = {
        "initial": (1.0, STEP_ON_S),
        "stepped": (STEP_ON_S + 1.0, STEP_OFF_S),
        "reverted": (STEP_OFF_S + 1.0, duration_s),
    }
    phase_shares: Dict[str, Tuple[float, float]] = {}
    for label, (t0, t1) in phases.items():
        r1 = result.series["rt1"].between(int(t0 * SEC), int(t1 * SEC) + 1)
        r2 = result.series["rt2"].between(int(t0 * SEC), int(t1 * SEC) + 1)
        total = r1.mean() + r2.mean()
        if total > 0:
            phase_shares[label] = (r1.mean() / total, r2.mean() / total)
        else:
            phase_shares[label] = (0.0, 0.0)
    return DynamicTuningResult(features=features, phase_shares=phase_shares)


def format_figure15a(results: Dict[str, DynamicTuningResult]) -> str:
    rows: List[list] = []
    for system, res in results.items():
        for phase, (s1, s2) in res.phase_shares.items():
            rows.append([system, phase, round(100 * s1, 1), round(100 * s2, 1)])
    return render_table(
        ["system", "phase", "NF1 cpu%", "NF2 cpu%"], rows,
        title="Figure 15a: CPU split around NF1's cost step "
              "(1:3 -> 1:1 -> 1:3)",
    )


# ----------------------------------------------------------------------
# 15b / 15c: fairness vs diversity
# ----------------------------------------------------------------------
COST_RATIOS = (1, 2, 5, 20, 40, 60)
DIVERSITY_BASE_COST = 250.0
PER_FLOW_PPS = 3.0e6


def run_diversity_level(level: int, features: str, duration_s: float = 1.0,
                        seed: int = 0) -> ScenarioResult:
    if not 1 <= level <= len(COST_RATIOS):
        raise ValueError(f"diversity level must be 1..{len(COST_RATIOS)}")
    scenario = Scenario(scheduler="NORMAL", features=features, seed=seed,
                        num_rx_threads=level)
    for i in range(level):
        cost = DIVERSITY_BASE_COST * COST_RATIOS[i]
        scenario.add_nf(f"nf{i + 1}", cost, core=0)
        scenario.add_chain(f"chain{i + 1}", [f"nf{i + 1}"])
        scenario.add_flow(f"flow{i + 1}", f"chain{i + 1}",
                          rate_pps=PER_FLOW_PPS)
    return scenario.run(duration_s)


def run_diversity(duration_s: float = 1.0
                  ) -> Dict[Tuple[int, str], ScenarioResult]:
    return {
        (level, system): run_diversity_level(level, system, duration_s)
        for level in range(1, len(COST_RATIOS) + 1)
        for system in ("Default", "NFVnice")
    }


def fairness_of(result: ScenarioResult) -> float:
    """Jain's index over per-flow (per-chain) throughputs."""
    tputs = [c.throughput_pps for c in result.chains.values()]
    return jain_index(tputs)


def format_figure15b(results: Dict[Tuple[int, str], ScenarioResult]) -> str:
    levels = sorted({k[0] for k in results})
    rows: List[list] = []
    for level in levels:
        rows.append([
            level,
            round(fairness_of(results[(level, "Default")]), 3),
            round(fairness_of(results[(level, "NFVnice")]), 3),
        ])
    return render_table(
        ["diversity", "Default Jain", "NFVnice Jain"], rows,
        title="Figure 15b: Jain's fairness index vs NF cost diversity",
    )


def format_figure15c(results: Dict[Tuple[int, str], ScenarioResult]) -> str:
    level = max(k[0] for k in results)
    rows: List[list] = []
    for i in range(1, level + 1):
        row: List[object] = [f"NF{i} (x{COST_RATIOS[i - 1]})"]
        for system in ("Default", "NFVnice"):
            res = results[(level, system)]
            nf = res.nf(f"nf{i}")
            row += [
                round(100 * nf.cpu_share, 1),
                round(res.chain(f"chain{i}").throughput_pps / 1e6, 3),
            ]
        rows.append(row)
    return render_table(
        ["NF", "Def cpu%", "Def Mpps", "NFVn cpu%", "NFVn Mpps"],
        rows,
        title=f"Figure 15c: CPU shares and throughput at diversity {level}",
    )


def main(duration_s: float = 1.0) -> str:
    dynamic = {
        system: run_dynamic_tuning(system)
        for system in ("Default", "NFVnice")
    }
    diversity = run_diversity(duration_s)
    return "\n".join([
        format_figure15a(dynamic),
        format_figure15b(diversity),
        format_figure15c(diversity),
    ])


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
