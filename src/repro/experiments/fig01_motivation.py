"""Figure 1 + Tables 1-2: the motivation study (paper §2.2).

Three NF processes share one CPU core, each serving its own flow (no
chaining).  Two cost mixes and two load mixes:

* homogeneous (Fig 1a / Table 1): all NFs cost ~250 cycles;
* heterogeneous (Fig 1b / Table 2): costs 500 / 250 / 50 cycles;
* even load: 5 Mpps to every NF; uneven: 6 / 6 / 3 Mpps.

The runs use the **Default** platform (no NFVnice) because the point of
the figure is that the stock schedulers alone cannot provide rate-cost
proportional fairness.  The same runs yield the context-switch tables.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import Scenario, ScenarioResult
from repro.metrics.report import render_table

#: (figure label, per-NF cycles)
COST_MIXES = {
    "homogeneous": (250, 250, 250),
    "heterogeneous": (500, 250, 50),
}
#: (label, per-NF offered Mpps)
LOAD_MIXES = {
    "even": (5.0e6, 5.0e6, 5.0e6),
    "uneven": (6.0e6, 6.0e6, 3.0e6),
}
SCHEDULERS = ("NORMAL", "BATCH", "RR_100MS")


def run_case(scheduler: str, cost_mix: str, load_mix: str,
             duration_s: float = 2.0, features: str = "Default",
             seed: int = 0) -> ScenarioResult:
    """One bar group of Figure 1: three parallel NFs on a shared core."""
    costs = COST_MIXES[cost_mix]
    loads = LOAD_MIXES[load_mix]
    scenario = Scenario(
        scheduler=scheduler,
        features=features,
        seed=seed,
        # Each parallel NF is fed by its own Rx thread, as the paper's
        # configurable manager allows; otherwise the Rx path, not the
        # scheduler, would be the experiment's bottleneck.
        num_rx_threads=3,
    )
    for i, cost in enumerate(costs, start=1):
        scenario.add_nf(f"nf{i}", cost, core=0)
        scenario.add_chain(f"chain{i}", [f"nf{i}"])
    for i, rate in enumerate(loads, start=1):
        scenario.add_flow(f"flow{i}", f"chain{i}", rate_pps=rate)
    return scenario.run(duration_s)


def run_figure1(duration_s: float = 2.0,
                features: str = "Default") -> Dict[str, ScenarioResult]:
    """All 12 bar groups (2 cost mixes x 2 load mixes x 3 schedulers)."""
    results: Dict[str, ScenarioResult] = {}
    for cost_mix in COST_MIXES:
        for load_mix in LOAD_MIXES:
            for sched in SCHEDULERS:
                key = f"{cost_mix}/{load_mix}/{sched}"
                results[key] = run_case(sched, cost_mix, load_mix,
                                        duration_s, features)
    return results


def format_throughput_table(results: Dict[str, ScenarioResult],
                            cost_mix: str) -> str:
    """Figure 1a/1b as a table: per-NF throughput and CPU share."""
    rows: List[list] = []
    for load_mix in LOAD_MIXES:
        for sched in SCHEDULERS:
            res = results[f"{cost_mix}/{load_mix}/{sched}"]
            row = [load_mix, sched]
            for i in (1, 2, 3):
                nf = res.nf(f"nf{i}")
                row.append(nf.processed_pps / 1e6)
            for i in (1, 2, 3):
                nf = res.nf(f"nf{i}")
                row.append(round(100 * nf.cpu_share, 1))
            rows.append(row)
    title = ("Figure 1a: homogeneous NFs" if cost_mix == "homogeneous"
             else "Figure 1b: heterogeneous NFs")
    return render_table(
        ["load", "sched", "NF1 Mpps", "NF2 Mpps", "NF3 Mpps",
         "NF1 cpu%", "NF2 cpu%", "NF3 cpu%"],
        rows, title=title,
    )


def format_context_switch_table(results: Dict[str, ScenarioResult],
                                cost_mix: str) -> str:
    """Tables 1/2: voluntary and non-voluntary context switches per second."""
    rows: List[list] = []
    for load_mix in LOAD_MIXES:
        for sched in SCHEDULERS:
            res = results[f"{cost_mix}/{load_mix}/{sched}"]
            for i in (1, 2, 3):
                nf = res.nf(f"nf{i}")
                rows.append([
                    load_mix, sched, f"NF{i}",
                    round(nf.cswch_per_s), round(nf.nvcswch_per_s),
                ])
    title = ("Table 1: context switches, homogeneous NFs"
             if cost_mix == "homogeneous"
             else "Table 2: context switches, heterogeneous NFs")
    return render_table(
        ["load", "sched", "NF", "cswch/s", "nvcswch/s"], rows, title=title
    )


def main(duration_s: float = 2.0) -> str:
    results = run_figure1(duration_s)
    parts = []
    for cost_mix in COST_MIXES:
        parts.append(format_throughput_table(results, cost_mix))
        parts.append(format_context_switch_table(results, cost_mix))
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
