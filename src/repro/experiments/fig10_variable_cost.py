"""Figure 10: variable per-packet processing cost (§4.3.1).

The same 3-NF single-core chain as Figure 7, but each NF's per-packet
cost is drawn per packet from {120, 270, 550} cycles — so a packet's total
chain cost is one of nine combinations.  The paper's finding: the CGroup
weight path suffers (variable costs make the service-time estimate, and
hence the weight assignment, inaccurate), while backpressure alone is
resilient and delivers the best and almost scheduler-independent
throughput; NFVnice inherits that benefit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.experiments.common import CaseSpec, FEATURE_SETS, Scenario, \
    ScenarioResult
from repro.metrics.report import render_table
from repro.nfs.cost_models import ChoiceCost

COST_VALUES = (120.0, 270.0, 550.0)
SCHEDULERS = ("NORMAL", "BATCH", "RR_1MS", "RR_100MS")
SYSTEMS = tuple(FEATURE_SETS)


def run_case(scheduler: str, features: str, duration_s: float = 2.0,
             seed: int = 0) -> ScenarioResult:
    scenario = Scenario(scheduler=scheduler, features=features, seed=seed)
    names = []
    for i in (1, 2, 3):
        rng = scenario.rng_factory.stream(f"cost-nf{i}")
        scenario.add_nf(f"nf{i}", ChoiceCost(COST_VALUES, rng=rng), core=0)
        names.append(f"nf{i}")
    scenario.add_chain("chain", names)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def run_grid(schedulers: Iterable[str] = SCHEDULERS,
             systems: Iterable[str] = SYSTEMS,
             duration_s: float = 2.0) -> Dict[Tuple[str, str], ScenarioResult]:
    return {
        (sched, sys): run_case(sched, sys, duration_s)
        for sched in schedulers
        for sys in systems
    }


def campaign_cases(duration_s: float = 2.0) -> List[CaseSpec]:
    return [
        CaseSpec(key=(sched, system), fn="run_case",
                 kwargs={"scheduler": sched, "features": system,
                         "duration_s": duration_s, "seed": 0})
        for sched in SCHEDULERS
        for system in SYSTEMS
    ]


def render_cases(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    return format_figure10(results)


def format_figure10(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    schedulers = sorted({k[0] for k in results}, key=SCHEDULERS.index)
    systems = sorted({k[1] for k in results}, key=SYSTEMS.index)
    rows: List[list] = []
    for sched in schedulers:
        row: List[object] = [sched]
        for system in systems:
            res = results[(sched, system)]
            row.append(round(res.chain("chain").throughput_pps / 1e6, 3))
        rows.append(row)
    return render_table(
        ["sched"] + [f"{s} Mpps" for s in systems], rows,
        title="Figure 10: variable per-packet cost (120/270/550 mix)",
    )


def main(duration_s: float = 2.0) -> str:
    return format_figure10(run_grid(duration_s=duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
