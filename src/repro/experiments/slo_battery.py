"""The SLO tail-latency scenario battery (NFVnice-vs-EDF crossover).

Every cell shares one worker core between a latency-sensitive **gold**
chain (2 cheap NFs, 500 µs end-to-end SLO) and a throughput-hungry
**bulk** chain (2 expensive NFs, 5 ms SLO) — the mixed-criticality
consolidation the SLO-scheduling literature studies.  Three workloads
stress the tail differently:

* ``bursty`` — gold traffic is Pareto on-off (heavy-tailed bursts far
  above the core's capacity, silent gaps between);
* ``flash``  — gold traffic ramps through a flash-crowd envelope
  (baseline → 6x peak → decay);
* ``mixed``  — steady MMPP gold under a near-saturating Poisson bulk
  load: the crossover cell where deadline-blind fair-share scheduling
  hurts the gold tail most.

Each workload runs under three schedulers: ``NORMAL`` (NFVnice's
cgroup-weighted CFS), ``EDF`` (earliest head-of-ring deadline first),
and ``DEADLINE`` (deadline-cognizant CFS steered by the Monitor's
:class:`~repro.core.monitor.SLOGovernor`, with one spare core it may
migrate the bottleneck NF onto).  The report prints the gold/bulk p99
sojourn grid — the table ``benchmarks/BENCH_slo.json`` pins.

NF, chain and flow names carry a per-cell tag so the campaign runner's
merged telemetry keeps per-cell percentile rows (merging histograms of
identically named flows would blur the grid).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.common import CaseSpec, Scenario, ScenarioResult
from repro.metrics.report import render_table
from repro.obs.latency import percentile_row

WORKLOADS = ("bursty", "flash", "mixed")
SCHEDULERS = ("NORMAL", "EDF", "DEADLINE")

GOLD_SLO_US = 500.0
SILVER_SLO_US = 5000.0

#: Per-NF packet costs (cycles): gold is cheap, bulk is heavy.
GOLD_COSTS = (120.0, 270.0)
BULK_COSTS = (270.0, 550.0)


def _flow_id(chain: str, workload: str, scheduler: str) -> str:
    return f"{chain}.{workload}.{scheduler}"


def run_case(workload: str, scheduler: str, duration_s: float = 1.0,
             seed: int = 0) -> ScenarioResult:
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    tag = f"{workload}.{scheduler}"
    scenario = Scenario(
        scheduler=scheduler,
        features="NFVnice",
        seed=seed,
        telemetry=True,
        # The DEADLINE governor may reallocate the bottleneck NF onto a
        # spare core; the other schedulers keep the single shared core.
        spare_cores=(1,) if scheduler == "DEADLINE" else (),
    )
    for i, cost in enumerate(GOLD_COSTS, start=1):
        scenario.add_nf(f"g{i}.{tag}", cost, core=0)
    for i, cost in enumerate(BULK_COSTS, start=1):
        scenario.add_nf(f"b{i}.{tag}", cost, core=0)
    gold_chain = f"gold.{tag}"
    bulk_chain = f"bulk.{tag}"
    scenario.add_chain(gold_chain, [f"g{i}.{tag}"
                                    for i in range(1, len(GOLD_COSTS) + 1)])
    scenario.add_chain(bulk_chain, [f"b{i}.{tag}"
                                    for i in range(1, len(BULK_COSTS) + 1)])
    scenario.add_slo_class("gold", GOLD_SLO_US)
    scenario.add_slo_class("silver", SILVER_SLO_US)

    gold_flow = _flow_id("gold", workload, scheduler)
    bulk_flow = _flow_id("bulk", workload, scheduler)
    if workload == "bursty":
        scenario.add_flow(gold_flow, gold_chain, rate_pps=900_000,
                          slo_class="gold", pattern="pareto_onoff")
        scenario.add_flow(bulk_flow, bulk_chain, rate_pps=1_500_000,
                          slo_class="silver")
    elif workload == "flash":
        scenario.add_flow(gold_flow, gold_chain, rate_pps=600_000,
                          slo_class="gold", pattern="flash_crowd",
                          model_params={"peak_factor": 6.0})
        scenario.add_flow(bulk_flow, bulk_chain, rate_pps=1_500_000,
                          slo_class="silver")
    else:  # mixed: steady gold under a near-saturating bulk load
        scenario.add_flow(gold_flow, gold_chain, rate_pps=500_000,
                          slo_class="gold", pattern="mmpp")
        scenario.add_flow(bulk_flow, bulk_chain, rate_pps=2_400_000,
                          slo_class="silver", pattern="poisson")
    return scenario.run(duration_s)


def flow_p99_us(result: ScenarioResult, flow_id: str) -> Optional[float]:
    """p99 sojourn (µs) of one flow from a result's exact telemetry."""
    hist = result.flow_latency.get("flows", {}).get(flow_id)
    if hist is None:
        return None
    return percentile_row(hist)["p99_us"]


def run_battery(duration_s: float = 1.0
                ) -> Dict[Tuple[str, str], ScenarioResult]:
    return {
        (workload, scheduler): run_case(workload, scheduler, duration_s)
        for workload in WORKLOADS
        for scheduler in SCHEDULERS
    }


def campaign_cases(duration_s: float = 1.0) -> List[CaseSpec]:
    return [
        CaseSpec(key=(workload, scheduler), fn="run_case",
                 kwargs={"workload": workload, "scheduler": scheduler,
                         "duration_s": duration_s, "seed": 0})
        for workload in WORKLOADS
        for scheduler in SCHEDULERS
    ]


def render_cases(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    return format_battery(results)


def format_battery(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    workloads = sorted({k[0] for k in results},
                       key=lambda w: WORKLOADS.index(w))
    rows: List[list] = []
    for workload in workloads:
        row: List[object] = [workload]
        best: Optional[Tuple[float, str]] = None
        for scheduler in SCHEDULERS:
            res = results.get((workload, scheduler))
            if res is None:
                row.extend(["-", "-"])
                continue
            gold = flow_p99_us(res, _flow_id("gold", workload, scheduler))
            bulk = flow_p99_us(res, _flow_id("bulk", workload, scheduler))
            row.append("-" if gold is None else gold)
            row.append("-" if bulk is None else bulk)
            if gold is not None and (best is None or gold < best[0]):
                best = (gold, scheduler)
        row.append(best[1] if best is not None else "-")
        deadline = results.get((workload, "DEADLINE"))
        if deadline is not None and deadline.slo:
            row.append(f"{deadline.slo['misses']}m/"
                       f"{deadline.slo['migrations']}r")
        else:
            row.append("-")
        rows.append(row)
    header = ["workload"]
    for scheduler in SCHEDULERS:
        header.extend([f"{scheduler} gold p99", f"{scheduler} bulk p99"])
    header.extend(["best gold", "governor"])
    return render_table(
        header, rows,
        title=("SLO battery: p99 sojourn (us) per flow class — "
               f"gold SLO {GOLD_SLO_US:g} us, silver {SILVER_SLO_US:g} us"),
    )


def main(duration_s: float = 1.0) -> str:
    return format_battery(run_battery(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
