"""ECN extension (§3.3 "Local Optimization and ECN").

NFVnice marks ECN on TCP flows when the EWMA of a queue's length crosses
the marking threshold, so congestion at an NFV hop is signalled end to
end instead of manifesting as tail drops.  The experiment steers one TCP
flow through a chain whose last NF is the bottleneck and compares:

* drops-only (no ECN): TCP fills the ring, loses packet bursts, and
  oscillates through deep multiplicative decreases;
* ECN marking: the sender backs off on marks before the ring overflows —
  near-zero loss at comparable goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import Scenario
from repro.metrics.report import render_table
from repro.sim.clock import MSEC
from repro.traffic.tcp import TCPFlow


@dataclass
class ECNResult:
    ecn: bool
    goodput_gbps: float
    lost_packets: int
    marked_packets: int
    decreases: int


def run_case(ecn: bool, duration_s: float = 5.0, seed: int = 0) -> ECNResult:
    scenario = Scenario(
        scheduler="NORMAL",
        # Backpressure off: ECN is the only congestion signal under test.
        features="Default",
        seed=seed,
        enable_ecn=ecn,
    )
    scenario.add_nf("nf1", 300, core=0)
    scenario.add_nf("nf2", 8000, core=1)   # bottleneck hop
    scenario.add_chain("chain", ["nf1", "nf2"])
    flow = scenario.add_flow("tcp", "chain", rate_pps=1.0, pkt_size=1500,
                             protocol="tcp")
    tcp = TCPFlow(scenario.loop, scenario.generator.specs[-1],
                  rtt_ns=1 * MSEC, max_cwnd=2000.0)
    tcp.start()
    scenario.run(duration_s)
    return ECNResult(
        ecn=ecn,
        goodput_gbps=flow.stats.delivered * 1500 * 8 / duration_s / 1e9,
        lost_packets=flow.stats.lost,
        marked_packets=flow.stats.ecn_marks,
        decreases=tcp.decreases,
    )


def run_ecn(duration_s: float = 5.0) -> Dict[bool, ECNResult]:
    return {ecn: run_case(ecn, duration_s) for ecn in (False, True)}


def format_ecn(results: Dict[bool, ECNResult]) -> str:
    rows: List[list] = []
    for ecn in (False, True):
        res = results[ecn]
        rows.append([
            "ECN" if ecn else "drops-only",
            round(res.goodput_gbps, 3),
            res.lost_packets,
            res.marked_packets,
            res.decreases,
        ])
    return render_table(
        ["signal", "goodput Gbps", "lost pkts", "CE marks", "cwnd cuts"],
        rows, title="ECN extension: congestion signalling for a TCP flow",
    )


def main(duration_s: float = 5.0) -> str:
    return format_ecn(run_ecn(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
