"""Reproductions of every table and figure in the paper's evaluation.

Each module exposes ``run_*`` functions returning structured results and a
``main()``/``print_*`` helper that renders the same rows the paper
reports.  The ``benchmarks/`` tree wraps these in pytest-benchmark
targets; the mapping from paper artifact to module is in DESIGN.md §3.
"""

from repro.experiments.common import (
    FEATURE_SETS,
    Scenario,
    ScenarioResult,
    feature_config,
)

__all__ = ["Scenario", "ScenarioResult", "FEATURE_SETS", "feature_config"]
