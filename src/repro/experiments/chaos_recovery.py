"""Chaos experiment: fault kind x detection period x recovery policy.

The paper evaluates NFVnice against slow and unfair NFs; this experiment
evaluates the platform against *broken* ones.  The workload is the §4.2
Low/Medium/High chain on one shared core under NFVnice features; a third
of the way into the run one fault fires at the middle NF (or its core),
and the watchdog/recovery pipeline takes it from there.  The grid sweeps:

* fault kind — crash, hang, ring_stall (core_fail is exercised by the
  unit tests; it behaves like a 3-wide crash here),
* watchdog detection period — how long the NF must look dead,
* recovery policy — cold/warm restart, restart behind a backpressure
  shield, or writing the chain off entirely.

Each case reports availability, detection and recovery latency, packets
lost vs requeued, and the throughput dip (depth and width) measured by a
fine-grained 10 ms probe around the fault.  All of it lands in
``ScenarioResult.resilience``, so campaign digests cover every number.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.common import CaseSpec, Scenario, ScenarioResult, \
    build_linear_chain
from repro.faults.metrics import throughput_dip
from repro.faults.plan import FaultPlan, FaultSpec
from repro.metrics.report import render_table
from repro.metrics.timeseries import IntervalSampler
from repro.sim.clock import MSEC, SEC

COSTS = (120.0, 270.0, 550.0)
#: The middle (Medium-cost) NF takes the hit.
FAULT_TARGET = "nf2"
KINDS = ("crash", "hang", "ring_stall")
POLICIES = ("restart-cold", "restart-warm", "restart-backpressure",
            "fail-chain")
DETECTION_MS = (2.0, 8.0)
#: Offered load as a fraction of 64-byte line rate: enough to keep rings
#: occupied (so losses are visible) without saturating the core (so the
#: dip and the recovery are visible too).
LOAD_FRACTION = 0.4
PROBE_PERIOD_NS = 10 * MSEC


def run_case(kind: str, policy: str, detection_ms: float,
             duration_s: float = 1.0, seed: int = 0,
             features: str = "NFVnice") -> ScenarioResult:
    scenario = Scenario(scheduler="NORMAL", features=features, seed=seed)
    build_linear_chain(scenario, COSTS, core=0)
    scenario.add_flow("flow", "chain", line_rate_fraction=LOAD_FRACTION)
    fault_at_s = round(duration_s / 3.0, 6)
    plan = FaultPlan(
        specs=[FaultSpec(kind=kind, target=FAULT_TARGET, at_s=fault_at_s)],
        policy=policy,
        detection_period_s=detection_ms / 1e3,
        restart_delay_s=1e-3,
    )
    scenario.attach_faults(plan)
    # Fine-grained throughput probe: the 1 s samples of §4.1 average the
    # outage away; the dip needs 10 ms resolution.
    fine = IntervalSampler(scenario.loop, PROBE_PERIOD_NS)
    fine.add_probe("tput", lambda: scenario.manager.total_completed)
    fine.start()
    result = scenario.run(duration_s)
    samples = list(zip(fine.series["tput"].times,
                       fine.series["tput"].values))
    result.resilience["throughput_dip"] = throughput_dip(
        samples, int(fault_at_s * SEC))
    return result


def run_chaos(duration_s: float = 1.0
              ) -> Dict[Tuple[str, str, float], ScenarioResult]:
    return {
        (kind, policy, det): run_case(kind, policy, det, duration_s)
        for kind in KINDS
        for policy in POLICIES
        for det in DETECTION_MS
    }


def campaign_cases(duration_s: float = 1.0) -> List[CaseSpec]:
    return [
        CaseSpec(key=(kind, policy, det), fn="run_case",
                 kwargs={"kind": kind, "policy": policy,
                         "detection_ms": det, "duration_s": duration_s,
                         "seed": 0})
        for kind in KINDS
        for policy in POLICIES
        for det in DETECTION_MS
    ]


def render_cases(results: Dict[Tuple[str, str, float], ScenarioResult]) -> str:
    return format_chaos(results)


def format_chaos(results: Dict[Tuple[str, str, float], ScenarioResult]) -> str:
    rows: List[list] = []
    for kind in KINDS:
        for policy in POLICIES:
            for det in DETECTION_MS:
                key = (kind, policy, det)
                if key not in results:
                    continue
                res = results[key]
                r = res.resilience
                dl = r.get("detection_latency", {})
                rl = r.get("recovery_latency", {})
                dip = r.get("throughput_dip", {})
                rows.append([
                    kind, policy, det,
                    round(r.get("availability", 1.0), 4),
                    round(dl.get("mean_ns", 0.0) / 1e6, 2),
                    round(rl.get("mean_ns", 0.0) / 1e6, 2),
                    r.get("packets_lost", 0),
                    r.get("packets_requeued", 0),
                    round(100.0 * dip.get("depth_frac", 0.0), 1),
                    round(dip.get("width_ns", 0) / 1e6, 1),
                    round(res.total_throughput_pps / 1e6, 3),
                ])
    return render_table(
        ["fault", "policy", "det ms", "avail", "detect ms", "recover ms",
         "lost", "requeued", "dip %", "dip ms", "tput Mpps"],
        rows,
        title="chaos_recovery: fault x detection period x recovery policy",
    )


def main(duration_s: float = 1.0) -> str:
    return format_chaos(run_chaos(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
