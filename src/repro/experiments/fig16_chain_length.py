"""Figure 16: scaling the service-chain length from 1 to 10 NFs (§4.3.7).

Each added NF cycles through the Low/Medium/High costs of §4.2.  Two
placements: SC — every NF shares one core; MC — NFs placed round-robin
over three cores.  NFVnice's advantage grows with the number of NFs
multiplexed per core (more scheduling decisions to get right, more
upstream work to waste).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.common import CaseSpec, Scenario, ScenarioResult, \
    build_linear_chain
from repro.metrics.report import render_table

BASE_COSTS = (120.0, 270.0, 550.0)
LENGTHS = tuple(range(1, 11))
MC_CORES = 3


def run_case(length: int, placement: str, features: str,
             duration_s: float = 1.0, seed: int = 0) -> ScenarioResult:
    if placement not in ("SC", "MC"):
        raise ValueError("placement must be 'SC' or 'MC'")
    scenario = Scenario(scheduler="NORMAL", features=features, seed=seed)
    costs = [BASE_COSTS[i % len(BASE_COSTS)] for i in range(length)]
    if placement == "SC":
        cores: List[int] = [0] * length
    else:
        cores = [i % MC_CORES for i in range(length)]
    build_linear_chain(scenario, costs, core=cores)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def run_fig16(duration_s: float = 1.0
              ) -> Dict[Tuple[int, str, str], ScenarioResult]:
    return {
        (length, placement, system):
            run_case(length, placement, system, duration_s)
        for length in LENGTHS
        for placement in ("SC", "MC")
        for system in ("Default", "NFVnice")
    }


def campaign_cases(duration_s: float = 1.0) -> List[CaseSpec]:
    return [
        CaseSpec(key=(length, placement, system), fn="run_case",
                 kwargs={"length": length, "placement": placement,
                         "features": system, "duration_s": duration_s,
                         "seed": 0})
        for length in LENGTHS
        for placement in ("SC", "MC")
        for system in ("Default", "NFVnice")
    ]


def render_cases(results: Dict[Tuple[int, str, str], ScenarioResult]) -> str:
    return format_figure16(results)


def format_figure16(results: Dict[Tuple[int, str, str], ScenarioResult]) -> str:
    lengths = sorted({k[0] for k in results})
    rows: List[list] = []
    for length in lengths:
        row: List[object] = [length]
        for placement in ("SC", "MC"):
            for system in ("Default", "NFVnice"):
                res = results[(length, placement, system)]
                row.append(round(res.total_throughput_pps / 1e6, 3))
        rows.append(row)
    return render_table(
        ["chain len", "SC Default", "SC NFVnice", "MC Default", "MC NFVnice"],
        rows, title="Figure 16: throughput (Mpps) vs chain length",
    )


def main(duration_s: float = 1.0) -> str:
    return format_figure16(run_fig16(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
