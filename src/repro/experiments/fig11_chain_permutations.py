"""Figure 11: every ordering of a heterogeneous 3-NF chain (§4.3.2).

The Low (120), Medium (270), High (550) NFs share one core and the chain
order is permuted through all six arrangements, moving the bottleneck's
position.  The vanilla schedulers vary wildly with bottleneck position —
RR(1 ms) likes the bottleneck upstream, RR(100 ms) collapses below
40 Kpps when a heavy NF sits upstream of a light one (the fast-producer /
slow-consumer CPU hog) — while NFVnice is consistently near the feasible
rate for every permutation and scheduler.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterable, List, Tuple

from repro.experiments.common import CaseSpec, Scenario, ScenarioResult, \
    build_linear_chain
from repro.metrics.report import render_table

COSTS = {"Low": 120.0, "Med": 270.0, "High": 550.0}
ORDERS: Tuple[Tuple[str, str, str], ...] = tuple(permutations(COSTS))
SCHEDULERS = ("NORMAL", "BATCH", "RR_1MS", "RR_100MS")
SYSTEMS = ("Default", "NFVnice")


def order_label(order: Tuple[str, str, str]) -> str:
    return "-".join(order)


def run_case(order: Tuple[str, str, str], scheduler: str, features: str,
             duration_s: float = 1.0, seed: int = 0) -> ScenarioResult:
    scenario = Scenario(scheduler=scheduler, features=features, seed=seed)
    build_linear_chain(scenario, [COSTS[label] for label in order], core=0)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def run_grid(
    orders: Iterable[Tuple[str, str, str]] = ORDERS,
    schedulers: Iterable[str] = SCHEDULERS,
    systems: Iterable[str] = SYSTEMS,
    duration_s: float = 1.0,
) -> Dict[Tuple[str, str, str], ScenarioResult]:
    """Keys are (order label, scheduler, system)."""
    return {
        (order_label(order), sched, system):
            run_case(order, sched, system, duration_s)
        for order in orders
        for sched in schedulers
        for system in systems
    }


def campaign_cases(duration_s: float = 1.0) -> List[CaseSpec]:
    """One case per (ordering, scheduler, system) cell of the figure."""
    return [
        CaseSpec(key=(order_label(order), sched, system), fn="run_case",
                 kwargs={"order": order, "scheduler": sched,
                         "features": system, "duration_s": duration_s,
                         "seed": 0})
        for order in ORDERS
        for sched in SCHEDULERS
        for system in SYSTEMS
    ]


def render_cases(results: Dict[Tuple[str, str, str], ScenarioResult]) -> str:
    return format_figure11(results)


def format_figure11(results: Dict[Tuple[str, str, str], ScenarioResult]) -> str:
    orders = sorted({k[0] for k in results})
    schedulers = sorted({k[1] for k in results}, key=SCHEDULERS.index)
    rows: List[list] = []
    for order in orders:
        for system in SYSTEMS:
            row: List[object] = [order, system]
            for sched in schedulers:
                res = results[(order, sched, system)]
                row.append(round(res.total_throughput_pps / 1e6, 3))
            rows.append(row)
    return render_table(
        ["chain order", "system"] + [f"{s} Mpps" for s in schedulers],
        rows, title="Figure 11: heterogeneous chain orderings",
    )


def main(duration_s: float = 1.0) -> str:
    return format_figure11(run_grid(duration_s=duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
