"""Ablation studies of NFVnice's design choices (beyond the paper's own
figures; motivated by DESIGN.md §5 and the paper's discussion).

1. **Selective per-chain discard** vs chain-agnostic throttling: on the
   Figure 8 shared-NF topology, chain-agnostic backpressure punishes
   chain-1 for chain-2's bottleneck.  Selectivity is what preserves the
   innocent chain's throughput ("packets for service chain B are not
   affected at all", §3.3).
2. **Queuing-time hysteresis**: the Figure 4 time gate separates real
   congestion from short bursts.  Threshold 0 over-throttles; a huge
   threshold reverts to no backpressure.
3. **Service-time estimator**: median vs mean over the 100 ms window on
   the variable-cost workload of §4.3.1.
4. **Weight-update period**: 1/10/100 ms cgroup write cadence — the 10 ms
   choice balances responsiveness against sysfs write cost (§3.5).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import Scenario, ScenarioResult, build_linear_chain
from repro.experiments.fig09_shared_chains import NF_COSTS
from repro.metrics.report import render_table
from repro.nfs.cost_models import ChoiceCost
from repro.sim.clock import MSEC, USEC

CHAIN_COSTS = (120.0, 270.0, 550.0)


# ----------------------------------------------------------------------
# 1. Selective vs chain-agnostic throttling (Figure 8 topology)
# ----------------------------------------------------------------------
def run_selectivity(selective: bool, duration_s: float = 1.0,
                    seed: int = 0) -> ScenarioResult:
    scenario = Scenario(
        scheduler="NORMAL", features="NFVnice", seed=seed,
        num_rx_threads=2, selective_chain_throttle=selective,
    )
    for core_id, (name, cost) in enumerate(NF_COSTS.items()):
        scenario.add_nf(name, cost, core=core_id)
    scenario.add_chain("chain1", ["nf1", "nf2", "nf4"])
    scenario.add_chain("chain2", ["nf1", "nf3", "nf4"])
    scenario.add_flow("flow1", "chain1", line_rate_fraction=0.5)
    scenario.add_flow("flow2", "chain2", line_rate_fraction=0.5)
    return scenario.run(duration_s)


def format_selectivity(results: Dict[bool, ScenarioResult]) -> str:
    rows: List[list] = []
    for selective in (True, False):
        res = results[selective]
        rows.append([
            "per-chain" if selective else "chain-agnostic",
            round(res.chain("chain1").throughput_pps / 1e6, 3),
            round(res.chain("chain2").throughput_pps / 1e6, 3),
        ])
    return render_table(
        ["throttle mode", "chain1 Mpps", "chain2 Mpps"], rows,
        title="Ablation 1: selective vs chain-agnostic backpressure",
    )


# ----------------------------------------------------------------------
# 2. Queuing-time hysteresis threshold
# ----------------------------------------------------------------------
HYSTERESIS_SWEEP_NS = (0, 10 * USEC, 100 * USEC, 1 * MSEC, 10 * MSEC)


def run_hysteresis(threshold_ns: int, duration_s: float = 1.0,
                   seed: int = 0) -> ScenarioResult:
    scenario = Scenario(
        scheduler="BATCH", features="NFVnice", seed=seed,
        queuing_time_threshold_ns=int(threshold_ns),
    )
    build_linear_chain(scenario, CHAIN_COSTS, core=0)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def format_hysteresis(results: Dict[int, ScenarioResult]) -> str:
    rows: List[list] = []
    for threshold in sorted(results):
        res = results[threshold]
        rows.append([
            f"{threshold / 1e3:g}us",
            round(res.total_throughput_pps / 1e6, 3),
            round(res.total_wasted_pps / 1e3, 1),
        ])
    return render_table(
        ["qtime threshold", "tput Mpps", "wasted Kpps"], rows,
        title="Ablation 2: backpressure queuing-time gate",
    )


# ----------------------------------------------------------------------
# 3. Median vs mean service-time estimator (variable-cost NFs)
# ----------------------------------------------------------------------
def run_estimator(estimator: str, duration_s: float = 1.0,
                  seed: int = 0) -> ScenarioResult:
    scenario = Scenario(
        scheduler="BATCH", features="CGroup", seed=seed,
        service_estimator=estimator,
    )
    names = []
    for i in (1, 2, 3):
        rng = scenario.rng_factory.stream(f"cost-nf{i}")
        scenario.add_nf(f"nf{i}", ChoiceCost((120.0, 270.0, 550.0), rng=rng),
                        core=0)
        names.append(f"nf{i}")
    scenario.add_chain("chain", names)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def format_estimator(results: Dict[str, ScenarioResult]) -> str:
    rows = [
        [est, round(res.total_throughput_pps / 1e6, 3),
         round(res.total_wasted_pps / 1e3, 1)]
        for est, res in results.items()
    ]
    return render_table(
        ["estimator", "tput Mpps", "wasted Kpps"], rows,
        title="Ablation 3: service-time estimator under variable cost "
              "(CGroup-only system)",
    )


# ----------------------------------------------------------------------
# 4. Weight update period
# ----------------------------------------------------------------------
WEIGHT_PERIODS_NS = (1 * MSEC, 10 * MSEC, 100 * MSEC)


def run_weight_period(period_ns: int, duration_s: float = 1.0,
                      seed: int = 0) -> ScenarioResult:
    scenario = Scenario(
        scheduler="BATCH", features="CGroup", seed=seed,
        weight_update_ns=int(period_ns),
    )
    build_linear_chain(scenario, CHAIN_COSTS, core=0)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def format_weight_period(results: Dict[int, ScenarioResult]) -> str:
    rows: List[list] = []
    for period in sorted(results):
        res = results[period]
        rows.append([
            f"{period / 1e6:g}ms",
            round(res.total_throughput_pps / 1e6, 3),
        ])
    return render_table(
        ["update period", "tput Mpps"], rows,
        title="Ablation 4: cgroup weight update period (CGroup-only)",
    )


def main(duration_s: float = 1.0) -> str:
    parts = [
        format_selectivity({sel: run_selectivity(sel, duration_s)
                            for sel in (True, False)}),
        format_hysteresis({t: run_hysteresis(t, duration_s)
                           for t in HYSTERESIS_SWEEP_NS}),
        format_estimator({est: run_estimator(est, duration_s)
                          for est in ("median", "mean")}),
        format_weight_period({p: run_weight_period(p, duration_s)
                              for p in WEIGHT_PERIODS_NS}),
    ]
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
