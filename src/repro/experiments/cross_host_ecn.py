"""Cross-host congestion management with ECN (paper §3.3).

A TCP flow crosses a service chain *spread over two hosts*: a forwarder
on host A, then a 10 µs wire, then a heavyweight NF on host B where the
flow bottlenecks.  Host A's backpressure cannot see host B's queues —
the only cross-machine signal is ECN: host B's Tx threads CE-mark the
flow when its bottleneck queue's EWMA grows, and the TCP source slows
down end to end.

Compared: drops-only (ECN off on both hosts) vs ECN on.  With ECN the
bottleneck queue stabilises below the marking threshold and losses drop
to (near) zero at comparable goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.metrics.report import render_table
from repro.platform.config import PlatformConfig, default_platform_config
from repro.platform.manager import NFManager
from repro.platform.multihost import HostLink
from repro.platform.packet import Flow
from repro.sim.clock import MSEC, SEC, USEC
from repro.sim.engine import EventLoop
from repro.traffic.flows import FlowSpec
from repro.traffic.generator import TrafficGenerator
from repro.traffic.tcp import TCPFlow


@dataclass
class CrossHostResult:
    ecn: bool
    goodput_gbps: float       # completions at the final host
    lost_packets: int
    marked_packets: int
    carried_packets: int      # packets that crossed the wire


def run_case(ecn: bool, duration_s: float = 5.0,
             seed: int = 0) -> CrossHostResult:
    loop = EventLoop()

    def host_config() -> PlatformConfig:
        cfg = default_platform_config()
        import dataclasses

        return dataclasses.replace(cfg, enable_ecn=ecn)

    host_a = NFManager(loop, scheduler="NORMAL", config=host_config())
    host_b = NFManager(loop, scheduler="NORMAL", config=host_config())
    # Host A: a light forwarder; Host B: the bottleneck NF.
    fwd = NFProcess("fwd", FixedCost(300), config=host_a.config)
    host_a.add_nf(fwd, core_id=0)
    chain_a = host_a.add_chain("leg-a", [fwd])
    heavy = NFProcess("heavy", FixedCost(8000), config=host_b.config)
    host_b.add_nf(heavy, core_id=0)
    chain_b = host_b.add_chain("leg-b", [heavy])

    flow_a = Flow("tcp", pkt_size=1500, protocol="tcp")
    host_a.install_flow(flow_a, chain_a)

    link = HostLink(loop, host_a, host_b, latency_ns=10 * USEC)
    flow_b = link.connect_flow(flow_a)
    host_b.install_flow(flow_b, chain_b)

    gen = TrafficGenerator(loop, host_a.nic)
    spec = gen.add(FlowSpec(flow_a, rate_pps=1.0))
    tcp = TCPFlow(loop, spec, rtt_ns=1 * MSEC, max_cwnd=2000.0)

    host_a.start()
    host_b.start()
    gen.start()
    tcp.start()
    loop.run_until(int(duration_s * SEC))
    host_a.finalize()
    host_b.finalize()

    return CrossHostResult(
        ecn=ecn,
        goodput_gbps=chain_b.completed * 1500 * 8 / duration_s / 1e9,
        lost_packets=flow_a.stats.lost,       # shared stats: both hosts
        marked_packets=flow_a.stats.ecn_marks,
        carried_packets=link.carried_packets,
    )


def run_cross_host(duration_s: float = 5.0) -> Dict[bool, CrossHostResult]:
    return {ecn: run_case(ecn, duration_s) for ecn in (False, True)}


def format_cross_host(results: Dict[bool, CrossHostResult]) -> str:
    rows: List[list] = []
    for ecn in (False, True):
        res = results[ecn]
        rows.append([
            "ECN" if ecn else "drops-only",
            round(res.goodput_gbps, 3),
            res.lost_packets,
            res.marked_packets,
            res.carried_packets,
        ])
    return render_table(
        ["signal", "goodput Gbps", "lost pkts", "CE marks", "wire pkts"],
        rows,
        title="Cross-host chain: congestion signalled across machines",
    )


def main(duration_s: float = 5.0) -> str:
    return format_cross_host(run_cross_host(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
