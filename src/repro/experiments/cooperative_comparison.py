"""Cooperative (L-thread-style) scheduling vs kernel scheduling (§5).

Demonstrates the two drawbacks the paper cites when arguing against
cooperative user-space frameworks, plus the mitigation it proposes:

1. **No protection from misbehaving NFs.** A chain of well-behaved NFs
   plus one busy-looping NF: under COOP the spinner takes the core
   forever and the chain starves; CFS contains it to a fair share.
2. **No selective prioritisation.** Two NFs with a 1:4 cost ratio under
   overload: COOP cannot express weights (the Monitor's cgroup writes are
   ignored), so the flows' output rates stay unequal; NFVnice on CFS
   equalises them.
3. **Backpressure still composes.** "Nonetheless, NFVnice's backpressure
   mechanism can still be effectively employed for such cooperating
   threads" — with backpressure on, the cooperative chain avoids wasted
   work exactly as the kernel-scheduled one does.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import Scenario, ScenarioResult, build_linear_chain
from repro.metrics.report import render_table


def run_misbehaving(scheduler: str, duration_s: float = 1.0,
                    seed: int = 0) -> ScenarioResult:
    """A 2-NF chain sharing a core with a busy-looping third NF."""
    scenario = Scenario(scheduler=scheduler, features="NFVnice", seed=seed)
    build_linear_chain(scenario, (270, 550), core=0)
    scenario.add_nf("spinner", 1000, core=0, busy_loop=True)
    scenario.add_chain("spin-chain", ["spinner"])
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    scenario.add_flow("spin-flow", "spin-chain", rate_pps=1000.0)
    return scenario.run(duration_s)


def run_prioritisation(scheduler: str, duration_s: float = 1.0,
                       seed: int = 0) -> ScenarioResult:
    """Two parallel NFs with a 1:4 cost ratio under equal overload."""
    scenario = Scenario(scheduler=scheduler, features="NFVnice", seed=seed,
                        num_rx_threads=2)
    scenario.add_nf("light", 400, core=0)
    scenario.add_nf("heavy", 1600, core=0)
    scenario.add_chain("light", ["light"])
    scenario.add_chain("heavy", ["heavy"])
    scenario.add_flow("flow-l", "light", rate_pps=4.0e6)
    scenario.add_flow("flow-h", "heavy", rate_pps=4.0e6)
    return scenario.run(duration_s)


def run_backpressure_compose(scheduler: str, features: str,
                             duration_s: float = 1.0,
                             seed: int = 0) -> ScenarioResult:
    """The Figure 7 chain under the cooperative scheduler."""
    scenario = Scenario(scheduler=scheduler, features=features, seed=seed)
    build_linear_chain(scenario, (120, 270, 550), core=0)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def run_comparison(duration_s: float = 1.0) -> Dict[str, Dict]:
    return {
        "misbehaving": {s: run_misbehaving(s, duration_s)
                        for s in ("COOP", "NORMAL")},
        "prioritisation": {s: run_prioritisation(s, duration_s)
                           for s in ("COOP", "NORMAL")},
        "compose": {f: run_backpressure_compose("COOP", f, duration_s)
                    for f in ("Default", "OnlyBKPR")},
    }


def format_comparison(results: Dict[str, Dict]) -> str:
    rows: List[list] = []
    for sched, res in results["misbehaving"].items():
        rows.append([
            sched,
            round(res.chain("chain").throughput_pps / 1e6, 3),
            round(100 * res.nf("spinner").cpu_share, 1),
        ])
    part1 = render_table(
        ["scheduler", "chain Mpps", "spinner cpu%"], rows,
        title="L-thread drawback (a): a misbehaving NF on the shared core",
    )

    rows = []
    for sched, res in results["prioritisation"].items():
        rows.append([
            sched,
            round(res.chain("light").throughput_pps / 1e6, 3),
            round(res.chain("heavy").throughput_pps / 1e6, 3),
            res.nf("heavy").weight,
        ])
    part2 = render_table(
        ["scheduler", "light Mpps", "heavy Mpps", "heavy cpu.shares"], rows,
        title="L-thread drawback (b): no selective prioritisation "
              "(NFVnice weights active on both)",
    )

    rows = []
    for features, res in results["compose"].items():
        rows.append([
            features,
            round(res.total_throughput_pps / 1e6, 3),
            round(res.total_wasted_pps / 1e3, 1),
        ])
    part3 = render_table(
        ["system", "tput Mpps", "wasted Kpps"], rows,
        title="Backpressure still composes with cooperative threads (§5)",
    )
    return "\n".join([part1, part2, part3])


def main(duration_s: float = 1.0) -> str:
    return format_comparison(run_comparison(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
