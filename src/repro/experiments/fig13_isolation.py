"""Figure 13: performance isolation of TCP against UDP (§4.3.4).

One TCP flow traverses NF1 (Low) → NF2 (Medium) on a shared core.  Ten
non-responsive UDP flows share NF1/NF2 but continue to NF3 (High, its own
core), which bottlenecks their aggregate at ~280 Mbps.  The UDP flows
switch on partway through the run and off again later (15 s / 40 s in the
paper; the same proportions here on a compressed timeline).

Without NFVnice, the UDP packets that NF3 will discard consume NF1/NF2
and crowd the shared FIFO rings, collapsing TCP from ~4 Gbps to tens of
Mbps.  With per-flow backpressure, the UDP chains are shed at entry, TCP
keeps most of its throughput, and UDP still holds NF3's bottleneck rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import Scenario
from repro.metrics.report import render_table
from repro.metrics.timeseries import TimeSeries
from repro.sim.clock import MSEC, SEC
from repro.traffic.tcp import TCPFlow

TCP_PKT = 1500
UDP_PKT = 64
N_UDP = 10
UDP_TOTAL_PPS = 8.0e6
UDP_ON_S = 6.0
UDP_OFF_S = 16.0
DURATION_S = 22.0


@dataclass
class IsolationResult:
    """Per-second Gbps series plus the paper's summary numbers."""

    features: str
    tcp_gbps: TimeSeries
    udp_gbps: TimeSeries
    tcp_before: float       # mean Gbps before UDP starts
    tcp_during: float       # mean Gbps while UDP competes
    tcp_after: float        # mean Gbps after UDP stops
    udp_during: float       # mean Gbps of the UDP aggregate while active


def run_case(features: str, duration_s: float = DURATION_S,
             seed: int = 0) -> IsolationResult:
    scenario = Scenario(scheduler="NORMAL", features=features, seed=seed)
    scenario.add_nf("nf1", 120, core=0)
    scenario.add_nf("nf2", 270, core=0)
    scenario.add_nf("nf3", 4500, core=1)
    scenario.add_chain("tcp-chain", ["nf1", "nf2"])
    tcp_flow = scenario.add_flow(
        "tcp", "tcp-chain", rate_pps=1.0, pkt_size=TCP_PKT, protocol="tcp"
    )
    tcp = TCPFlow(scenario.loop, scenario.generator.specs[-1],
                  rtt_ns=1 * MSEC, max_cwnd=340.0)
    tcp.start()

    on_ns = int(UDP_ON_S * SEC)
    off_ns = int(UDP_OFF_S * SEC)
    udp_flows = []
    for i in range(N_UDP):
        # Per-flow chains over the same NF instances: the fine (flow-level)
        # chain granularity §3.3 calls for to avoid head-of-line blocking.
        scenario.add_chain(f"udp-chain{i}", ["nf1", "nf2", "nf3"])
        udp_flows.append(scenario.add_flow(
            f"udp{i}", f"udp-chain{i}", rate_pps=UDP_TOTAL_PPS / N_UDP,
            pkt_size=UDP_PKT, start_ns=on_ns, stop_ns=off_ns,
        ))

    probes = {
        "tcp_delivered": ((lambda: tcp_flow.stats.delivered), True),
        "udp_delivered": (
            (lambda: sum(f.stats.delivered for f in udp_flows)), True),
    }
    result = scenario.run(duration_s, extra_probes=probes)
    tcp_series = _to_gbps(result.series["tcp_delivered"], TCP_PKT)
    udp_series = _to_gbps(result.series["udp_delivered"], UDP_PKT)
    return IsolationResult(
        features=features,
        tcp_gbps=tcp_series,
        udp_gbps=udp_series,
        tcp_before=_window_mean(tcp_series, 1.0, UDP_ON_S),
        tcp_during=_window_mean(tcp_series, UDP_ON_S + 1.0, UDP_OFF_S),
        tcp_after=_window_mean(tcp_series, UDP_OFF_S + 1.0, duration_s),
        udp_during=_window_mean(udp_series, UDP_ON_S + 1.0, UDP_OFF_S),
    )


def _to_gbps(series: TimeSeries, pkt_size: int) -> TimeSeries:
    out = TimeSeries(series.name)
    for t, pps in series:
        out.append(t, pps * pkt_size * 8 / 1e9)
    return out


def _window_mean(series: TimeSeries, t0_s: float, t1_s: float) -> float:
    window = series.between(int(t0_s * SEC), int(t1_s * SEC) + 1)
    return window.mean()


def run_isolation(duration_s: float = DURATION_S) -> Dict[str, IsolationResult]:
    return {
        "Default": run_case("Default", duration_s),
        "NFVnice": run_case("NFVnice", duration_s),
    }


def format_figure13(results: Dict[str, IsolationResult]) -> str:
    rows: List[list] = []
    for system, res in results.items():
        rows.append([
            system,
            round(res.tcp_before, 3),
            round(res.tcp_during, 3),
            round(res.tcp_after, 3),
            round(res.udp_during * 1e3, 1),
        ])
    return render_table(
        ["system", "TCP before (Gbps)", "TCP during (Gbps)",
         "TCP after (Gbps)", "UDP during (Mbps)"],
        rows,
        title="Figure 13: TCP throughput around the UDP interference window",
    )


def main(duration_s: float = DURATION_S) -> str:
    return format_figure13(run_isolation(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
