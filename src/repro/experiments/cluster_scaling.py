"""The cluster auto-scaling battery (elastic vs static provisioning).

Every cell offers the same overload — a flow population whose aggregate
demand is ~1.5x one replica's capacity — to a cluster that starts with a
single replica of a two-NF service chain (500 + 800 cycles/packet,
500 µs gold SLO).  Two arrival shapes stress the autoscaler
differently:

* ``flash`` — a steady 600 kpps base load, then a flash crowd of ten
  200 kpps flows arriving 40 ms apart from t=100 ms: demand triples in
  under half a second and the control loop must add replicas *ahead* of
  the wave (bound flows can never be re-steered, so a melted replica
  stays melted);
* ``mmpp``  — eight 250 kpps Markov-modulated flows arriving 50 ms
  apart: bursty ramps that exercise the occupancy (reactive) trigger on
  top of the load (predictive) one.

Each workload runs on 2-, 4- and 8-host clusters in two modes: ``auto``
(the :class:`~repro.cluster.autoscaler.Autoscaler` may place replicas on
any free ``(host, core)`` slot) and ``static`` (the initial replica is
all there is).  The report prints the merged gold p99 sojourn per cell —
elastic provisioning must beat static by orders of magnitude once the
offered load crosses one replica's capacity — plus the scale-out count
and final replica census from the digest-covered
``resilience["cluster"]`` block.

Chain and flow names carry a per-cell tag so the campaign runner's
merged telemetry keeps per-cell percentile rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster import ClusterScenario
from repro.experiments.common import CaseSpec, ScenarioResult
from repro.metrics.histogram import CycleHistogram
from repro.metrics.report import render_table

WORKLOADS = ("flash", "mmpp")
HOSTS = (2, 4, 8)
MODES = ("auto", "static")

GOLD_SLO_US = 500.0
#: Per-NF packet costs (cycles): ~1.73 Mpps capacity per replica core.
CHAIN_COSTS = (500.0, 800.0)

#: Case key -> (workload, hosts, mode).
CaseKey = Tuple[str, int, str]


def _tag(workload: str, hosts: int, mode: str) -> str:
    return f"{workload}.h{hosts}.{mode}"


def run_case(workload: str, hosts: int, mode: str,
             duration_s: float = 0.75, seed: int = 0) -> ScenarioResult:
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}")
    tag = _tag(workload, hosts, mode)
    scenario = ClusterScenario(n_hosts=hosts, scheduler="NORMAL",
                               features="NFVnice", seed=seed)
    scenario.add_slo_class("gold", GOLD_SLO_US)
    scenario.set_chain(f"svc.{tag}", CHAIN_COSTS, slo_us=GOLD_SLO_US,
                       placements=((0, 0),))
    if mode == "auto":
        # Every second core of every host is elastic capacity; the
        # initial replica owns (0, 0).
        scenario.enable_autoscaler(
            slots=[(h, c) for h in range(hosts) for c in (0, 1)
                   if (h, c) != (0, 0)])

    msec = 1_000_000
    if workload == "flash":
        for i in range(4):
            scenario.add_flow(f"base{i}.{tag}", rate_pps=150_000,
                              slo_class="gold")
        for i in range(10):
            scenario.add_flow(f"crowd{i}.{tag}", rate_pps=200_000,
                              slo_class="gold",
                              start_ns=(100 + 40 * i) * msec)
    else:  # mmpp
        for i in range(8):
            scenario.add_flow(f"mmpp{i}.{tag}", rate_pps=250_000,
                              slo_class="gold", pattern="mmpp",
                              start_ns=50 * i * msec)
    return scenario.run(duration_s)


def gold_p99_us(result: ScenarioResult) -> Optional[float]:
    """p99 sojourn (µs) over every gold flow of one cell, merged.

    A cell's flows land on different replicas (different per-chain
    histograms), so the honest per-cell tail merges the per-flow
    histograms — same buckets, so the merge is exact.
    """
    merged: Optional[CycleHistogram] = None
    for hist_dict in result.flow_latency.get("flows", {}).values():
        hist = CycleHistogram.from_dict(hist_dict)
        merged = hist if merged is None else merged.merge(hist)
    if merged is None or merged.count == 0:
        return None
    return merged.percentile(99.0) / 1e3


def cluster_block(result: ScenarioResult) -> Dict[str, object]:
    """The digest-covered cluster accounting of one cell."""
    block = result.resilience.get("cluster", {})
    assert isinstance(block, dict)
    return block


def run_battery(duration_s: float = 0.75
                ) -> Dict[CaseKey, ScenarioResult]:
    return {
        (workload, hosts, mode): run_case(workload, hosts, mode, duration_s)
        for workload in WORKLOADS
        for hosts in HOSTS
        for mode in MODES
    }


def campaign_cases(duration_s: float = 0.75) -> List[CaseSpec]:
    return [
        CaseSpec(key=(workload, hosts, mode), fn="run_case",
                 kwargs={"workload": workload, "hosts": hosts, "mode": mode,
                         "duration_s": duration_s, "seed": 0})
        for workload in WORKLOADS
        for hosts in HOSTS
        for mode in MODES
    ]


def render_cases(results: Dict[CaseKey, ScenarioResult]) -> str:
    return format_battery(results)


def format_battery(results: Dict[CaseKey, ScenarioResult]) -> str:
    rows: List[list] = []
    for workload in WORKLOADS:
        for hosts in HOSTS:
            auto = results.get((workload, hosts, "auto"))
            static = results.get((workload, hosts, "static"))
            if auto is None and static is None:
                continue
            row: List[object] = [workload, hosts]
            auto_p99 = None if auto is None else gold_p99_us(auto)
            static_p99 = None if static is None else gold_p99_us(static)
            row.append("-" if auto_p99 is None else auto_p99)
            row.append("-" if static_p99 is None else static_p99)
            if auto_p99 and static_p99:
                row.append(f"{static_p99 / auto_p99:.0f}x")
            else:
                row.append("-")
            if auto is not None:
                scaler = cluster_block(auto).get("autoscaler", {})
                assert isinstance(scaler, dict)
                row.append(scaler.get("scale_outs", 0))
                row.append(scaler.get("replicas", 0))
                row.append(auto.total_throughput_pps / 1e6)
            else:
                row.extend(["-", "-", "-"])
            row.append("-" if static is None
                       else static.total_throughput_pps / 1e6)
            rows.append(row)
    header = ["workload", "hosts", "auto p99 (us)", "static p99 (us)",
              "tail win", "scale-outs", "replicas",
              "auto Mpps", "static Mpps"]
    return render_table(
        header, rows,
        title=("cluster scaling battery: merged gold p99 sojourn, "
               f"SLO {GOLD_SLO_US:g} us, auto vs static provisioning"),
    )


def main(duration_s: float = 0.75) -> str:
    return format_battery(run_battery(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
