"""Figure 7 + Tables 3-4: a 3-NF chain sharing one core (paper §4.2.1).

Chain: NF1 Low (120 cycles) → NF2 Medium (270) → NF3 High (550), all on
one shared core, 64-byte packets offered at line rate.  Compared systems:
Default, CGroup only, backpressure only, and full NFVnice, under NORMAL,
BATCH, RR(1 ms) and RR(100 ms).

* Figure 7 — chain throughput per (scheduler, system).
* Table 3 — packet drop rate at NF1/NF2 *after processing* (wasted work).
* Table 4 — per-NF average scheduling delay and total runtime.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.experiments.common import CaseSpec, FEATURE_SETS, Scenario, \
    ScenarioResult, build_linear_chain
from repro.metrics.report import render_table

CHAIN_COSTS = (120.0, 270.0, 550.0)
SCHEDULERS = ("NORMAL", "BATCH", "RR_1MS", "RR_100MS")
SYSTEMS = tuple(FEATURE_SETS)  # Default, CGroup, OnlyBKPR, NFVnice


def run_case(scheduler: str, features: str, duration_s: float = 2.0,
             costs: Tuple[float, ...] = CHAIN_COSTS,
             seed: int = 0) -> ScenarioResult:
    scenario = Scenario(scheduler=scheduler, features=features, seed=seed,
                        telemetry=True)
    build_linear_chain(scenario, costs, core=0)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def run_grid(
    schedulers: Iterable[str] = SCHEDULERS,
    systems: Iterable[str] = SYSTEMS,
    duration_s: float = 2.0,
) -> Dict[Tuple[str, str], ScenarioResult]:
    """The full (scheduler x system) grid behind Figure 7."""
    return {
        (sched, sys): run_case(sched, sys, duration_s)
        for sched in schedulers
        for sys in systems
    }


def campaign_cases(duration_s: float = 2.0) -> List[CaseSpec]:
    """The (scheduler x system) grid as independently runnable cases."""
    return [
        CaseSpec(key=(sched, system), fn="run_case",
                 kwargs={"scheduler": sched, "features": system,
                         "duration_s": duration_s, "seed": 0})
        for sched in SCHEDULERS
        for system in SYSTEMS
    ]


def render_cases(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    """The full artifact from a completed case grid (same as ``main``)."""
    return "\n".join([
        format_figure7(results),
        format_table3(results),
        format_table4(results),
        format_slo(results),
        format_attribution(results),
    ])


def format_figure7(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    """Figure 7's bars: throughput in Mpps, mean (min-max of 1 s samples)."""
    schedulers = sorted({k[0] for k in results}, key=SCHEDULERS.index)
    systems = sorted({k[1] for k in results}, key=SYSTEMS.index)
    rows: List[list] = []
    for sched in schedulers:
        row: List[object] = [sched]
        for system in systems:
            res = results[(sched, system)]
            mean, lo, hi = res.chain("chain").tput_series
            row.append(f"{mean / 1e6:.2f} ({lo / 1e6:.2f}-{hi / 1e6:.2f})")
        rows.append(row)
    return render_table(
        ["sched"] + [f"{s} Mpps" for s in systems], rows,
        title="Figure 7: 3-NF chain throughput on one core",
    )


def format_table3(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    """Table 3: drops of already-processed packets, Default vs NFVnice."""
    schedulers = sorted({k[0] for k in results}, key=SCHEDULERS.index)
    rows: List[list] = []
    for nf_name, label in (("nf1", "NF1"), ("nf2", "NF2")):
        row: List[object] = [label]
        for sched in schedulers:
            for system in ("Default", "NFVnice"):
                res = results[(sched, system)]
                row.append(res.nf(nf_name).wasted_pps)
        rows.append(row)
    headers = ["NF"]
    for sched in schedulers:
        headers += [f"{sched}/Def", f"{sched}/NFVn"]
    return render_table(headers, rows,
                        title="Table 3: packet drop rate per second "
                              "(processed upstream, dropped downstream)")


def format_table4(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    """Table 4: average scheduling delay (ms) and runtime (ms) per NF."""
    schedulers = sorted({k[0] for k in results}, key=SCHEDULERS.index)
    rows: List[list] = []
    for i in (1, 2, 3):
        for metric in ("delay", "runtime"):
            row: List[object] = [f"NF{i}-{metric}"]
            for sched in schedulers:
                for system in ("Default", "NFVnice"):
                    res = results[(sched, system)]
                    nf = res.nf(f"nf{i}")
                    if metric == "delay":
                        row.append(round(nf.avg_sched_delay_ms, 3))
                    else:
                        row.append(round(nf.runtime_s * 1e3, 1))
            rows.append(row)
    headers = ["NF/metric"]
    for sched in schedulers:
        headers += [f"{sched}/Def", f"{sched}/NFVn"]
    return render_table(headers, rows,
                        title="Table 4: scheduling delay and runtime (ms)")


def format_slo(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    """Per-flow sojourn SLO percentiles (exact, every delivered packet)."""
    from repro.obs.latency import percentile_row

    schedulers = sorted({k[0] for k in results}, key=SCHEDULERS.index)
    systems = sorted({k[1] for k in results}, key=SYSTEMS.index)
    rows: List[list] = []
    for sched in schedulers:
        for system in systems:
            res = results[(sched, system)]
            hist = (res.flow_latency.get("flows") or {}).get("flow")
            if hist is None:
                rows.append([f"{sched}/{system}", "-", "-", "-", "-", "-"])
                continue
            row = percentile_row(hist)
            rows.append([f"{sched}/{system}", row["count"], row["p50_us"],
                         row["p95_us"], row["p99_us"], row["p99_9_us"]])
    return render_table(
        ["sched/system", "pkts", "p50 us", "p95 us", "p99 us", "p99.9 us"],
        rows,
        title="SLO view: per-flow sojourn latency percentiles "
              "(flow 'flow', NIC arrival to chain exit)",
    )


def format_attribution(results: Dict[Tuple[str, str], ScenarioResult]) -> str:
    """Per-NF throttle-induced-delay attribution across the grid."""
    from repro.obs.causality import ATTRIBUTION_HEADERS, attribution_rows

    schedulers = sorted({k[0] for k in results}, key=SCHEDULERS.index)
    systems = sorted({k[1] for k in results}, key=SYSTEMS.index)
    rows: List[list] = []
    for sched in schedulers:
        for system in systems:
            for row in attribution_rows(results[(sched, system)].causality):
                rows.append([f"{sched}/{system}"] + row)
    if not rows:
        rows.append(["(no backpressure activity)", "-", 0, 0.0, 0.0, 0, 0])
    return render_table(
        ["sched/system"] + ATTRIBUTION_HEADERS, rows,
        title="Backpressure attribution: who caused the queueing "
              "(throttle episodes and their per-flow cost)",
    )


def main(duration_s: float = 2.0) -> str:
    return render_cases(run_grid(duration_s=duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
