"""Figure 12: workload heterogeneity — random NF order per flow (§4.3.3).

Three NFs with the *same* compute cost share a core.  Workload Type k
(k = 1..6) offers k equal-rate flows, each traversing all three NFs in a
random order, so every flow has a different bottleneck structure.  The
native schedulers degrade as soon as two or more differently-ordered
flows contend; NFVnice holds a nearly type-independent throughput because
per-chain backpressure sheds each flow at its own entry point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.experiments.common import CaseSpec, Scenario, ScenarioResult
from repro.metrics.report import render_table
from repro.platform.nic import line_rate_pps

NF_COST = 270.0
SCHEDULERS = ("NORMAL", "BATCH", "RR_1MS", "RR_100MS")
SYSTEMS = ("Default", "NFVnice")
TYPES = (1, 2, 3, 4, 5, 6)


def run_case(n_flows: int, scheduler: str, features: str,
             duration_s: float = 1.0, seed: int = 0) -> ScenarioResult:
    scenario = Scenario(scheduler=scheduler, features=features, seed=seed)
    names = [f"nf{i}" for i in (1, 2, 3)]
    for name in names:
        scenario.add_nf(name, NF_COST, core=0)
    rng = scenario.rng_factory.stream("flow-order")
    per_flow = line_rate_pps(64) / n_flows
    for f in range(n_flows):
        order = list(names)
        rng.shuffle(order)
        chain = scenario.add_chain(f"chain{f}", order)
        scenario.add_flow(f"flow{f}", chain.name, rate_pps=per_flow)
    return scenario.run(duration_s)


def run_grid(types: Iterable[int] = TYPES,
             schedulers: Iterable[str] = SCHEDULERS,
             systems: Iterable[str] = SYSTEMS,
             duration_s: float = 1.0) -> Dict[Tuple[int, str, str], ScenarioResult]:
    return {
        (t, sched, system): run_case(t, sched, system, duration_s, seed=t)
        for t in types
        for sched in schedulers
        for system in systems
    }


def campaign_cases(duration_s: float = 1.0) -> List[CaseSpec]:
    """One case per (workload type, scheduler, system); ``seed=t`` matches
    the serial :func:`run_grid` exactly."""
    return [
        CaseSpec(key=(t, sched, system), fn="run_case",
                 kwargs={"n_flows": t, "scheduler": sched,
                         "features": system, "duration_s": duration_s,
                         "seed": t})
        for t in TYPES
        for sched in SCHEDULERS
        for system in SYSTEMS
    ]


def render_cases(results: Dict[Tuple[int, str, str], ScenarioResult]) -> str:
    return format_figure12(results)


def format_figure12(results: Dict[Tuple[int, str, str], ScenarioResult]) -> str:
    types = sorted({k[0] for k in results})
    schedulers = sorted({k[1] for k in results}, key=SCHEDULERS.index)
    rows: List[list] = []
    for t in types:
        for system in SYSTEMS:
            row: List[object] = [f"Type {t}", system]
            for sched in schedulers:
                res = results[(t, sched, system)]
                row.append(round(res.total_throughput_pps / 1e6, 3))
            rows.append(row)
    return render_table(
        ["workload", "system"] + [f"{s} Mpps" for s in schedulers],
        rows, title="Figure 12: flows with random NF orders",
    )


def main(duration_s: float = 1.0) -> str:
    return format_figure12(run_grid(duration_s=duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
