"""Shared experiment scaffolding.

A :class:`Scenario` assembles a platform (scheduler, NFVnice feature set,
NFs, chains, flows), runs it with per-second sampling — "we provide the
average, the minimum and maximum values observed across the samples
collected every second" (§4.1) — and returns a :class:`ScenarioResult`
with the measurements every table/figure draws on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.nf import NFProcess
from repro.metrics.timeseries import IntervalSampler, TimeSeries
from repro.nfs.cost_models import CostModel, FixedCost
from repro.platform.chain import ServiceChain
from repro.platform.config import PlatformConfig
from repro.platform.manager import NFManager
from repro.platform.nic import line_rate_pps
from repro.platform.packet import Flow
from repro.sim.clock import SEC
from repro.sim.engine import EventLoop
from repro.sim.rng import RngFactory
from repro.traffic.generator import TrafficGenerator

#: The four system variants compared throughout §4.2/§4.3:
#: (enable_cgroups, enable_backpressure).
FEATURE_SETS: Dict[str, Tuple[bool, bool]] = {
    "Default": (False, False),
    "CGroup": (True, False),
    "OnlyBKPR": (False, True),
    "NFVnice": (True, True),
}


def feature_config(features: str, base: Optional[PlatformConfig] = None,
                   **overrides) -> PlatformConfig:
    """A :class:`PlatformConfig` for one of the named feature sets."""
    if features not in FEATURE_SETS:
        raise ValueError(
            f"unknown feature set {features!r}; pick one of {sorted(FEATURE_SETS)}"
        )
    cgroups, backpressure = FEATURE_SETS[features]
    cfg = base if base is not None else PlatformConfig()
    cfg = cfg.with_features(cgroups=cgroups, backpressure=backpressure,
                            ecn=cfg.enable_ecn)
    return dataclasses.replace(cfg, **overrides) if overrides else cfg


@dataclass
class CaseSpec:
    """One independently runnable configuration of a sweep experiment.

    Sweep-style experiment modules expose ``campaign_cases(duration_s)``
    returning a list of these, plus ``render_cases(results)`` rebuilding
    the printed artifact from ``{key: ScenarioResult}``.  The campaign
    runner (:mod:`repro.runner`) fans the cases across worker processes;
    because every case carries its full configuration — including its RNG
    seed — in ``kwargs``, a case computes the same result in any process,
    any order.

    ``key`` is the grid key the module's format functions expect (a tuple
    or scalar); ``fn`` names a module-level callable returning a
    :class:`ScenarioResult`; ``kwargs`` must be picklable.
    """

    key: Any
    fn: str
    kwargs: Dict[str, Any]

    @property
    def label(self) -> str:
        """Stable string form of ``key`` (baseline files, task logs)."""
        if isinstance(self.key, tuple):
            return "|".join(str(part) for part in self.key)
        return str(self.key)


@dataclass
class NFSummary:
    """Per-NF measurements (the ``pidstat``/``perf sched`` columns)."""

    name: str
    core_id: int
    processed: int
    processed_pps: float
    wasted_pps: float             # my processed output dropped downstream
    rx_drop_pps: float            # arrivals dropped at my own Rx ring
    runtime_s: float
    cpu_share: float              # fraction of its core's busy horizon
    cswch_per_s: float
    nvcswch_per_s: float
    avg_sched_delay_ms: float
    weight: int
    #: Rx-ring drops keyed by reason (full / sealed / nf_dead / purged);
    #: separates congestion loss from failure loss.
    rx_drops_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Times this NF was restarted by a recovery policy.
    restarts: int = 0


@dataclass
class ChainSummary:
    """Per-chain throughput and loss accounting."""

    name: str
    completed: int
    throughput_pps: float
    throughput_bps: float
    wasted_drop_pps: float
    entry_discard_pps: float
    tput_series: Tuple[float, float, float]  # mean/min/max of 1 s samples
    latency_p50_us: float                    # end-to-end, NIC to chain exit
    latency_p99_us: float


@dataclass
class ScenarioResult:
    """Everything an experiment needs to print its table/figure rows."""

    scheduler: str
    features: str
    duration_s: float
    total_throughput_pps: float
    total_wasted_pps: float
    total_entry_discard_pps: float
    chains: Dict[str, ChainSummary]
    nfs: Dict[str, NFSummary]
    core_utilization: Dict[int, float]
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    #: Scheduler-trace events lost past any attached tracer's cap (0 when
    #: no tracer was attached; non-zero means timelines are incomplete).
    sched_trace_dropped: int = 0
    #: Resilience summary from the fault injector (empty when the run had
    #: no fault plan): incident log, availability, detection/recovery
    #: latencies, packets lost vs requeued.  JSON-safe, digest-covered.
    resilience: Dict[str, Any] = field(default_factory=dict)
    #: Event-loop hygiene counters captured at the end of the run via
    #: :meth:`repro.sim.engine.EventLoop.stats_dict` (impl, pushes, pops,
    #: lazy_cancel_skips, compactions, cascades, peak_pending).
    #: Machine-speed metadata for the perf suite — deliberately NOT
    #: serialised by :func:`repro.analysis.export.result_to_dict`, so it
    #: never enters a digest.
    loop_stats: Dict[str, int] = field(default_factory=dict)
    #: Invariant violations found by the runtime sanitizer (empty unless
    #: the run was sanitized — and empty on a clean sanitized run, so the
    #: digest matches an unsanitized run).  Each entry is a
    #: :class:`repro.check.sanitizer.SanitizerViolation`.
    sanitizer_violations: List[Any] = field(default_factory=list)
    #: Exact per-flow/per-chain/per-hop latency histograms (raw mergeable
    #: form from :meth:`repro.obs.latency.FlowLatencyTracker.to_dict`).
    #: Like ``loop_stats``, deliberately NOT serialised by
    #: :func:`repro.analysis.export.result_to_dict` by default — digests
    #: stay bit-identical with telemetry on or off.
    flow_latency: Dict[str, Any] = field(default_factory=dict)
    #: Backpressure causality attribution
    #: (:meth:`repro.obs.causality.CausalityTracer.summary`); digest-
    #: invisible for the same reason.
    causality: Dict[str, Any] = field(default_factory=dict)
    #: SLO control-loop summary (:meth:`repro.core.monitor.SLOGovernor.
    #: summary`): targets, boost/migrate events, miss counts.  Empty when
    #: no SLO governor ran.  Digest-invisible like ``flow_latency`` (the
    #: governor's *actions* are digest-covered through the results they
    #: change; this is just the log).
    slo: Dict[str, Any] = field(default_factory=dict)

    def nf(self, name: str) -> NFSummary:
        return self.nfs[name]

    def chain(self, name: str) -> ChainSummary:
        return self.chains[name]


class Scenario:
    """Builder + runner for one platform configuration."""

    def __init__(
        self,
        scheduler: str = "BATCH",
        features: str = "NFVnice",
        config: Optional[PlatformConfig] = None,
        seed: int = 0,
        telemetry: bool = False,
        slo_governor: Optional[bool] = None,
        spare_cores: Sequence[int] = (),
        **config_overrides,
    ):
        self.scheduler = scheduler
        self.features = features
        #: When True, run() attaches a FlowLatencyTracker and a
        #: CausalityTracer (unless an ObsSession already did).
        self.telemetry = telemetry
        #: SLO control loop: None = auto (on for the DEADLINE scheduler
        #: when SLO classes are declared and cgroups are enabled), or
        #: force with True/False.  The governor needs live percentile
        #: telemetry, so activating it also turns ``telemetry`` on.
        self.slo_governor = slo_governor
        #: Cores the governor may migrate a bottleneck NF onto.
        self.spare_cores = list(spare_cores)
        self.loop = EventLoop()
        self.rng_factory = RngFactory(seed)
        self.config = feature_config(features, config, **config_overrides)
        self.manager = NFManager(self.loop, scheduler=scheduler, config=self.config)
        self.generator = TrafficGenerator(
            self.loop, self.manager.nic,
            rng=self.rng_factory.stream("traffic"),
        )
        self._nf_cores: Dict[str, int] = {}
        #: SLO class name -> end-to-end sojourn budget (ns).
        self._slo_classes: Dict[str, int] = {}
        #: chain name -> tightest SLO budget (ns) among its flows.
        self._chain_slo_ns: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_nf(
        self,
        name: str,
        cost: Union[float, int, CostModel],
        core: int = 0,
        **kwargs,
    ) -> NFProcess:
        model = FixedCost(float(cost)) if isinstance(cost, (int, float)) else cost
        nf = NFProcess(name, model, config=self.config, **kwargs)
        self.manager.add_nf(nf, core_id=core)
        self._nf_cores[name] = core
        return nf

    def add_chain(self, name: str, nf_names: Sequence[str]) -> ServiceChain:
        nfs = [self.manager.nf_by_name(n) for n in nf_names]
        return self.manager.add_chain(name, nfs)

    def add_slo_class(self, name: str, slo_us: float) -> None:
        """Declare an SLO class: an end-to-end p99 sojourn budget (µs).

        Flows join a class via ``add_flow(..., slo_class=name)``; the
        budget lands on :attr:`repro.platform.packet.Flow.slo_ns`, where
        deadline-aware schedulers and the SLO governor read it.
        """
        if slo_us <= 0:
            raise ValueError(f"SLO budget must be positive, got {slo_us!r}")
        self._slo_classes[name] = int(slo_us * 1e3)

    def add_flow(
        self,
        flow_id: str,
        chain_name: str,
        rate_pps: Optional[float] = None,
        line_rate_fraction: Optional[float] = None,
        pkt_size: int = 64,
        protocol: str = "udp",
        slo_class: Optional[str] = None,
        **spec_kwargs,
    ) -> Flow:
        """Create a flow, steer it into a chain, and register its load.

        Give either an absolute ``rate_pps`` or a ``line_rate_fraction`` of
        the NIC's 64-byte-equivalent line rate for this packet size.
        ``slo_class`` names a class declared with :meth:`add_slo_class`.
        """
        slo_ns = None
        if slo_class is not None:
            if slo_class not in self._slo_classes:
                raise ValueError(
                    f"undeclared SLO class {slo_class!r}; declare it with "
                    f"add_slo_class() first")
            slo_ns = self._slo_classes[slo_class]
        flow = Flow(flow_id, pkt_size=pkt_size, protocol=protocol,
                    slo_ns=slo_ns)
        chain = self.manager.chains[chain_name]
        if slo_ns is not None:
            tightest = self._chain_slo_ns.get(chain_name)
            if tightest is None or slo_ns < tightest:
                self._chain_slo_ns[chain_name] = slo_ns
        self.manager.install_flow(flow, chain)
        if rate_pps is None:
            if line_rate_fraction is None:
                raise ValueError("need rate_pps or line_rate_fraction")
            rate_pps = line_rate_fraction * line_rate_pps(
                pkt_size, self.manager.nic.link_bps
            )
        self.generator.add_flow(flow, rate_pps, **spec_kwargs)
        return flow

    def attach_faults(self, plan, policy=None) -> None:
        """Attach a fault plan, wiring stochastic onsets to this
        scenario's seeded ``faults`` RNG stream."""
        self.manager.attach_faults(
            plan, policy=policy, rng=self.rng_factory.stream("faults"))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_s: float = 2.0,
            extra_probes: Optional[Dict[str, Tuple]] = None) -> ScenarioResult:
        """Run for ``duration_s`` simulated seconds and summarise."""
        from repro.obs.session import current_session

        from repro.check.sanitizer import current_sanitizer
        from repro.faults.plan import current_plan

        mgr = self.manager
        session = current_session()
        if session is not None and not mgr._started:
            session.attach(self)
        governor_on = self._governor_enabled()
        if governor_on:
            # The governor projects misses from live p99 snapshots; it
            # needs the tracker attached.
            self.telemetry = True
        if self.telemetry and not mgr._started and mgr.latency is None:
            from repro.obs.causality import CausalityTracer
            from repro.obs.latency import FlowLatencyTracker

            mgr.attach_telemetry(FlowLatencyTracker(), CausalityTracer())
        sanitizer = current_sanitizer()
        if sanitizer is not None and not mgr._started:
            sanitizer.attach(self)
        fault_plan = current_plan()
        if fault_plan is not None and mgr.faults is None and not mgr._started:
            self.attach_faults(fault_plan)
        if governor_on and mgr.slo_governor is None and not mgr._started:
            from repro.core.monitor import SLOGovernor

            mgr.attach_slo_governor(SLOGovernor(
                mgr, self._chain_slo_ns, spare_cores=self.spare_cores))
        sampler = IntervalSampler(self.loop, SEC)
        for chain in mgr.chains.values():
            sampler.add_probe(
                f"tput:{chain.name}",
                (lambda c: (lambda: c.completed))(chain),
            )
        if extra_probes:
            for name, (fn, rate) in extra_probes.items():
                sampler.add_probe(name, fn, rate=rate)
        mgr.start()
        self.generator.start()
        sampler.start()
        horizon = int(duration_s * SEC)
        self.loop.run_until(self.loop.now + horizon)
        mgr.finalize()
        result = self._summarise(duration_s, sampler)
        if sanitizer is not None:
            result.sanitizer_violations = sanitizer.finish_run(self)
        return result

    def _governor_enabled(self) -> bool:
        """Should run() wire an SLO governor?  Explicit flag wins; auto
        mode turns it on for the DEADLINE scheduler when SLO classes are
        declared and cgroups (hence the Monitor) are enabled."""
        if not self._chain_slo_ns or not self.config.enable_cgroups:
            return False
        if self.slo_governor is not None:
            return self.slo_governor
        return (isinstance(self.scheduler, str)
                and self.scheduler.strip().upper()
                in ("DEADLINE", "DEADLINE_CFS", "DL"))

    def _summarise(self, duration_s: float,
                   sampler: IntervalSampler) -> ScenarioResult:
        mgr = self.manager
        chains: Dict[str, ChainSummary] = {}
        for chain in mgr.chains.values():
            series = sampler[f"tput:{chain.name}"]
            chains[chain.name] = ChainSummary(
                name=chain.name,
                completed=chain.completed,
                throughput_pps=chain.completed / duration_s,
                throughput_bps=chain.completed_bytes * 8 / duration_s,
                wasted_drop_pps=chain.wasted_drops / duration_s,
                entry_discard_pps=chain.entry_discards / duration_s,
                tput_series=series.summary(),
                latency_p50_us=chain.latency_hist.median() / 1e3,
                latency_p99_us=chain.latency_hist.percentile(99) / 1e3,
            )

        horizon_ns = duration_s * SEC
        nfs: Dict[str, NFSummary] = {}
        for nf in mgr.nfs:
            core = nf.core
            assert core is not None
            busy = core.stats.busy_ns + core.stats.overhead_ns
            nfs[nf.name] = NFSummary(
                name=nf.name,
                core_id=core.core_id,
                processed=nf.processed_packets,
                processed_pps=nf.processed_packets / duration_s,
                wasted_pps=nf.wasted_processed / duration_s,
                rx_drop_pps=nf.rx_ring.dropped_total / duration_s,
                runtime_s=nf.stats.runtime_ns / SEC,
                cpu_share=(nf.stats.runtime_ns / busy) if busy > 0 else 0.0,
                cswch_per_s=nf.stats.voluntary_switches / duration_s,
                nvcswch_per_s=nf.stats.involuntary_switches / duration_s,
                avg_sched_delay_ms=nf.stats.avg_sched_delay_ns / 1e6,
                weight=nf.weight,
                rx_drops_by_reason={
                    k: nf.rx_ring.drops_by_reason[k]
                    for k in sorted(nf.rx_ring.drops_by_reason)
                },
                restarts=nf.restarts,
            )

        utilization = {
            core_id: core.stats.utilization(horizon_ns)
            for core_id, core in mgr.cores.items()
        }
        trace_dropped = sum(
            core.tracer.dropped for core in mgr.cores.values()
            if core.tracer is not None
        )
        return ScenarioResult(
            scheduler=self.scheduler,
            features=self.features,
            duration_s=duration_s,
            total_throughput_pps=mgr.total_completed / duration_s,
            total_wasted_pps=mgr.total_wasted_drops / duration_s,
            total_entry_discard_pps=mgr.total_entry_discards / duration_s,
            chains=chains,
            nfs=nfs,
            core_utilization=utilization,
            series=dict(sampler.series),
            sched_trace_dropped=trace_dropped,
            resilience=(
                mgr.faults.summary(horizon_ns=int(duration_s * SEC))
                if mgr.faults is not None else {}
            ),
            loop_stats=self.loop.stats_dict(),
            flow_latency=(mgr.latency.to_dict()
                          if mgr.latency is not None else {}),
            causality=(mgr.causality.summary(self.loop.now)
                       if mgr.causality is not None else {}),
            slo=(mgr.slo_governor.summary()
                 if mgr.slo_governor is not None else {}),
        )


def build_linear_chain(
    scenario: Scenario,
    costs: Sequence[float],
    core: Union[int, Sequence[int]] = 0,
    chain_name: str = "chain",
    nf_prefix: str = "nf",
) -> ServiceChain:
    """Convenience: NFs ``nf1..nfN`` with the given costs in one chain.

    ``core`` may be a single core id (all NFs share it) or one id per NF
    (the multi-core pinning of §4.2.2).
    """
    if isinstance(core, int):
        cores = [core] * len(costs)
    else:
        cores = list(core)
        if len(cores) != len(costs):
            raise ValueError("one core id per NF required")
    names = []
    for i, (cost, core_id) in enumerate(zip(costs, cores), start=1):
        name = f"{nf_prefix}{i}"
        scenario.add_nf(name, cost, core=core_id)
        names.append(name)
    return scenario.add_chain(chain_name, names)
