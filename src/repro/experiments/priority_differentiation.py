"""NF priorities: differentiated service via the share formula (§3.2).

``Shares_i = Priority_i * load(i) / TotalLoad(m)`` — "the Priority
parameter can be tuned if desired to provide differential service to NFs.
Tuning priority in this way provides a more intuitive level of control
than directly working with the CPU priorities exposed by the scheduler
since it is normalized by the NF's load."

Two *identical* NFs (same cost, same overloading arrival rate) share a
core; NF1 carries priority 2.0.  With NFVnice the gold NF receives about
twice the CPU and therefore about twice the throughput; the Default
scheduler ignores the attribute entirely.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import Scenario, ScenarioResult
from repro.metrics.report import render_table

NF_COST = 600.0
PER_FLOW_PPS = 4.0e6
GOLD_PRIORITY = 2.0


def run_case(features: str, gold_priority: float = GOLD_PRIORITY,
             duration_s: float = 1.0, seed: int = 0) -> ScenarioResult:
    scenario = Scenario(scheduler="BATCH", features=features, seed=seed,
                        num_rx_threads=2)
    scenario.add_nf("gold", NF_COST, core=0, priority=gold_priority)
    scenario.add_nf("best-effort", NF_COST, core=0, priority=1.0)
    scenario.add_chain("gold", ["gold"])
    scenario.add_chain("best-effort", ["best-effort"])
    scenario.add_flow("flow-gold", "gold", rate_pps=PER_FLOW_PPS)
    scenario.add_flow("flow-be", "best-effort", rate_pps=PER_FLOW_PPS)
    return scenario.run(duration_s)


def run_priority(duration_s: float = 1.0) -> Dict[str, ScenarioResult]:
    return {
        "Default": run_case("Default", duration_s=duration_s),
        "NFVnice": run_case("NFVnice", duration_s=duration_s),
    }


def format_priority(results: Dict[str, ScenarioResult]) -> str:
    rows: List[list] = []
    for system, res in results.items():
        for name in ("gold", "best-effort"):
            nf = res.nf(name)
            rows.append([
                system, name,
                round(res.chain(name).throughput_pps / 1e6, 3),
                round(100 * nf.cpu_share, 1),
                nf.weight,
            ])
    return render_table(
        ["system", "NF", "tput Mpps", "cpu %", "cpu.shares"],
        rows,
        title=f"Priority differentiation: identical NFs, gold priority "
              f"{GOLD_PRIORITY:g}",
    )


def main(duration_s: float = 1.0) -> str:
    return format_priority(run_priority(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
