"""Figure 9 + Table 6: two chains sharing NF instances across 4 cores
(§4.2.2, Figure 8).

* chain-1: NF1 (270) → NF2 (120) → NF4 (300)
* chain-2: NF1 (270) → NF3 (4500) → NF4 (300)

The same NF1 and NF4 instances serve both chains; each NF is pinned to a
dedicated core; MoonGen splits 64 B line rate 50/50 between the chains.

Chain-2 bottlenecks at NF3.  Without NFVnice, NF1 wastes its core on
chain-2 packets NF3 will drop, starving chain-1.  With backpressure the
chain-2 excess is shed at entry, NF1's freed cycles go to chain-1, and
chain-1's throughput roughly doubles while chain-2 holds its bottleneck
rate — per-chain selectivity is the point (chain B in Figure 5 is not
affected).
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import CaseSpec, Scenario, ScenarioResult
from repro.metrics.report import render_table

NF_COSTS = {"nf1": 270.0, "nf2": 120.0, "nf3": 4500.0, "nf4": 300.0}


def run_case(features: str, duration_s: float = 2.0,
             seed: int = 0) -> ScenarioResult:
    scenario = Scenario(
        scheduler="NORMAL", features=features, seed=seed, telemetry=True,
        # Two chain entry flows at an aggregate 14.88 Mpps: give the
        # manager two Rx threads as the testbed's dual-port setup would.
        num_rx_threads=2,
    )
    for core_id, (name, cost) in enumerate(NF_COSTS.items()):
        scenario.add_nf(name, cost, core=core_id)
    scenario.add_chain("chain1", ["nf1", "nf2", "nf4"])
    scenario.add_chain("chain2", ["nf1", "nf3", "nf4"])
    scenario.add_flow("flow1", "chain1", line_rate_fraction=0.5)
    scenario.add_flow("flow2", "chain2", line_rate_fraction=0.5)
    return scenario.run(duration_s)


def run_fig9(duration_s: float = 2.0) -> Dict[str, ScenarioResult]:
    return {
        "Default": run_case("Default", duration_s),
        "NFVnice": run_case("NFVnice", duration_s),
    }


def campaign_cases(duration_s: float = 2.0) -> List[CaseSpec]:
    return [
        CaseSpec(key=system, fn="run_case",
                 kwargs={"features": system, "duration_s": duration_s,
                         "seed": 0})
        for system in ("Default", "NFVnice")
    ]


def render_cases(results: Dict[str, ScenarioResult]) -> str:
    return "\n".join([
        format_figure9(results),
        format_table6(results),
        format_slo(results),
        format_attribution(results),
    ])


def format_slo(results: Dict[str, ScenarioResult]) -> str:
    """Per-flow SLO percentiles: the latency cost chain-2's bottleneck
    imposes on each flow class under each system."""
    from repro.obs.latency import percentile_row

    rows: List[list] = []
    for system in ("Default", "NFVnice"):
        flows = results[system].flow_latency.get("flows") or {}
        for flow_id in ("flow1", "flow2"):
            hist = flows.get(flow_id)
            if hist is None:
                rows.append([f"{system}/{flow_id}", "-", "-", "-", "-", "-"])
                continue
            row = percentile_row(hist)
            rows.append([f"{system}/{flow_id}", row["count"], row["p50_us"],
                         row["p95_us"], row["p99_us"], row["p99_9_us"]])
    return render_table(
        ["system/flow", "pkts", "p50 us", "p95 us", "p99 us", "p99.9 us"],
        rows,
        title="SLO view: per-flow sojourn latency percentiles",
    )


def format_attribution(results: Dict[str, ScenarioResult]) -> str:
    """Who throttled whom: NF3's episodes should carry chain-2's cost."""
    from repro.obs.causality import ATTRIBUTION_HEADERS, attribution_rows

    rows: List[list] = []
    for system in ("Default", "NFVnice"):
        for row in attribution_rows(results[system].causality):
            rows.append([system] + row)
    if not rows:
        rows.append(["(no backpressure activity)", "-", 0, 0.0, 0.0, 0, 0])
    return render_table(
        ["system"] + ATTRIBUTION_HEADERS, rows,
        title="Backpressure attribution: per-NF throttle-induced delay",
    )


def format_figure9(results: Dict[str, ScenarioResult]) -> str:
    rows: List[list] = []
    for chain_name in ("chain1", "chain2"):
        row: List[object] = [chain_name]
        for system in ("Default", "NFVnice"):
            mean, lo, hi = results[system].chain(chain_name).tput_series
            row.append(f"{mean / 1e6:.2f} ({lo / 1e6:.2f}-{hi / 1e6:.2f})")
        rows.append(row)
    return render_table(
        ["chain", "Default Mpps", "NFVnice Mpps"], rows,
        title="Figure 9: two multi-core chains sharing NF1/NF4",
    )


def format_table6(results: Dict[str, ScenarioResult]) -> str:
    rows: List[list] = []
    for name in NF_COSTS:
        row: List[object] = [f"{name} (~{int(NF_COSTS[name])}cyc)"]
        for system in ("Default", "NFVnice"):
            res = results[system]
            nf = res.nf(name)
            row += [
                nf.processed_pps,
                nf.wasted_pps,
                f"{100 * res.core_utilization[nf.core_id]:.1f}%",
            ]
        rows.append(row)
    return render_table(
        ["NF", "Def svc pps", "Def drop pps", "Def CPU",
         "NFVn svc pps", "NFVn drop pps", "NFVn CPU"],
        rows,
        title="Table 6: shared-NF chains, per-NF service/drop/CPU",
    )


def main(duration_s: float = 2.0) -> str:
    return render_cases(run_fig9(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
