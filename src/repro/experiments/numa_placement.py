"""NUMA-aware vs NUMA-oblivious chain placement (extension).

The paper notes that NF scheduling "[has] to be cognizant of NUMA
(Non-uniform Memory Access) concerns of NF processing and the dependencies
among NFs in a service chain" (§1).  The platform models a dual-socket
machine (28 worker cores per socket, per the testbed): every chain hop
that crosses the socket boundary charges the downstream NF a per-packet
remote-memory penalty.

The experiment pins the same 3-NF chain two ways:

* **local** — all NFs on socket 0 (cores 0, 1, 2);
* **cross** — NF2 on socket 1 (cores 0, 28, 1), so *two* hops cross.

Same NFs, same load, same NFVnice policies — placement alone moves the
bottleneck.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import Scenario, ScenarioResult, build_linear_chain
from repro.metrics.report import render_table

CHAIN_COSTS = (550.0, 2200.0, 4500.0)
PLACEMENTS = {
    "local": (0, 1, 2),      # one socket
    "cross": (0, 28, 1),     # NF2 on the far socket: two remote hops
}


def run_case(placement: str, duration_s: float = 1.0,
             seed: int = 0) -> ScenarioResult:
    cores = PLACEMENTS[placement]
    scenario = Scenario(scheduler="NORMAL", features="NFVnice", seed=seed)
    build_linear_chain(scenario, CHAIN_COSTS, core=cores)
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def run_numa(duration_s: float = 1.0) -> Dict[str, ScenarioResult]:
    return {p: run_case(p, duration_s) for p in PLACEMENTS}


def format_numa(results: Dict[str, ScenarioResult]) -> str:
    rows: List[list] = []
    for placement, res in results.items():
        rows.append([
            placement,
            "-".join(str(c) for c in PLACEMENTS[placement]),
            round(res.total_throughput_pps / 1e6, 3),
            round(res.chain("chain").latency_p50_us, 1),
            round(res.chain("chain").latency_p99_us, 1),
        ])
    return render_table(
        ["placement", "cores", "tput Mpps", "p50 lat us", "p99 lat us"],
        rows,
        title="NUMA placement: same chain, local vs cross-socket pinning",
    )


def main(duration_s: float = 1.0) -> str:
    return format_numa(run_numa(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
