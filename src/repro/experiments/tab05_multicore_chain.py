"""Table 5: a 3-NF chain with each NF pinned to its own core (§4.2.2).

NF1 ~550, NF2 ~2200, NF3 ~4500 cycles; line-rate 64 B input.  With NFs on
dedicated cores the kernel scheduler is irrelevant — the table isolates
what backpressure alone buys: the Default system burns NF1's and NF2's
cores processing packets NF3 will discard, while NFVnice sheds the excess
at the chain entry and drops NF1/NF2 CPU utilisation to just what the
bottleneck (NF3) can consume, at identical aggregate throughput.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import CaseSpec, Scenario, ScenarioResult, \
    build_linear_chain
from repro.metrics.report import render_table

CHAIN_COSTS = (550.0, 2200.0, 4500.0)


def run_case(features: str, duration_s: float = 2.0,
             seed: int = 0) -> ScenarioResult:
    scenario = Scenario(scheduler="NORMAL", features=features, seed=seed)
    build_linear_chain(scenario, CHAIN_COSTS, core=(0, 1, 2))
    scenario.add_flow("flow", "chain", line_rate_fraction=1.0)
    return scenario.run(duration_s)


def run_table5(duration_s: float = 2.0) -> Dict[str, ScenarioResult]:
    return {
        "Default": run_case("Default", duration_s),
        "NFVnice": run_case("NFVnice", duration_s),
    }


def campaign_cases(duration_s: float = 2.0) -> List[CaseSpec]:
    return [
        CaseSpec(key=system, fn="run_case",
                 kwargs={"features": system, "duration_s": duration_s,
                         "seed": 0})
        for system in ("Default", "NFVnice")
    ]


def render_cases(results: Dict[str, ScenarioResult]) -> str:
    return format_table5(results)


def format_table5(results: Dict[str, ScenarioResult]) -> str:
    rows: List[list] = []
    for i in (1, 2, 3):
        row: List[object] = [f"NF{i} (~{int(CHAIN_COSTS[i - 1])}cyc)"]
        for system in ("Default", "NFVnice"):
            res = results[system]
            nf = res.nf(f"nf{i}")
            row += [
                nf.processed_pps,
                nf.wasted_pps,
                f"{100 * res.core_utilization[nf.core_id]:.0f}%",
            ]
        rows.append(row)
    agg: List[object] = ["Aggregate"]
    for system in ("Default", "NFVnice"):
        res = results[system]
        total_util = sum(res.core_utilization.values())
        agg += [
            res.total_throughput_pps,
            res.total_wasted_pps,
            f"{100 * total_util:.0f}%",
        ]
    rows.append(agg)
    return render_table(
        ["NF",
         "Def svc pps", "Def drop pps", "Def CPU",
         "NFVn svc pps", "NFVn drop pps", "NFVn CPU"],
        rows,
        title="Table 5: 3-NF chain, one core per NF "
              "(drop pps = processed then dropped downstream)",
    )


def main(duration_s: float = 2.0) -> str:
    return format_table5(run_table5(duration_s))


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(main())
