"""repro — a reproduction of *NFVnice: Dynamic Backpressure and Scheduling
for NFV Service Chains* (Kulkarni et al., SIGCOMM 2017).

The package implements the complete NFVnice system — rate-cost
proportional CPU scheduling via cgroup weights, chain-level backpressure
with selective early discard, ECN marking, and asynchronous double-
buffered NF I/O — on top of a cycle-accurate discrete-event model of the
OpenNetVM platform and the Linux CFS/RR schedulers.

Quick start::

    from repro import (EventLoop, NFManager, PlatformConfig, Flow,
                       TrafficGenerator, make_nf, SEC)

    loop = EventLoop()
    mgr = NFManager(loop, scheduler="BATCH", config=PlatformConfig())
    nfs = [mgr.add_nf(make_nf(f"nf{i}", cost, config=mgr.config), core_id=0)
           for i, cost in enumerate((120, 270, 550), start=1)]
    chain = mgr.add_chain("chain", nfs)
    flow = Flow("f0")
    mgr.install_flow(flow, chain)

    gen = TrafficGenerator(loop, mgr.nic)
    gen.add_line_rate_flows([flow])
    mgr.start(); gen.start()
    loop.run_until(1 * SEC)
    print(chain.completed, "packets completed")
"""

from repro.core import (
    AsyncIOContext,
    BackpressureController,
    CallbackNF,
    DiskDevice,
    ECNMarker,
    MonitorThread,
    NFProcess,
    SyncIOContext,
    compute_shares,
)
from repro.metrics import IntervalSampler, TimeSeries, jain_index, render_table
from repro.nfs import (
    ChoiceCost,
    ExponentialCost,
    FixedCost,
    NormalCost,
    UniformCost,
    make_bridge,
    make_dpi,
    make_encryptor,
    make_firewall,
    make_logger,
    make_misbehaving,
    make_monitor,
    make_nf,
)
from repro.platform import (
    NIC,
    Flow,
    FlowTable,
    HostLink,
    NFManager,
    PacketRing,
    PlatformConfig,
    ServiceChain,
    Topology,
    build_topology,
    connect_hosts,
    line_rate_pps,
    load_topology,
)
from repro.platform.config import default_platform_config
from repro.sched import (
    CFSBatchScheduler,
    CFSScheduler,
    Core,
    RRScheduler,
    make_scheduler,
)
from repro.sim import MSEC, SEC, USEC, EventLoop, RngFactory
from repro.traffic import FlowSpec, TCPFlow, TrafficGenerator

__version__ = "1.0.0"

__all__ = [
    # simulation
    "EventLoop",
    "RngFactory",
    "SEC",
    "MSEC",
    "USEC",
    # platform
    "NFManager",
    "PlatformConfig",
    "default_platform_config",
    "Flow",
    "FlowTable",
    "ServiceChain",
    "PacketRing",
    "NIC",
    "line_rate_pps",
    "HostLink",
    "connect_hosts",
    "Topology",
    "build_topology",
    "load_topology",
    # schedulers
    "make_scheduler",
    "CFSScheduler",
    "CFSBatchScheduler",
    "RRScheduler",
    "Core",
    # NFVnice core
    "NFProcess",
    "CallbackNF",
    "BackpressureController",
    "MonitorThread",
    "ECNMarker",
    "compute_shares",
    "DiskDevice",
    "AsyncIOContext",
    "SyncIOContext",
    # NFs and cost models
    "make_nf",
    "make_bridge",
    "make_monitor",
    "make_firewall",
    "make_dpi",
    "make_encryptor",
    "make_logger",
    "make_misbehaving",
    "FixedCost",
    "ChoiceCost",
    "NormalCost",
    "UniformCost",
    "ExponentialCost",
    # traffic
    "TrafficGenerator",
    "FlowSpec",
    "TCPFlow",
    # metrics
    "jain_index",
    "render_table",
    "TimeSeries",
    "IntervalSampler",
]
