"""Exporters: Chrome/Perfetto trace-event JSON and Prometheus text.

``write_chrome_trace`` turns recorded :class:`~repro.obs.bus.EventBus`
streams into the Trace Event Format that ``ui.perfetto.dev`` (and
``chrome://tracing``) loads directly: one *process* per scenario, one
*thread* track per simulated core carrying the dispatch→switch-out
slices and wake instants, one *counter* track per packet ring carrying
its depth, and a control track for backpressure / ECN / wakeup /
monitor decisions.

``write_prometheus`` renders a :class:`~repro.obs.registry.MetricsRegistry`
in the Prometheus text exposition format (counters, gauges, and
histograms as quantile summaries).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.obs.bus import (
    EventBus,
    SCHED_DISPATCH,
    SCHED_SWITCH_OUT,
    SCHED_WAKE,
)
from repro.obs.registry import MetricsRegistry

#: Synthetic thread ids for non-core tracks (cores use their own ids).
CONTROL_TID = 900


def chrome_trace_events(bus: EventBus, pid: int = 0,
                        label: str = "") -> List[dict]:
    """Flatten one bus into Trace Event Format dicts (``ts`` in µs)."""
    out: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": pid, "ts": 0,
        "args": {"name": label or f"scenario-{pid}"},
    }]
    cores_seen: Dict[int, bool] = {}
    open_runs: Dict[int, Tuple[str, int]] = {}
    control_used = False

    for ev in bus.events:
        kind = ev.kind
        ts = ev.time_ns / 1e3
        if kind == SCHED_DISPATCH:
            core = ev.args["core"]
            cores_seen[core] = True
            open_runs[core] = (ev.source, ev.time_ns)
        elif kind == SCHED_SWITCH_OUT:
            core = ev.args["core"]
            cores_seen[core] = True
            opened = open_runs.pop(core, None)
            if opened is not None:
                task, start = opened
                out.append({
                    "ph": "X", "name": task, "cat": "sched",
                    "pid": pid, "tid": core,
                    "ts": start / 1e3,
                    "dur": max(0.0, (ev.time_ns - start) / 1e3),
                    "args": {"outcome": ev.args.get("detail", ""),
                             "switched_to" if ev.source != task else "task":
                                 ev.source},
                })
        elif kind == SCHED_WAKE:
            core = ev.args["core"]
            cores_seen[core] = True
            out.append({
                "ph": "i", "name": f"wake {ev.source}", "cat": "sched",
                "pid": pid, "tid": core, "ts": ts, "s": "t",
            })
        elif kind.startswith("ring."):
            out.append({
                "ph": "C", "name": f"ring {ev.source}", "cat": "ring",
                "pid": pid, "ts": ts,
                "args": {"depth": ev.args.get("depth", 0)},
            })
        else:
            control_used = True
            args = {"source": ev.source}
            args.update(ev.args)
            out.append({
                "ph": "i", "name": kind, "cat": kind.split(".", 1)[0],
                "pid": pid, "tid": CONTROL_TID, "ts": ts, "s": "t",
                "args": args,
            })

    # A run still open at trace end becomes a slice up to the last event.
    if bus.events:
        t_end = bus.events[-1].time_ns
        for core, (task, start) in open_runs.items():
            out.append({
                "ph": "X", "name": task, "cat": "sched",
                "pid": pid, "tid": core, "ts": start / 1e3,
                "dur": max(0.0, (t_end - start) / 1e3),
                "args": {"outcome": "open-at-trace-end"},
            })

    for core in sorted(cores_seen):
        out.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": core,
            "ts": 0, "args": {"name": f"core {core}"},
        })
    if control_used:
        out.append({
            "ph": "M", "name": "thread_name", "pid": pid,
            "tid": CONTROL_TID, "ts": 0, "args": {"name": "manager control"},
        })
    return out


def write_chrome_trace(
    path: Union[str, Path],
    buses: Sequence[Tuple[str, EventBus]],
) -> Path:
    """Write one or more (label, bus) streams as a single trace file.

    Each bus becomes its own Perfetto process so a grid run (16 fig07
    scenarios) opens as 16 collapsible process groups.
    """
    events: List[dict] = []
    dropped = 0
    for pid, (label, bus) in enumerate(buses):
        events.extend(chrome_trace_events(bus, pid=pid, label=label))
        dropped += bus.dropped
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "events_dropped_at_bus_cap": dropped,
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _label_str(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text format (version 0.0.4)."""
    lines: List[str] = []
    seen_headers: Dict[str, bool] = {}
    for name, labels, kind, metric in registry.collect():
        if name not in seen_headers:
            seen_headers[name] = True
            help_text = registry.help_for(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            prom_type = {"counter": "counter", "gauge": "gauge",
                         "histogram": "summary"}[kind]
            lines.append(f"# TYPE {name} {prom_type}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_label_str(labels)} {float(metric.value):g}")
        else:  # histogram -> summary with fixed quantiles
            for q in (0.5, 0.95, 0.99):
                value = metric.percentile(q * 100)
                quantile = 'quantile="%g"' % q
                lines.append(
                    f"{name}{_label_str(labels, quantile)} {value:g}")
            lines.append(f"{name}_sum{_label_str(labels)} {metric.total:g}")
            lines.append(f"{name}_count{_label_str(labels)} {metric.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry,
                     path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prometheus(registry))
    return path
