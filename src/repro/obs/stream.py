"""Streaming run snapshots: live telemetry as JSONL.

``repro run fig07 --stream-out snaps.jsonl --stream-interval-ms 100``
periodically serialises, for every scenario in the run:

* the registry's scalar gauges/counters (scoped to the scenario label),
* per-flow/per-chain latency percentile summaries from the
  :class:`~repro.obs.latency.FlowLatencyTracker`,
* the :class:`~repro.obs.causality.CausalityTracer`'s attribution state,

one JSON object per line.  This is the substrate the ROADMAP's
service-mode item will subscribe to: a consumer can tail the file and
watch p99 latency and throttle attribution evolve mid-run instead of
waiting for the final report.

Each scenario runs on its own :class:`~repro.sim.engine.EventLoop`
starting at t=0, so snapshots carry both the scenario label and the
scenario-local simulated time.  Lines are written with sorted keys, so
two identical runs produce byte-identical stream files.

The module also hosts the ``repro obs diff`` logic: load two telemetry
files (stream JSONL, taking each scenario's last snapshot, or a plain
JSON report) and flag percentile regressions beyond a threshold.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.sim.engine import EventLoop
from repro.sim.process import PeriodicProcess

#: Percentile columns compared by :func:`diff_telemetry`.
_DIFF_KEYS = ("p50_us", "p95_us", "p99_us", "p99_9_us")


class _ScenarioFeed:
    """Everything the streamer reads for one scenario's snapshots."""

    __slots__ = ("label", "loop", "registry", "latency", "causality",
                 "_proc")

    def __init__(self, label: str, loop: EventLoop, registry,
                 latency, causality):
        self.label = label
        self.loop = loop
        self.registry = registry
        self.latency = latency
        self.causality = causality
        self._proc: Optional[PeriodicProcess] = None


class SnapshotStreamer:
    """Emits periodic JSONL telemetry snapshots for attached scenarios."""

    def __init__(self, path: str, interval_ns: int):
        if interval_ns <= 0:
            raise ValueError("stream interval must be positive")
        self.path = path
        self.interval_ns = int(interval_ns)
        self.emitted = 0
        self._feeds: List[_ScenarioFeed] = []
        self._fh: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    def register(self, label: str, loop: EventLoop, registry=None,
                 latency=None, causality=None) -> None:
        """Attach a scenario: snapshots fire on *its* loop every interval."""
        feed = _ScenarioFeed(label, loop, registry, latency, causality)
        feed._proc = PeriodicProcess(
            loop, self.interval_ns, lambda f=feed: self._emit(f),
            "obs-stream")
        feed._proc.start()
        self._feeds.append(feed)

    # ------------------------------------------------------------------
    def _snapshot(self, feed: _ScenarioFeed) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "scenario": feed.label,
            "t_ns": feed.loop.now,
        }
        if feed.registry is not None:
            gauges: Dict[str, float] = {}
            for name, labels, kind, metric in feed.registry.collect():
                if kind == "histogram":
                    continue
                if labels.get("scenario") != feed.label:
                    continue
                extra = "|".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                    if k != "scenario")
                key = f"{name}|{extra}" if extra else name
                gauges[key] = float(metric.value)
            snap["gauges"] = gauges
        if feed.latency is not None:
            snap["latency"] = feed.latency.summary()
        if feed.causality is not None:
            snap["causality"] = feed.causality.summary(feed.loop.now)
        return snap

    def _emit(self, feed: _ScenarioFeed) -> None:
        if self._fh is None:
            self._fh = open(self.path, "w")
        json.dump(self._snapshot(feed), self._fh,
                  sort_keys=True, separators=(",", ":"))
        self._fh.write("\n")
        self.emitted += 1

    # ------------------------------------------------------------------
    def finalize(self) -> str:
        """Emit one last snapshot per scenario, flush and close."""
        for feed in self._feeds:
            if feed._proc is not None:
                feed._proc.stop()
            self._emit(feed)
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return (f"[obs] streamed {self.emitted} snapshots from "
                f"{len(self._feeds)} scenario(s) to {self.path}")


# ---------------------------------------------------------------------------
# ``repro obs diff``
# ---------------------------------------------------------------------------
def load_telemetry(path: str) -> Dict[str, Dict[str, Any]]:
    """Load telemetry keyed by scenario label.

    Accepts either a stream JSONL file (each scenario's **last** snapshot
    wins — that is the end-of-run state) or a plain JSON object of the
    same shape (``{label: {"latency": ..., "causality": ...}}``).
    """
    last: Dict[str, Dict[str, Any]] = {}
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and "\n" not in stripped.rstrip():
        # Could still be a one-line JSONL snapshot; disambiguate on the
        # "scenario" key every stream line carries.
        obj = json.loads(stripped)
        if "scenario" in obj:
            last[str(obj["scenario"])] = obj
            return last
        for label, entry in obj.items():
            last[str(label)] = dict(entry)
        return last
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if "scenario" in obj:
            last[str(obj["scenario"])] = obj
        else:
            for label, entry in obj.items():
                last[str(label)] = dict(entry)
    return last


def _percentile_rows(entry: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Flatten one scenario's latency summary to comparable rows."""
    latency = entry.get("latency") or {}
    rows: Dict[str, Dict[str, float]] = {}
    for section in ("flows", "chains"):
        for name, row in (latency.get(section) or {}).items():
            rows[f"{section[:-1]}:{name}"] = row
    return rows


def diff_telemetry(a: Dict[str, Dict[str, Any]],
                   b: Dict[str, Dict[str, Any]],
                   max_regression: float = 0.10,
                   min_abs_us: float = 1.0) -> Tuple[str, int]:
    """Compare run B against baseline A; flag percentile regressions.

    A regression is a percentile that grew by more than ``max_regression``
    (fractional) **and** by at least ``min_abs_us`` microseconds — the
    absolute floor keeps sub-microsecond jitter on tiny runs from
    flagging.  Returns (report text, regression count).
    """
    lines: List[str] = []
    regressions = 0
    compared = 0
    labels = sorted(set(list(a) + list(b)))
    for label in labels:
        ea, eb = a.get(label), b.get(label)
        if ea is None or eb is None:
            lines.append(f"  {label}: only in "
                         f"{'B' if ea is None else 'A'} — skipped")
            continue
        rows_a, rows_b = _percentile_rows(ea), _percentile_rows(eb)
        for key in sorted(set(list(rows_a) + list(rows_b))):
            ra, rb = rows_a.get(key), rows_b.get(key)
            if ra is None or rb is None:
                lines.append(f"  {label} {key}: only in "
                             f"{'B' if ra is None else 'A'}")
                continue
            for pk in _DIFF_KEYS:
                va, vb = ra.get(pk), rb.get(pk)
                if va is None or vb is None:
                    continue
                compared += 1
                delta = vb - va
                if va > 0:
                    rel = delta / va
                elif vb > 0:
                    rel = float("inf")
                else:
                    rel = 0.0
                if rel > max_regression and delta >= min_abs_us:
                    regressions += 1
                    rel_pct = ("inf" if rel == float("inf")
                               else f"{rel * 100:.1f}%")
                    lines.append(
                        f"  REGRESSION {label} {key} {pk}: "
                        f"{va:.3f} -> {vb:.3f} us (+{rel_pct})")
    header = (f"obs diff: {regressions} percentile regression(s) "
              f"(threshold {max_regression * 100:.0f}%)")
    if not lines:
        lines.append("  no comparable telemetry rows" if compared == 0
                     else f"  {compared} percentile(s) compared, "
                          "all within threshold")
    return "\n".join([header] + lines), regressions
