"""Unified observability: event bus, packet spans, metrics, exporters.

The paper diagnoses its scheduler with ``perf sched`` traces and
per-second testbed counters (§4.1, Table 4); this package gives the
reproduction the same visibility:

* :mod:`repro.obs.bus` — a simulation-wide event bus every layer
  publishes to (scheduler, rings, backpressure, ECN, wakeup, monitor).
* :mod:`repro.obs.spans` — per-packet lifecycle spans with 1-in-N
  sampling, yielding per-hop queue-wait / service-time breakdowns.
* :mod:`repro.obs.registry` — named, labelled counters/gauges/histograms
  with a periodic snapshot sampler.
* :mod:`repro.obs.export` — Chrome/Perfetto trace-event JSON and
  Prometheus text exposition.
* :mod:`repro.obs.session` — ties the above together for CLI runs
  (``python -m repro run fig07 --trace out.json``).

Everything is opt-in: with no bus attached every publish site costs a
single ``is not None`` branch and allocates nothing.
"""

from repro.obs.bus import (  # noqa: F401
    BP_CLEAR,
    BP_RELINQUISH,
    BP_THROTTLE,
    BP_WATCH,
    BusEvent,
    ECN_MARK,
    EventBus,
    MONITOR_WEIGHTS,
    RING_DEQUEUE,
    RING_DROP,
    RING_ENQUEUE,
    RX_DISCARD,
    SCHED_DISPATCH,
    SCHED_SWITCH_OUT,
    SCHED_WAKE,
    WAKEUP_POST,
)
from repro.obs.export import (  # noqa: F401
    chrome_trace_events,
    render_prometheus,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.registry import Gauge, MetricsRegistry, RegistrySampler  # noqa: F401
from repro.obs.session import (  # noqa: F401
    ObsSession,
    activate_session,
    current_session,
    deactivate_session,
)
from repro.obs.spans import PacketSpan, SpanCollector  # noqa: F401
