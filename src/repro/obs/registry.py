"""A registry of named, labelled metrics.

Builds on the existing :mod:`repro.metrics` primitives — ``Counter`` for
monotonic totals, ``CycleHistogram`` for distributions, ``TimeSeries``
for snapshots — and adds the two things they lack: a namespace (metrics
are addressed by name + label set, Prometheus style) and a periodic
snapshot sampler so any registered scalar becomes a time series without
hand-wiring probes.

Gauges may wrap a callable, which lets the platform expose live state
(ring occupancy, throttle counts) with zero bookkeeping on the data
path: the value is only computed when the sampler or an exporter reads
it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.metrics.counters import Counter
from repro.metrics.histogram import CycleHistogram
from repro.metrics.timeseries import TimeSeries
from repro.sim.clock import MSEC
from repro.sim.engine import EventLoop
from repro.sim.process import PeriodicProcess

#: A metric's identity: name plus sorted (label, value) pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Gauge:
    """A point-in-time value: either set explicitly or read from a callable."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str = "", fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class CallbackCounter:
    """A monotonic counter whose value is read from a live callable.

    Like a ``fn``-backed :class:`Gauge` but registered (and exported) with
    Prometheus type ``counter`` — the right type for values that only ever
    grow, such as per-reason ring drop totals, so downstream tooling can
    apply ``rate()`` to them.
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str = "",
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.fn = fn

    @property
    def value(self) -> float:
        return float(self.fn()) if self.fn is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallbackCounter({self.name!r}, {self.value})"


class MetricsRegistry:
    """Named counters, gauges and histograms with Prometheus-style labels."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Tuple[str, object]] = {}
        self._help: Dict[str, str] = {}
        #: Snapshot series recorded by :class:`RegistrySampler`, keyed like
        #: the metrics themselves.
        self.snapshots: Dict[MetricKey, TimeSeries] = {}

    # ------------------------------------------------------------------
    # Registration (idempotent: same name+labels returns the same object)
    # ------------------------------------------------------------------
    def _register(self, kind: str, name: str, help: str,
                  labels: Dict[str, str], factory) -> object:
        key = _key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if existing[0] != kind:
                raise ValueError(
                    f"metric {name!r}{dict(key[1])!r} already registered "
                    f"as {existing[0]}, not {kind}"
                )
            return existing[1]
        if help:
            self._help.setdefault(name, help)
        metric = factory()
        self._metrics[key] = (kind, metric)
        return metric

    def counter(self, name: str, help: str = "",
                fn: Optional[Callable[[], float]] = None, **labels):
        """A monotonic counter; with ``fn`` it reads live state on demand
        (a :class:`CallbackCounter`) instead of accumulating via `add`."""
        if fn is not None:
            counter = self._register("counter", name, help, labels,
                                     lambda: CallbackCounter(name, fn))
            if isinstance(counter, CallbackCounter) and counter.fn is None:
                counter.fn = fn
            return counter
        return self._register("counter", name, help, labels,
                              lambda: Counter(name))

    def gauge(self, name: str, help: str = "",
              fn: Optional[Callable[[], float]] = None, **labels) -> Gauge:
        gauge = self._register("gauge", name, help, labels,
                               lambda: Gauge(name, fn))
        if fn is not None and gauge.fn is None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str, help: str = "", **labels) -> CycleHistogram:
        return self._register("histogram", name, help, labels,
                              lambda: CycleHistogram())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def collect(self) -> Iterator[Tuple[str, Dict[str, str], str, object]]:
        """Yield (name, labels, kind, metric) for every registered metric."""
        for (name, label_items), (kind, metric) in sorted(
                self._metrics.items()):
            yield name, dict(label_items), kind, metric

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def get(self, name: str, **labels) -> Optional[object]:
        entry = self._metrics.get(_key(name, labels))
        return entry[1] if entry is not None else None

    def scalar_value(self, name: str, **labels) -> float:
        """Current numeric value of a counter or gauge (KeyError if absent)."""
        entry = self._metrics[_key(name, labels)]
        kind, metric = entry
        if kind == "counter":
            return float(metric.value)
        if kind == "gauge":
            return float(metric.value)
        raise ValueError(f"{name!r} is a {kind}, not a scalar")

    def __len__(self) -> int:
        return len(self._metrics)


class RegistrySampler:
    """Periodically snapshots every scalar metric into a time series.

    The paper samples its testbed counters once per second (§4.1); the
    sampler defaults to the same cadence but accepts any period.
    """

    def __init__(self, loop: EventLoop, registry: MetricsRegistry,
                 period_ns: int = 1000 * MSEC,
                 label_filter: Optional[Dict[str, str]] = None):
        self.loop = loop
        self.registry = registry
        self.period_ns = int(period_ns)
        #: Only metrics whose labels include every (key, value) here are
        #: sampled.  A shared registry spanning several scenarios (each
        #: with its own loop starting at t=0) needs this so one
        #: scenario's sampler never appends out-of-order times to
        #: another scenario's series.
        self.label_filter = dict(label_filter) if label_filter else None
        self._proc = PeriodicProcess(loop, self.period_ns, self.sample,
                                     "obs-sampler")

    def start(self) -> None:
        self._proc.start()

    def stop(self) -> None:
        self._proc.stop()

    def sample(self) -> None:
        now = self.loop.now
        reg = self.registry
        flt = self.label_filter
        for name, labels, kind, metric in reg.collect():
            if kind == "histogram":
                continue
            if flt is not None and any(
                    labels.get(k) != v for k, v in flt.items()):
                continue
            key = _key(name, labels)
            series = reg.snapshots.get(key)
            if series is None:
                series = reg.snapshots[key] = TimeSeries(name)
            series.append(now, float(metric.value))
