"""Observability sessions: CLI-level wiring for experiment runs.

Experiment modules build their :class:`~repro.experiments.common.Scenario`
objects internally (a fig07 run constructs sixteen), so the CLI cannot
hand each one a bus directly.  Instead it *activates* an
:class:`ObsSession`; every Scenario checks for an active session before
starting its platform and attaches itself.  The session then owns:

* one :class:`~repro.obs.bus.EventBus` per scenario (distinct Perfetto
  process per scenario in the exported trace),
* one shared :class:`~repro.obs.spans.SpanCollector` (per-hop latency
  rows merge across scenarios; hop names carry the NF names),
* one shared :class:`~repro.obs.registry.MetricsRegistry` where each
  scenario registers its gauges under a ``scenario`` label, sampled
  periodically by a per-scenario :class:`RegistrySampler`.

``finalize()`` writes the requested artifacts and returns a printable
summary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.obs.bus import EventBus
from repro.obs.export import write_chrome_trace, write_prometheus
from repro.obs.registry import MetricsRegistry, RegistrySampler
from repro.obs.spans import SpanCollector
from repro.sim.clock import MSEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.common import Scenario
    from repro.platform.manager import NFManager

#: The module-level active session the Scenario runner consults.
_ACTIVE: Optional["ObsSession"] = None


def activate_session(session: "ObsSession") -> None:
    """Make ``session`` the one new scenarios attach to."""
    global _ACTIVE
    _ACTIVE = session


def deactivate_session() -> None:
    global _ACTIVE
    _ACTIVE = None


def current_session() -> Optional["ObsSession"]:
    return _ACTIVE


class ObsSession:
    """Collects observability artifacts across the scenarios of one run."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        span_sample_rate: int = 64,
        max_bus_events: int = 100_000,
        sample_period_ns: int = 100 * MSEC,
        stream_path: Optional[str] = None,
        stream_interval_ns: int = 100 * MSEC,
    ):
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.max_bus_events = int(max_bus_events)
        self.sample_period_ns = int(sample_period_ns)
        self.spans = SpanCollector(sample_rate=span_sample_rate)
        self.registry = MetricsRegistry()
        self.buses: List[Tuple[str, EventBus]] = []
        self._label_counts: Dict[str, int] = {}
        self._samplers: List[RegistrySampler] = []
        self.streamer = None
        if stream_path is not None:
            from repro.obs.stream import SnapshotStreamer

            self.streamer = SnapshotStreamer(stream_path,
                                             int(stream_interval_ns))

    # ------------------------------------------------------------------
    def _unique_label(self, base: str) -> str:
        n = self._label_counts.get(base, 0) + 1
        self._label_counts[base] = n
        return base if n == 1 else f"{base} #{n}"

    def attach(self, scenario: "Scenario") -> None:
        """Wire this session into a scenario about to run."""
        label = self._unique_label(
            f"{scenario.scheduler}/{scenario.features}")
        bus: Optional[EventBus] = None
        if self.trace_path is not None:
            bus = EventBus(scenario.loop, max_events=self.max_bus_events)
            self.buses.append((label, bus))
        latency = causality = None
        if self.streamer is not None:
            from repro.obs.causality import CausalityTracer
            from repro.obs.latency import FlowLatencyTracker

            latency, causality = FlowLatencyTracker(), CausalityTracer()
        scenario.manager.attach_observability(
            bus=bus, spans=self.spans, latency=latency, causality=causality)
        self.register_platform_metrics(scenario.manager, label)
        if self.streamer is not None:
            self.streamer.register(label, scenario.loop,
                                   registry=self.registry,
                                   latency=latency, causality=causality)
        sampler = RegistrySampler(scenario.loop, self.registry,
                                  period_ns=self.sample_period_ns,
                                  label_filter={"scenario": label})
        sampler.start()
        self._samplers.append(sampler)

    def attach_cluster(self, scenario) -> None:
        """Wire this session into a ClusterScenario about to run.

        Each host's platform registers its gauges under a
        ``cluster<N>/<sched>/<features>/<host>`` scenario label; the
        fabric links register under the bare cluster label.  One event
        bus spans the whole cluster (all hosts share one loop, so one
        Perfetto process with every host's cores is the honest render);
        link drop/ECN events ride the same bus.  Snapshot streaming is
        not wired for clusters — the streamer's per-scenario registration
        assumes one manager per label.
        """
        topology = scenario.topology
        label = self._unique_label(
            f"cluster{len(topology.hosts)}/"
            f"{scenario.scheduler}/{scenario.features}")
        bus: Optional[EventBus] = None
        if self.trace_path is not None:
            bus = EventBus(scenario.loop, max_events=self.max_bus_events)
            self.buses.append((label, bus))
        for host in topology.hosts:
            host.manager.attach_observability(bus=bus, spans=self.spans)
            self.register_platform_metrics(
                host.manager, f"{label}/{host.name}")
            sampler = RegistrySampler(
                scenario.loop, self.registry,
                period_ns=self.sample_period_ns,
                label_filter={"scenario": f"{label}/{host.name}"})
            sampler.start()
            self._samplers.append(sampler)
        if bus is not None:
            for link in topology.links:
                link.bus = bus
        self.register_link_metrics(topology.links, label)
        sampler = RegistrySampler(scenario.loop, self.registry,
                                  period_ns=self.sample_period_ns,
                                  label_filter={"scenario": label})
        sampler.start()
        self._samplers.append(sampler)

    def register_link_metrics(self, links, scenario: str) -> None:
        """Expose fabric-link counters as labelled metrics.

        The ``link`` label carries the raw link name (``ingress->h1``,
        ``h0.nic->h1``); the Prometheus exporter escapes label values, so
        arbitrary host/link names survive the text format round-trip.
        """
        reg = self.registry
        for link in links:
            reg.gauge("repro_link_in_flight",
                      "packets serialising or propagating on the wire",
                      fn=(lambda l=link: l.in_flight),
                      link=link.name, scenario=scenario)
            reg.counter("repro_link_carried_packets_total",
                        "packets accepted onto the link",
                        fn=(lambda l=link: l.carried_packets),
                        link=link.name, scenario=scenario)
            reg.counter("repro_link_carried_bytes_total",
                        "payload bytes accepted onto the link",
                        fn=(lambda l=link: l.carried_bytes),
                        link=link.name, scenario=scenario)
            reg.counter("repro_link_dropped_packets_total",
                        "packets dropped at the link queue cap",
                        fn=(lambda l=link: l.dropped_packets),
                        link=link.name, scenario=scenario)
            reg.counter("repro_link_ecn_marked_total",
                        "packets CE-marked by the link's ECN threshold",
                        fn=(lambda l=link: l.ecn_marked),
                        link=link.name, scenario=scenario)

    def register_platform_metrics(self, mgr: "NFManager",
                                  scenario: str) -> None:
        """Expose the platform's live counters as labelled gauges.

        Gauges wrap callables reading the live objects, so registration
        costs nothing on the data path; the sampler and the Prometheus
        exporter pull values on demand.
        """
        reg = self.registry
        for nf in mgr.nfs:
            reg.gauge("repro_nf_processed_packets",
                      "packets processed by the NF",
                      fn=(lambda nf=nf: nf.processed_packets),
                      nf=nf.name, scenario=scenario)
            reg.gauge("repro_nf_wasted_packets",
                      "NF output later dropped downstream",
                      fn=(lambda nf=nf: nf.wasted_processed),
                      nf=nf.name, scenario=scenario)
            reg.gauge("repro_nf_rx_ring_depth",
                      "instantaneous Rx ring occupancy",
                      fn=(lambda nf=nf: len(nf.rx_ring)),
                      nf=nf.name, scenario=scenario)
            # Drop totals are monotonic: export them with Prometheus type
            # ``counter`` (not gauge) so consumers can rate() them.
            reg.counter("repro_nf_rx_ring_drops_total",
                        "arrivals dropped at the NF Rx ring",
                        fn=(lambda nf=nf: nf.rx_ring.dropped_total),
                        nf=nf.name, scenario=scenario)
            from repro.platform.ring import DROP_REASONS
            for reason in DROP_REASONS:
                reg.counter("repro_nf_rx_ring_drops_by_reason_total",
                            "Rx-ring drops split by cause (congestion vs "
                            "failure shedding)",
                            fn=(lambda nf=nf, r=reason:
                                nf.rx_ring.drops_by_reason.get(r, 0)),
                            nf=nf.name, reason=reason, scenario=scenario)
            reg.gauge("repro_nf_restarts",
                      "recovery-policy restarts of this NF",
                      fn=(lambda nf=nf: nf.restarts),
                      nf=nf.name, scenario=scenario)
        for chain in mgr.chains.values():
            reg.gauge("repro_chain_completed_packets",
                      "packets that traversed the full chain",
                      fn=(lambda c=chain: c.completed),
                      chain=chain.name, scenario=scenario)
            reg.gauge("repro_chain_entry_discards",
                      "packets shed at system entry by backpressure",
                      fn=(lambda c=chain: c.entry_discards),
                      chain=chain.name, scenario=scenario)
            reg.gauge("repro_chain_wasted_packets",
                      "packets dropped after upstream processing",
                      fn=(lambda c=chain: c.wasted_drops),
                      chain=chain.name, scenario=scenario)
        for core_id, core in sorted(mgr.cores.items()):
            reg.gauge("repro_core_busy_seconds",
                      "simulated seconds the core spent on task work",
                      fn=(lambda c=core: c.stats.busy_ns / 1e9),
                      core=str(core_id), scenario=scenario)
            reg.gauge("repro_core_dispatches",
                      "scheduler dispatch count",
                      fn=(lambda c=core: c.stats.dispatches),
                      core=str(core_id), scenario=scenario)
        # Event-loop hygiene: queue traffic and how well lazy cancellation
        # and the periodic fast path are containing it.  The gauges are
        # implementation-neutral (heap and timer-wheel engines share the
        # counter surface); the ``engine`` label says which one ran.
        loop = mgr.loop
        engine = loop.impl
        reg.gauge("repro_loop_event_pushes",
                  "event inserts, periodic re-arms included",
                  fn=(lambda l=loop: l.pushes),
                  scenario=scenario, engine=engine)
        reg.gauge("repro_loop_event_pops",
                  "events fired",
                  fn=(lambda l=loop: l.pops),
                  scenario=scenario, engine=engine)
        reg.gauge("repro_loop_lazy_cancel_skips",
                  "cancelled entries discarded lazily",
                  fn=(lambda l=loop: l.lazy_cancel_skips),
                  scenario=scenario, engine=engine)
        reg.gauge("repro_loop_compactions",
                  "in-place rebuilds (heap compactions / wheel sweeps)",
                  fn=(lambda l=loop: l.compactions),
                  scenario=scenario, engine=engine)
        reg.gauge("repro_loop_cascades",
                  "timer-wheel bucket redistributions (0 on the heap)",
                  fn=(lambda l=loop: l.cascades),
                  scenario=scenario, engine=engine)
        reg.gauge("repro_loop_peak_pending",
                  "high-water mark of pending scheduled events",
                  fn=(lambda l=loop: l.peak_heap),
                  scenario=scenario, engine=engine)
        # Ring coalescing effectiveness, aggregated over every NF ring:
        # hit rate near 1.0 means bursty arrivals are merging into single
        # segments instead of allocating per-enqueue.
        rings = [r for nf in mgr.nfs for r in (nf.rx_ring, nf.tx_ring)]
        rings.append(mgr.nic.rx_ring)

        def _coalesce_rate(rs=tuple(rings)) -> float:
            hits = sum(r.coalesce_hits for r in rs)
            total = hits + sum(r.coalesce_misses for r in rs)
            return hits / total if total else 0.0

        reg.gauge("repro_ring_coalesce_hits",
                  "enqueues merged into an existing tail segment",
                  fn=(lambda rs=tuple(rings):
                      sum(r.coalesce_hits for r in rs)),
                  scenario=scenario)
        reg.gauge("repro_ring_coalesce_misses",
                  "enqueues that appended a new segment",
                  fn=(lambda rs=tuple(rings):
                      sum(r.coalesce_misses for r in rs)),
                  scenario=scenario)
        reg.gauge("repro_ring_coalesce_hit_rate",
                  "fraction of enqueues absorbed by tail merging",
                  fn=_coalesce_rate, scenario=scenario)

    # ------------------------------------------------------------------
    def finalize(self) -> str:
        """Write requested artifacts; returns a printable summary."""
        lines: List[str] = []
        if self.streamer is not None:
            lines.append(self.streamer.finalize())
        if self.trace_path is not None:
            write_chrome_trace(self.trace_path, self.buses)
            total = sum(len(bus) for _l, bus in self.buses)
            dropped = sum(bus.dropped for _l, bus in self.buses)
            note = f" ({dropped} past the bus cap not recorded)" \
                if dropped else ""
            lines.append(
                f"[obs] wrote {total} trace events from "
                f"{len(self.buses)} scenario(s) to {self.trace_path}{note}"
            )
        if self.metrics_path is not None:
            write_prometheus(self.registry, self.metrics_path)
            lines.append(
                f"[obs] wrote {len(self.registry)} metrics to "
                f"{self.metrics_path}"
            )
        if len(self.spans):
            lines.append(self.spans.render_report())
        elif self.spans.started:
            lines.append(
                f"[obs] {self.spans.started} spans started but none "
                f"completed (packets still queued or dropped)"
            )
        return "\n".join(lines)
