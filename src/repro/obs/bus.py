"""The simulation-wide event bus.

One :class:`EventBus` per platform instance collects timestamped events
from every layer — scheduler wake/dispatch/switch, ring enqueue/dequeue/
drop, backpressure state transitions, ECN marks, wakeup posts, monitor
weight writes.  Subscribers (the Perfetto exporter, a
:class:`~repro.sched.tracing.SchedTracer` adapter, tests) receive each
event synchronously in publish order, which the deterministic event loop
makes fully reproducible run-over-run.

The bus is opt-in.  Publish sites hold a ``bus`` reference that is
``None`` by default, so the disabled fast path is a single branch::

    if self.bus is not None:
        self.bus.publish(RING_DROP, self.name, count=dropped)

Recording is bounded by ``max_events``; past the cap events still reach
subscribers but are no longer retained, and ``dropped`` counts how many
were discarded so downstream reports cannot silently lie.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.engine import EventLoop

# ---------------------------------------------------------------------------
# Event taxonomy.  Kinds are dotted ``layer.action`` strings; the layer
# prefix groups events into Perfetto tracks and lets subscribers filter
# with a single startswith().
# ---------------------------------------------------------------------------
SCHED_WAKE = "sched.wake"            # task became runnable (semaphore post)
SCHED_DISPATCH = "sched.dispatch"    # task picked and granted a slice
SCHED_SWITCH_OUT = "sched.switch_out"  # task left the CPU (detail=outcome)

RING_ENQUEUE = "ring.enqueue"        # packets appended to a ring
RING_DEQUEUE = "ring.dequeue"        # packets removed from a ring
RING_DROP = "ring.drop"              # packets lost to a full ring

BP_WATCH = "bp.watch"                # NF entered the watch list
BP_THROTTLE = "bp.throttle"          # NF entered packet-throttle state
BP_CLEAR = "bp.clear"                # throttle lifted (queue drained)
BP_RELINQUISH = "bp.relinquish"      # relinquish flag toggled on an NF

ECN_MARK = "ecn.mark"                # CE marks applied to a flow

WAKEUP_POST = "wakeup.post"          # Wakeup subsystem posted a semaphore
RX_DISCARD = "rx.discard"            # arrivals shed at entry (Figure 5)
MONITOR_WEIGHTS = "monitor.weights"  # cgroup cpu.shares written

FAULT_INJECT = "fault.inject"        # a planned fault fired (kind, target)
FAULT_HEAL = "fault.heal"            # a transient fault's duration elapsed
FAULT_DETECT = "fault.detect"        # the watchdog flagged a stuck NF
FAULT_RECOVER = "fault.recover"      # a recovery policy restored service
FAULT_GIVEUP = "fault.giveup"        # fail-the-chain: no recovery attempted


class BusEvent:
    """One published event: when, what, who, and free-form fields."""

    __slots__ = ("time_ns", "kind", "source", "args")

    def __init__(self, time_ns: int, kind: str, source: str, args: Dict):
        self.time_ns = time_ns
        self.kind = kind
        self.source = source
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BusEvent({self.time_ns}, {self.kind!r}, {self.source!r}, "
            f"{self.args!r})"
        )


class EventBus:
    """Collects :class:`BusEvent` records and fans them out to subscribers."""

    def __init__(self, loop: EventLoop, max_events: int = 500_000,
                 record: bool = True):
        self.loop = loop
        self.max_events = int(max_events)
        #: When False the bus only dispatches to subscribers (used by the
        #: SchedTracer adapter, which keeps its own bounded store).
        self.record = record
        #: True when publishing can have any effect (recording or at least
        #: one subscriber).  Hot publish sites check this before paying
        #: for the call: ``if bus is not None and bus.active:`` — so an
        #: attached-but-inert bus stays within the overhead budget.
        self.active = record
        self.events: List[BusEvent] = []
        self.dropped = 0
        self.counts: Dict[str, int] = {}
        self.subscribers: List[Callable[[BusEvent], None]] = []

    # ------------------------------------------------------------------
    def publish(self, kind: str, source: str = "", **args) -> None:
        """Record an event at the loop's current time and notify subscribers."""
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        if not self.active:
            # Inert bus (counts only): skip event construction entirely.
            return
        ev = BusEvent(self.loop.now, kind, source, args)
        if self.record:
            if len(self.events) < self.max_events:
                self.events.append(ev)
            else:
                self.dropped += 1
        for fn in self.subscribers:
            fn(ev)

    def subscribe(self, fn: Callable[[BusEvent], None]) -> None:
        self.subscribers.append(fn)
        self.active = True

    def adopt_subscribers(self, other: Optional["EventBus"]) -> None:
        """Carry subscribers over from a bus this one replaces.

        A core may have grown a private bus (via its ``tracer`` property)
        before the manager attached the platform-wide one; the private
        bus's subscribers keep working on the shared bus.
        """
        if other is None or other is self:
            return
        self.subscribers.extend(other.subscribers)
        if self.subscribers:
            self.active = True

    # ------------------------------------------------------------------
    def kinds(self) -> List[str]:
        """Distinct kinds published so far (sorted)."""
        return sorted(self.counts)

    def of_kind(self, kind: str) -> List[BusEvent]:
        """Recorded events of one kind, in publish order."""
        return [ev for ev in self.events if ev.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventBus({len(self.events)} events, dropped={self.dropped}, "
            f"subscribers={len(self.subscribers)})"
        )
