"""Per-packet lifecycle spans with 1-in-N sampling.

A span follows one sampled packet from its arrival at the NIC through
the Rx thread, every NF of its service chain (recording, per hop, how
long it waited in the NF's Rx ring and how long the NF spent processing
it), the NF Tx rings, and finally out the NIC.  The per-hop
percentile breakdown this yields is the reproduction's answer to the
paper's Table 4 latency attribution — it shows *where* in the chain
time goes, not just the end-to-end total the chain histogram already
tracks.

Sampling is deterministic, not random: the collector counts packets
offered at the Rx thread and starts a span on every ``sample_rate``-th
packet, so two runs with the same seed sample the same packets and
produce identical reports.  A sampled :class:`PacketSpan` rides on the
:class:`~repro.platform.packet.PacketSegment` carrying its packet (the
``span`` slot); rings move it hop to hop, so the untraced fast path
never looks at it beyond a ``span is not None`` branch.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.metrics.report import render_table


class SpanHop:
    """One hop of a span: where, queue wait, and service time (ns)."""

    __slots__ = ("name", "wait_ns", "service_ns")

    def __init__(self, name: str, wait_ns: float, service_ns: float = 0.0):
        self.name = name
        self.wait_ns = float(wait_ns)
        self.service_ns = float(service_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanHop({self.name!r}, wait={self.wait_ns:.0f}ns, "
            f"svc={self.service_ns:.0f}ns)"
        )


class PacketSpan:
    """The recorded lifecycle of one sampled packet."""

    __slots__ = ("flow_id", "origin_ns", "end_ns", "hops", "_collector")

    def __init__(self, collector: "SpanCollector", flow_id: str,
                 origin_ns: int):
        self._collector = collector
        self.flow_id = flow_id
        self.origin_ns = int(origin_ns)
        self.end_ns: Optional[int] = None
        self.hops: List[SpanHop] = []

    def record_hop(self, name: str, wait_ns: float,
                   service_ns: float = 0.0) -> None:
        self.hops.append(SpanHop(name, wait_ns, service_ns))

    def finish(self, now_ns: int) -> None:
        """The packet left the system (NIC egress)."""
        self.end_ns = int(now_ns)
        self._collector._finished(self)

    @property
    def total_ns(self) -> float:
        if self.end_ns is None:
            return 0.0
        return float(self.end_ns - self.origin_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end_ns is None else f"{self.total_ns:.0f}ns"
        return f"PacketSpan({self.flow_id!r}, {len(self.hops)} hops, {state})"


def _percentile(sorted_values: List[float], p: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(len(sorted_values) * p / 100.0))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class SpanCollector:
    """Starts, collects and summarises packet spans."""

    def __init__(self, sample_rate: int = 64, max_spans: int = 20_000):
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        self.sample_rate = int(sample_rate)
        self.max_spans = int(max_spans)
        self.started = 0
        self.dropped = 0          # spans past max_spans (not recorded)
        self.spans: List[PacketSpan] = []
        self._seen = 0            # packets offered since the last sample

    # ------------------------------------------------------------------
    # Sampling (called by the Rx thread)
    # ------------------------------------------------------------------
    def maybe_start(self, flow_id: str, count: int,
                    origin_ns: int) -> Optional[PacketSpan]:
        """Sample 1 packet in ``sample_rate``; returns a span or None.

        ``count`` advances the deterministic packet counter by the whole
        segment; at most one span is started per segment (spans mark the
        segment's head packet).
        """
        self._seen += count
        if self._seen < self.sample_rate:
            return None
        self._seen %= self.sample_rate
        self.started += 1
        # ``_open`` already counts the span we are about to hand out.
        if len(self.spans) + self._open > self.max_spans:
            self.dropped += 1
            return None
        return PacketSpan(self, flow_id, origin_ns)

    @property
    def _open(self) -> int:
        """Spans started and not yet finished or dropped."""
        return self.started - self.dropped - len(self.spans)

    def _finished(self, span: PacketSpan) -> None:
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def hop_stats(self) -> List[Tuple[str, int, float, float, float, float]]:
        """Per-hop rows: (hop, n, wait p50, wait p95, svc p50, svc p95), ns.

        Hops are ordered by first appearance along the sampled packets'
        paths (Rx first, then each NF in chain order).
        """
        waits: Dict[str, List[float]] = {}
        services: Dict[str, List[float]] = {}
        order: List[str] = []
        for span in self.spans:
            for hop in span.hops:
                if hop.name not in waits:
                    waits[hop.name] = []
                    services[hop.name] = []
                    order.append(hop.name)
                waits[hop.name].append(hop.wait_ns)
                services[hop.name].append(hop.service_ns)
        rows = []
        for name in order:
            w = sorted(waits[name])
            s = sorted(services[name])
            rows.append((
                name, len(w),
                _percentile(w, 50), _percentile(w, 95),
                _percentile(s, 50), _percentile(s, 95),
            ))
        return rows

    def render_report(self) -> str:
        """The per-hop latency breakdown table (µs)."""
        rows = [
            [name, n,
             round(w50 / 1e3, 3), round(w95 / 1e3, 3),
             round(s50 / 1e3, 3), round(s95 / 1e3, 3)]
            for name, n, w50, w95, s50, s95 in self.hop_stats()
        ]
        totals = sorted(s.total_ns for s in self.spans)
        title = (
            f"per-hop latency breakdown — {len(self.spans)} spans "
            f"(1 in {self.sample_rate}), end-to-end p50 "
            f"{_percentile(totals, 50) / 1e3:.1f}us / p95 "
            f"{_percentile(totals, 95) / 1e3:.1f}us"
        )
        if self.dropped:
            title += f", {self.dropped} spans dropped at cap"
        return render_table(
            ["hop", "spans", "wait p50 us", "wait p95 us",
             "svc p50 us", "svc p95 us"],
            rows, title=title,
        )

    def __len__(self) -> int:
        return len(self.spans)
