"""Backpressure causality attribution: *who caused this queueing?*

The backpressure controller (Figure 4) already tells us *that* a chain
was throttled; this tracer links every throttle episode to the **culprit
NF** whose congested Rx ring triggered it and charges the consequences
back to it:

* **Throttle-induced delay per flow class** — for every delivered
  segment, the exact overlap (integer ns) between the packet's sojourn
  interval ``[origin_ns, delivery_ns]`` and the chain's throttle
  episodes, attributed to each episode's culprit.  This answers "which
  NF's throttling added how much latency to which flow" — the view the
  SLO-aware scheduler work needs (*Scheduling Network Function Chains
  Under Sub-Millisecond Latency SLOs*).
* **Packets shed at entry** per culprit (the early discards the culprit's
  throttle caused, which saved upstream work but cost goodput).
* **Wasted drops** at each congested ring (work upstream NFs already
  spent that the full ring destroyed).
* **Relinquish stalls** — how long each upstream NF was evicted from the
  CPU by the relinquish flag, and how long it took the scheduler to
  re-dispatch it after release (the "resume delay").

Episodes per chain are sequential and non-overlapping by construction:
``chain.throttled`` is a single-cause boolean, so at most one episode is
open per chain at any time.  All bookkeeping is integer nanoseconds and
purely observational — simulation state, timing and RNG streams are
untouched, so digests are identical with the tracer on or off.
"""

from __future__ import annotations

#: Digest-safety contract marker, verified by ``repro check --deep``
#: (SIM603) against ``repro.check.registry.MARKED_MODULES``.
__digest_safety__ = "digest-invisible: backpressure attribution telemetry"

from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Tuple

#: Soft cap on retained episodes per chain.  Old *closed* episodes are
#: folded into aggregate counters once in-flight packets can no longer
#: overlap them; the cap only guards pathological runs.
_MAX_EPISODES_PER_CHAIN = 8192

#: Staged ``(origin, delivery, count)`` triples per (chain, flow) before
#: attribution is folded into ``induced`` (bounds staging memory).
_MAX_PENDING_DELIVERIES = 2048


class _ChainLog:
    """Closed throttle episodes of one chain as parallel arrays.

    ``on_delivery`` runs for every delivered segment, and a packet's
    sojourn can overlap dozens of episodes; the arrays support an
    O(log n) answer instead of a per-episode walk:

    * ``ends`` is sorted (episodes are sequential), so ``bisect`` finds
      the oldest episode a sojourn overlaps;
    * ``cum[i]`` is the running total of episode durations through ``i``,
      so a span of fully-covered episodes is charged with one subtraction;
    * ``run_start[i]`` is the index where the culprit run containing
      ``i`` begins — consecutive episodes almost always blame the same
      bottleneck NF, so per-culprit charging visits runs, not episodes.
    """

    __slots__ = ("starts", "ends", "culprits", "cum", "run_start")

    def __init__(self):
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.culprits: List[str] = []
        self.cum: List[int] = []
        self.run_start: List[int] = []


class CausalityTracer:
    """Accumulates backpressure cause → effect attribution."""

    #: Per-(chain, flow) staged-delivery bound hot callers drain at.
    _PENDING_LIMIT = _MAX_PENDING_DELIVERIES

    def __init__(self):
        #: chain name -> closed-episode log (time-ordered).
        self._closed: Dict[str, _ChainLog] = {}
        #: chain name -> open episode as ``(start_ns, culprit)``
        #: (invariant: at most one; it is always the newest).
        self._open: Dict[str, Tuple[int, str]] = {}
        #: culprit NF -> number of throttle episodes it opened.
        self.episode_counts: Dict[str, int] = {}
        #: culprit NF -> total ns its episodes kept chains throttled.
        self.throttle_ns: Dict[str, int] = {}
        #: (flow id, culprit NF) -> packet-weighted induced delay (pkt·ns).
        self.induced: Dict[Tuple[str, str], int] = {}
        #: (flow id, culprit NF) -> packets shed at entry during episodes.
        self.shed: Dict[Tuple[str, str], int] = {}
        #: congested NF -> packets destroyed at its full ring (wasted work).
        self.wasted: Dict[str, int] = {}
        #: NF -> [stall count, total stalled ns] from the relinquish flag.
        self.relinquish: Dict[str, List[int]] = {}
        self._relinquish_since: Dict[str, int] = {}
        #: NF -> [resume count, total release->dispatch delay ns].
        self.resume: Dict[str, List[int]] = {}
        self._pending_resume: Dict[str, int] = {}
        #: chain -> flow -> staged ``(origin_ns, delivery_ns, count)``
        #: triples awaiting attribution.  Attribution only needs the
        #: episode set *clipped at the delivery time*, and episodes that
        #: open later cannot overlap an earlier sojourn, so charging can
        #: be deferred without changing a single attributed nanosecond —
        #: the hot path is one ``list.append``.
        self._pending_deliv: Dict[str, Dict[str, List[Tuple[int, int,
                                                            int]]]] = {}
        #: Episodes folded away by the per-chain cap (reporting only).
        self.pruned_episodes = 0

    # ------------------------------------------------------------------
    # Backpressure-controller hooks
    # ------------------------------------------------------------------
    def on_throttle(self, culprit: str, chain_name: str, now_ns: int) -> None:
        """``chain_name`` entered packet-throttle because of ``culprit``."""
        if chain_name in self._open:
            return  # defensive: chain.throttled is single-cause
        self._open[chain_name] = (int(now_ns), culprit)
        self.episode_counts[culprit] = self.episode_counts.get(culprit, 0) + 1

    def on_clear(self, culprit: str, chain_name: str, now_ns: int) -> None:
        """``chain_name``'s throttle (caused by ``culprit``) was lifted."""
        ep = self._open.get(chain_name)
        if ep is None or ep[1] != culprit:
            return
        del self._open[chain_name]
        start_ns = ep[0]
        end_ns = int(now_ns)
        self.throttle_ns[culprit] = (
            self.throttle_ns.get(culprit, 0) + end_ns - start_ns)
        log = self._closed.get(chain_name)
        if log is None:
            log = self._closed[chain_name] = _ChainLog()
        n = len(log.ends)
        if n and log.culprits[-1] == culprit:
            log.run_start.append(log.run_start[-1])
        else:
            log.run_start.append(n)
        log.starts.append(start_ns)
        log.ends.append(end_ns)
        log.culprits.append(culprit)
        log.cum.append((log.cum[-1] if n else 0) + end_ns - start_ns)
        if n + 1 > _MAX_EPISODES_PER_CHAIN:
            # Staged deliveries may reference the episodes about to be
            # folded away; attribute them first.
            by_flow = self._pending_deliv.get(chain_name)
            if by_flow:
                self._drain_chain(chain_name, by_flow)
            drop = (n + 1) // 2
            self.pruned_episodes += drop
            base = log.cum[drop - 1]
            log.starts = log.starts[drop:]
            log.ends = log.ends[drop:]
            log.culprits = log.culprits[drop:]
            log.cum = [c - base for c in log.cum[drop:]]
            log.run_start = [r - drop if r > drop else 0
                             for r in log.run_start[drop:]]

    def on_relinquish(self, nf_name: str, on: bool, now_ns: int) -> None:
        """The relinquish flag flipped for an upstream NF."""
        if on:
            self._relinquish_since[nf_name] = int(now_ns)
            self._pending_resume.pop(nf_name, None)
            return
        since = self._relinquish_since.pop(nf_name, None)
        if since is None:
            return
        entry = self.relinquish.setdefault(nf_name, [0, 0])
        entry[0] += 1
        entry[1] += int(now_ns) - since
        # Release -> next dispatch gap, closed by on_dispatch().
        self._pending_resume[nf_name] = int(now_ns)

    # ------------------------------------------------------------------
    # Scheduler hook
    # ------------------------------------------------------------------
    def on_dispatch(self, task_name: str, now_ns: int) -> None:
        """A task was dispatched; closes a pending relinquish-resume gap."""
        pending = self._pending_resume
        if not pending:
            return
        released = pending.pop(task_name, None)
        if released is None:
            return
        entry = self.resume.setdefault(task_name, [0, 0])
        entry[0] += 1
        entry[1] += int(now_ns) - released

    # ------------------------------------------------------------------
    # Data-path hooks
    # ------------------------------------------------------------------
    def on_entry_discard(self, chain_name: str, flow_id: str,
                         count: int) -> None:
        """``count`` arrivals for a throttled chain were shed at entry."""
        ep = self._open.get(chain_name)
        culprit = ep[1] if ep is not None else "?"
        key = (flow_id, culprit)
        self.shed[key] = self.shed.get(key, 0) + count

    def on_wasted_drop(self, congested_nf: str, count: int) -> None:
        """``count`` already-processed packets died at a full ring."""
        self.wasted[congested_nf] = self.wasted.get(congested_nf, 0) + count

    def on_delivery(self, flow_id: str, chain_name: str, origin_ns: int,
                    now_ns: int, count: int) -> None:
        """Attribute throttle overlap of a delivered segment's sojourn."""
        self._charge(chain_name, flow_id,
                     ((int(origin_ns), int(now_ns), int(count)),))

    def delivery_staging(self, flow_id: str,
                         chain_name: str) -> List[Tuple[int, int, int]]:
        """The staged-delivery list for ``(chain, flow)``.

        Hot callers (``TxThread._route``) fetch this once per flow and
        append ``(origin_ns, delivery_ns, count)`` triples inline; they
        should call :meth:`drain_deliveries` when the list reaches
        ``_MAX_PENDING_DELIVERIES`` entries.  Deferred attribution is
        bit-identical to immediate attribution: a sojourn's overlap with
        the episode history clipped at its own delivery time is
        unaffected by episodes that open afterwards.
        """
        by_flow = self._pending_deliv.get(chain_name)
        if by_flow is None:
            by_flow = self._pending_deliv[chain_name] = {}
        lst = by_flow.get(flow_id)
        if lst is None:
            lst = by_flow[flow_id] = []
        return lst

    def drain_deliveries(self) -> None:
        """Fold all staged deliveries into :attr:`induced`."""
        for chain_name, by_flow in self._pending_deliv.items():
            self._drain_chain(chain_name, by_flow)

    def _drain_chain(self, chain_name: str,
                     by_flow: Dict[str, List[Tuple[int, int, int]]]) -> None:
        for flow_id, lst in by_flow.items():
            if lst:
                self._charge(chain_name, flow_id, lst)
                lst.clear()

    def _charge(self, chain_name: str, flow_id: str, triples) -> None:
        """Attribute each ``(origin, delivery, count)`` sojourn's overlap
        with the chain's throttle episodes — clipped at both ends, so the
        result is independent of when (and in what order) it runs."""
        open_ep = self._open.get(chain_name)
        open_start = open_culprit = None
        if open_ep is not None:
            open_start, open_culprit = open_ep
        log = self._closed.get(chain_name)
        if log is not None:
            starts = log.starts
            ends = log.ends
            cum = log.cum
            run_start = log.run_start
            culprits = log.culprits
            n = len(ends)
            last_end = ends[n - 1] if n else 0
        else:
            n = 0
            last_end = 0
        sums: Dict[str, int] = {}
        open_total = 0
        for origin_ns, now_ns, count in triples:
            if open_start is not None and open_start < now_ns:
                lo = open_start if open_start > origin_ns else origin_ns
                if now_ns > lo:
                    open_total += (now_ns - lo) * count
            if last_end <= origin_ns:
                continue
            i = bisect_right(ends, origin_ns)
            # Episodes starting at/after the delivery cannot overlap it;
            # the newest included one may still need clipping at
            # ``now_ns`` (only when charging lags behind the clock —
            # live drains always see ``now_ns`` past every closed end).
            if now_ns >= last_end:
                j0 = n
                end_clip = 0
            else:
                j0 = bisect_left(starts, now_ns)
                if j0 <= i:
                    continue
                end_clip = ends[j0 - 1] - now_ns
            j = j0
            while j > i:
                a = run_start[j - 1]
                if a < i:
                    a = i
                total = cum[j - 1] - (cum[a - 1] if a else 0)
                if a == i:
                    clip = origin_ns - starts[i]
                    if clip > 0:
                        total -= clip
                if j == j0 and end_clip > 0:
                    total -= end_clip
                if total > 0:
                    culprit = culprits[j - 1]
                    sums[culprit] = sums.get(culprit, 0) + total * count
                j = a
        if open_total:
            sums[open_culprit] = sums.get(open_culprit, 0) + open_total
        if sums:
            induced = self.induced
            for culprit, total in sums.items():
                key = (flow_id, culprit)
                induced[key] = induced.get(key, 0) + total

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def summary(self, now_ns: int) -> Dict[str, Any]:
        """JSON-safe attribution state; open episodes are measured to
        ``now_ns`` without being closed."""
        self.drain_deliveries()
        throttle_ns = dict(self.throttle_ns)
        open_by_culprit: Dict[str, int] = {}
        for chain_name, (start_ns, culprit) in sorted(self._open.items()):
            held = int(now_ns) - start_ns
            if held > 0:
                throttle_ns[culprit] = throttle_ns.get(culprit, 0) + held
            open_by_culprit[culprit] = open_by_culprit.get(culprit, 0) + 1
        culprits: Dict[str, Any] = {}
        for name in sorted(set(list(self.episode_counts) +
                               list(throttle_ns))):
            culprits[name] = {
                "episodes": self.episode_counts.get(name, 0),
                "open_episodes": open_by_culprit.get(name, 0),
                "throttle_ns": throttle_ns.get(name, 0),
            }
        return {
            "culprits": culprits,
            "induced_pkt_ns": {
                f"{flow}→{culprit}": ns
                for (flow, culprit), ns in sorted(self.induced.items())},
            "shed_packets": {
                f"{flow}→{culprit}": n
                for (flow, culprit), n in sorted(self.shed.items())},
            "wasted_drops": dict(sorted(self.wasted.items())),
            "relinquish": {
                name: {"stalls": entry[0], "stalled_ns": entry[1]}
                for name, entry in sorted(self.relinquish.items())},
            "resume": {
                name: {"resumes": entry[0], "delay_ns": entry[1]}
                for name, entry in sorted(self.resume.items())},
            "pruned_episodes": self.pruned_episodes,
        }


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
def attribution_rows(causality: Dict[str, Any]) -> List[list]:
    """Per-culprit rows ``[nf, episodes, throttle_ms, induced_pkt_ms,
    shed_pkts, wasted_drops]`` from a :meth:`CausalityTracer.summary`
    dict (empty list when there was no backpressure activity)."""
    culprits = causality.get("culprits", {}) if causality else {}
    induced = causality.get("induced_pkt_ns", {}) if causality else {}
    shed = causality.get("shed_packets", {}) if causality else {}
    wasted = causality.get("wasted_drops", {}) if causality else {}

    by_culprit_induced: Dict[str, int] = {}
    for key, ns in induced.items():
        culprit = key.rsplit("→", 1)[-1]
        by_culprit_induced[culprit] = by_culprit_induced.get(culprit, 0) + ns
    by_culprit_shed: Dict[str, int] = {}
    for key, n in shed.items():
        culprit = key.rsplit("→", 1)[-1]
        by_culprit_shed[culprit] = by_culprit_shed.get(culprit, 0) + n

    names: List[str] = sorted(set(list(culprits) + list(by_culprit_induced)
                                  + list(by_culprit_shed) + list(wasted)))
    rows: List[list] = []
    for name in names:
        info = culprits.get(name, {})
        rows.append([
            name,
            info.get("episodes", 0),
            round(info.get("throttle_ns", 0) / 1e6, 3),
            round(by_culprit_induced.get(name, 0) / 1e6, 3),
            by_culprit_shed.get(name, 0),
            wasted.get(name, 0),
        ])
    return rows


#: The column headers matching :func:`attribution_rows`.
ATTRIBUTION_HEADERS = ["culprit NF", "episodes", "throttle ms",
                       "induced pkt·ms", "shed pkts", "wasted drops"]


def render_attribution_table(causality: Dict[str, Any], title: str) -> str:
    """Per-NF throttle attribution table for experiment reports."""
    from repro.metrics.report import render_table

    rows = attribution_rows(causality)
    if not rows:
        rows = [["(no backpressure activity)", 0, 0.0, 0.0, 0, 0]]
    return render_table(ATTRIBUTION_HEADERS, rows, title=title)


def render_induced_by_flow(causality: Dict[str, Any], title: str) -> str:
    """Flow-class view: induced delay each culprit added to each flow."""
    from repro.metrics.report import render_table

    induced = causality.get("induced_pkt_ns", {}) if causality else {}
    shed = causality.get("shed_packets", {}) if causality else {}
    keys = sorted(set(list(induced) + list(shed)))
    rows: List[list] = []
    for key in keys:
        flow, culprit = key.rsplit("→", 1)
        rows.append([flow, culprit,
                     round(induced.get(key, 0) / 1e6, 3),
                     shed.get(key, 0)])
    if not rows:
        rows.append(["(none)", "-", 0.0, 0])
    return render_table(
        ["flow", "culprit NF", "induced pkt·ms", "shed pkts"],
        rows, title=title,
    )
