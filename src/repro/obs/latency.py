"""Exact per-flow / per-chain SLO latency telemetry.

PR 1's packet spans sample one packet in N, which is enough to localise
*where* time goes but not to read tail percentiles: a p99.9 over sampled
spans is a p99.9 of the sample, not of the traffic.  The
:class:`FlowLatencyTracker` instead records **every delivered packet**
into log-bucketed :class:`~repro.metrics.histogram.CycleHistogram`
instances — O(1) memory per flow/chain/hop, no sampling — so fig07/fig09
runs can report true p50/p95/p99/p99.9 sojourn latency per flow class
plus an exact per-hop wait-vs-service decomposition (the per-hop latency
view *Benchmarking NFV Software Dataplanes* shows is what localises
dataplane bottlenecks).

Recording sites (all wired by :class:`~repro.platform.manager.NFManager`
when a tracker is attached; each costs one ``is not None`` branch when
off):

* ``TxThread._route`` — chain completion: end-to-end sojourn (NIC
  arrival to chain exit) per flow and per chain, weighted by segment
  packet count, so the histograms cover 100% of delivered traffic.
* ``NFProcess._forward`` — per hop: Rx-ring queue wait and modelled
  per-packet service time for every processed batch run.

Everything the tracker accumulates is observational — it never touches
simulation state, timing or RNG streams, so results (and campaign
digests) are bit-identical with the tracker on or off.  The exported
form is digest-invisible, like ``ScenarioResult.loop_stats``.
"""

from __future__ import annotations

#: Digest-safety contract marker, verified by ``repro check --deep``
#: (SIM603) against ``repro.check.registry.MARKED_MODULES``.
__digest_safety__ = "digest-invisible: per-flow sojourn telemetry"

from typing import Any, Dict, List, Tuple

from repro.metrics.histogram import CycleHistogram

#: The SLO percentiles every summary reports.
SLO_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0, 99.9)

#: Finer buckets than the default 4/octave: at 8 bins per octave the
#: relative bucket width is ~9%, tight enough for tail-percentile reads.
_BINS_PER_OCTAVE = 8


def _new_hist() -> CycleHistogram:
    return CycleHistogram(bins_per_octave=_BINS_PER_OCTAVE)


def _drain(hist: CycleHistogram, pending: Dict[float, int]) -> None:
    if pending:
        add = hist.add
        for value in sorted(pending):
            add(value, weight=pending[value])
        pending.clear()


class FlowLatencyTracker:
    """Exact latency histograms per flow, per chain, and per hop."""

    #: Distinct flows tracked individually before spilling into the
    #: overflow class (guards memory under a million-flow workload;
    #: fig07/fig09 use 1-2 flows).
    OVERFLOW = "_other"

    def __init__(self, max_flows: int = 256):
        self.max_flows = int(max_flows)
        self.flows: Dict[str, CycleHistogram] = {}
        self.chains: Dict[str, CycleHistogram] = {}
        #: hop name -> (wait histogram, service histogram), ns.
        self.hops: Dict[str, Tuple[CycleHistogram, CycleHistogram]] = {}
        self._hop_order: List[str] = []
        # Hot-path staging: value -> packet weight, folded into the
        # histograms on export.  Simulated workloads emit long runs of
        # repeated values (per-NF service time is constant, queue waits
        # quantise to the service grid), so two dict ops here replace a
        # log-bucket insertion per sample.  ``_PENDING_LIMIT`` bounds each
        # staging dict, keeping memory O(1).  Deliveries stage once per
        # ``(flow, chain)`` pair and fold into both histograms.
        self._pending_deliv: Dict[Tuple[str, str], Dict[float, int]] = {}
        self._pending_hops: Dict[
            str, Tuple[Dict[float, int], Dict[float, int]]] = {}

    _PENDING_LIMIT = 4096

    # ------------------------------------------------------------------
    # Recording (hot path — keep allocation-free after warm-up)
    # ------------------------------------------------------------------
    def record_delivery(self, flow_id: str, chain_name: str,
                        latency_ns: int, count: int) -> None:
        """A segment of ``count`` packets completed its chain after
        ``latency_ns`` of sojourn (NIC arrival to chain exit)."""
        pend = self.delivery_staging(flow_id, chain_name)
        pend[latency_ns] = pend.get(latency_ns, 0) + count
        if len(pend) >= self._PENDING_LIMIT:
            self._flush()

    def delivery_staging(self, flow_id: str,
                         chain_name: str) -> Dict[float, int]:
        """The ``(flow, chain)`` sojourn staging dict, creating the flow
        and chain histograms (and resolving flow overflow) on first use.
        Staged weights fold into *both* histograms at flush.

        Hot callers (``TxThread._route``) fetch this once per flow — the
        returned dict is a stable object, drained in place — and
        accumulate ``dict[latency] += count`` inline; they should call
        :meth:`_flush` when it reaches ``_PENDING_LIMIT`` entries.
        """
        flows = self.flows
        if flow_id not in flows and len(flows) >= self.max_flows:
            flow_id = self.OVERFLOW
        key = (flow_id, chain_name)
        pend = self._pending_deliv.get(key)
        if pend is None:
            if flow_id not in flows:
                flows[flow_id] = _new_hist()
            if chain_name not in self.chains:
                self.chains[chain_name] = _new_hist()
            pend = self._pending_deliv[key] = {}
        return pend

    def hop_staging(self, hop: str) -> Tuple[Dict[float, int],
                                             Dict[float, int]]:
        """The ``(wait, service)`` staging dicts for ``hop``, creating its
        histograms on first use.

        Hot callers (``NFProcess._forward``) fetch this once per dequeued
        batch — the hop name is fixed per NF — and accumulate
        ``dict[value] += count`` inline, which is the whole recording
        cost.  Callers should call :meth:`drain_hop` when a staging dict
        reaches ``_PENDING_LIMIT`` entries.
        """
        pend = self._pending_hops.get(hop)
        if pend is None:
            self.hops[hop] = (_new_hist(), _new_hist())
            self._hop_order.append(hop)
            pend = self._pending_hops[hop] = ({}, {})
        return pend

    def drain_hop(self, hop: str) -> None:
        """Fold ``hop``'s staged samples into its histograms."""
        wp, sp = self._pending_hops[hop]
        pair = self.hops[hop]
        _drain(pair[0], wp)
        _drain(pair[1], sp)

    def record_hop(self, hop: str, wait_ns: float, service_ns: float,
                   count: int) -> None:
        """``count`` packets cleared ``hop`` after ``wait_ns`` queued,
        taking ``service_ns`` of modelled service time each."""
        wp, sp = self.hop_staging(hop)
        w = wait_ns if wait_ns > 0 else 0.0
        wp[w] = wp.get(w, 0) + count
        s = service_ns if service_ns > 0 else 0.0
        sp[s] = sp.get(s, 0) + count
        if len(wp) >= self._PENDING_LIMIT or len(sp) >= self._PENDING_LIMIT:
            self.drain_hop(hop)

    def _flush(self) -> None:
        """Fold all staged samples into the histograms (sorted by value,
        so float ``total`` accumulation is deterministic)."""
        for (fid, cname), pend in self._pending_deliv.items():
            if pend:
                flow_add = self.flows[fid].add
                chain_add = self.chains[cname].add
                for value in sorted(pend):
                    weight = pend[value]
                    flow_add(value, weight=weight)
                    chain_add(value, weight=weight)
                pend.clear()
        for name, (wp, sp) in self._pending_hops.items():
            pair = self.hops[name]
            _drain(pair[0], wp)
            _drain(pair[1], sp)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Raw mergeable form: canonical histogram dicts, sorted keys."""
        self._flush()
        return {
            "flows": {fid: h.to_dict()
                      for fid, h in sorted(self.flows.items())},
            "chains": {name: h.to_dict()
                       for name, h in sorted(self.chains.items())},
            "hops": {name: {"wait": w.to_dict(), "service": s.to_dict()}
                     for name, (w, s) in sorted(self.hops.items())},
            "hop_order": list(self._hop_order),
        }

    def summary(self) -> Dict[str, Any]:
        """Percentile summary (µs) for streaming snapshots and tables."""
        return summarize(self.to_dict())

    def __len__(self) -> int:
        return len(self.flows)


# ---------------------------------------------------------------------------
# Dict-level helpers (operate on the JSON-safe form so the campaign
# runner and the stream differ never need live tracker objects)
# ---------------------------------------------------------------------------
def percentile_row(hist_dict: Dict[str, Any]) -> Dict[str, float]:
    """p50/p95/p99/p99.9 (µs) + count/mean/max from one histogram dict."""
    hist = CycleHistogram.from_dict(hist_dict)
    row: Dict[str, float] = {"count": hist.count}
    for p in SLO_PERCENTILES:
        key = f"p{p:g}".replace(".", "_")
        row[f"{key}_us"] = round(hist.percentile(p) / 1e3, 3)
    row["mean_us"] = round(hist.mean / 1e3, 3)
    row["max_us"] = round((hist.max or 0.0) / 1e3, 3)
    return row


def summarize(latency_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Percentile summaries for every flow/chain/hop in a raw dict."""
    if not latency_dict:
        return {}
    out: Dict[str, Any] = {
        "flows": {fid: percentile_row(h)
                  for fid, h in sorted(latency_dict.get("flows", {}).items())},
        "chains": {name: percentile_row(h)
                   for name, h in
                   sorted(latency_dict.get("chains", {}).items())},
    }
    hops: Dict[str, Any] = {}
    for name, pair in sorted(latency_dict.get("hops", {}).items()):
        wait = percentile_row(pair["wait"])
        service = percentile_row(pair["service"])
        hops[name] = {
            "count": wait["count"],
            "wait_p50_us": wait["p50_us"],
            "wait_p99_us": wait["p99_us"],
            "service_p50_us": service["p50_us"],
            "service_p99_us": service["p99_us"],
        }
    out["hops"] = hops
    out["hop_order"] = list(latency_dict.get("hop_order", []))
    return out


def merge_latency_dicts(dicts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Left-fold raw latency dicts (in the given order) into one.

    The campaign runner calls this with per-case dicts in task
    enumeration order, so the merged telemetry — like the campaign
    digest — is invariant to worker count and completion order.
    """
    merged_flows: Dict[str, CycleHistogram] = {}
    merged_chains: Dict[str, CycleHistogram] = {}
    merged_hops: Dict[str, Tuple[CycleHistogram, CycleHistogram]] = {}
    hop_order: List[str] = []
    for d in dicts:
        if not d:
            continue
        for fid, h in sorted(d.get("flows", {}).items()):
            hist = CycleHistogram.from_dict(h)
            if fid in merged_flows:
                merged_flows[fid].merge(hist)
            else:
                merged_flows[fid] = hist
        for name, h in sorted(d.get("chains", {}).items()):
            hist = CycleHistogram.from_dict(h)
            if name in merged_chains:
                merged_chains[name].merge(hist)
            else:
                merged_chains[name] = hist
        for name, pair in sorted(d.get("hops", {}).items()):
            wait = CycleHistogram.from_dict(pair["wait"])
            service = CycleHistogram.from_dict(pair["service"])
            if name in merged_hops:
                merged_hops[name][0].merge(wait)
                merged_hops[name][1].merge(service)
            else:
                merged_hops[name] = (wait, service)
        for name in d.get("hop_order", []):
            if name not in hop_order:
                hop_order.append(name)
    if not (merged_flows or merged_chains or merged_hops):
        return {}
    return {
        "flows": {fid: h.to_dict() for fid, h in sorted(merged_flows.items())},
        "chains": {n: h.to_dict() for n, h in sorted(merged_chains.items())},
        "hops": {n: {"wait": w.to_dict(), "service": s.to_dict()}
                 for n, (w, s) in sorted(merged_hops.items())},
        "hop_order": hop_order,
    }


def render_slo_table(latency_dict: Dict[str, Any], title: str) -> str:
    """The per-flow SLO percentile table experiments print."""
    from repro.metrics.report import render_table

    summary = summarize(latency_dict)
    rows: List[list] = []
    for section in ("flows", "chains"):
        for name, row in summary.get(section, {}).items():
            rows.append([
                f"{section[:-1]}:{name}", row["count"], row["p50_us"],
                row["p95_us"], row["p99_us"], row["p99_9_us"],
                row["mean_us"], row["max_us"],
            ])
    if not rows:
        rows.append(["(no telemetry recorded)", 0, "-", "-", "-", "-",
                     "-", "-"])
    return render_table(
        ["flow class", "pkts", "p50 us", "p95 us", "p99 us", "p99.9 us",
         "mean us", "max us"],
        rows, title=title,
    )
