"""The fault injector: executes a :class:`FaultPlan` against a platform.

Wired by :meth:`NFManager.start` (via ``attach_faults``), the injector
schedules every planned onset on the simulation loop, applies the fault
mechanics at fire time, runs the watchdog/recovery pipeline, and keeps an
:class:`Incident` log from which resilience metrics are computed.

The division of labour:

* the **injector** owns ground truth (what was broken, when) and incident
  bookkeeping;
* the **watchdog** sees only external symptoms and calls back
  ``on_suspect``;
* the **policy** decides the response and reports back through
  :meth:`finish_recovery` / :meth:`give_up`.

Everything runs on the deterministic event loop and stochastic onsets
draw from a named, seeded stream, so a chaos run is exactly reproducible
from ``(plan, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.faults.metrics import availability, latency_stats
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.recovery import RecoveryPolicy, make_policy
from repro.faults.watchdog import Watchdog
from repro.obs.bus import (
    FAULT_DETECT,
    FAULT_GIVEUP,
    FAULT_HEAL,
    FAULT_INJECT,
    FAULT_RECOVER,
)
from repro.sim.clock import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.nf import NFProcess
    from repro.platform.manager import NFManager


@dataclass
class Incident:
    """One fault's lifecycle: injected -> detected -> recovered/healed."""

    index: int          # position of the FaultSpec in the plan
    kind: str
    target: str         # NF name, or "core:<id>"
    injected_ns: int
    detected_ns: Optional[int] = None
    recovered_ns: Optional[int] = None
    healed_ns: Optional[int] = None   # transient fault's duration elapsed
    gave_up: bool = False
    packets_lost: int = 0
    packets_requeued: int = 0
    #: NFs taken out together (core failures count every resident task).
    width: int = 1

    @property
    def detection_latency_ns(self) -> Optional[int]:
        if self.detected_ns is None:
            return None
        return self.detected_ns - self.injected_ns

    @property
    def recovery_latency_ns(self) -> Optional[int]:
        """Detect-to-recover time (the policy's share of the outage)."""
        if self.recovered_ns is None or self.detected_ns is None:
            return None
        return self.recovered_ns - self.detected_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "target": self.target,
            "injected_ns": self.injected_ns,
            "detected_ns": self.detected_ns,
            "recovered_ns": self.recovered_ns,
            "healed_ns": self.healed_ns,
            "gave_up": self.gave_up,
            "packets_lost": self.packets_lost,
            "packets_requeued": self.packets_requeued,
            "width": self.width,
        }


class FaultInjector:
    """Applies a plan's faults to a live platform and logs incidents."""

    def __init__(
        self,
        manager: "NFManager",
        plan: FaultPlan,
        policy=None,
        rng=None,
    ):
        self.manager = manager
        self.loop = manager.loop
        self.plan = plan
        #: numpy Generator for stochastic onsets (required only when the
        #: plan has rate_per_s specs); Scenario passes its seeded
        #: ``faults`` stream here.
        self.rng = rng
        #: Optional :class:`repro.obs.bus.EventBus`.
        self.bus = None
        self.watchdog: Optional[Watchdog] = None
        self.policy: RecoveryPolicy = make_policy(
            policy if policy is not None else plan.policy)
        self.policy.bind(self)
        self.incidents: List[Incident] = []
        self.false_alarms = 0
        #: Open incidents by alias — the target NF's name, plus a
        #: "core:<id>" alias (and one per resident NF) for core failures.
        self._active: Dict[str, Incident] = {}
        self._saved_cost: Dict[str, Any] = {}
        self._wired = False

    # ------------------------------------------------------------------
    # Wiring (called at the end of NFManager.start())
    # ------------------------------------------------------------------
    def wire(self) -> None:
        if self._wired:
            return
        self._wired = True
        mgr = self.manager
        if self.bus is None and mgr.bus is not None:
            self.bus = mgr.bus
        self.watchdog = Watchdog(
            self.loop,
            int(self.plan.detection_period_s * SEC),
            on_suspect=self.on_suspect,
        )
        for nf in mgr.nfs:
            self.watchdog.register(nf)
        if mgr.monitor is not None:
            # Ride the Monitor core's existing 1 ms tick.
            mgr.monitor.watchdog = self.watchdog
        else:
            self.watchdog.start_standalone(int(mgr.config.monitor_period_ns))
        self._schedule_onsets()

    def watch_nf(self, nf: "NFProcess") -> None:
        """Cover a post-start NF (called from NFManager.add_nf)."""
        if self.watchdog is not None:
            self.watchdog.register(nf)

    def _schedule_onsets(self) -> None:
        for index, spec in enumerate(self.plan.specs):
            if spec.at_s is not None:
                times = [int(spec.at_s * SEC)]
            else:
                if self.rng is None:
                    raise RuntimeError(
                        f"fault {spec.kind}@{spec.target} uses stochastic "
                        f"onsets (rate_per_s) but no rng stream was passed "
                        f"to attach_faults()"
                    )
                t = 0.0
                times = []
                for _ in range(spec.count):
                    t += float(self.rng.exponential(1.0 / spec.rate_per_s))
                    times.append(int(t * SEC))
            for t_ns in times:
                self.loop.call_at(
                    max(self.loop.now, t_ns), self._inject_cb(spec, index))

    def _inject_cb(self, spec: FaultSpec, index: int) -> Callable[[], None]:
        return lambda: self.inject(spec, index)

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def inject(self, spec: FaultSpec, index: int) -> Optional[Incident]:
        """Apply one fault now; returns the incident (None if skipped)."""
        now = self.loop.now
        if spec.kind == "core_fail":
            return self._inject_core_fail(spec, index, now)
        nf = self.manager.nf_by_name(spec.target)
        if nf.name in self._active:
            # Target already down; a second fault on a broken NF is a no-op.
            return None
        inc = Incident(index=index, kind=spec.kind, target=nf.name,
                       injected_ns=now)
        self.incidents.append(inc)
        self._active[nf.name] = inc
        if spec.kind == "crash":
            self._apply_crash(nf, inc, now)
        elif spec.kind == "hang":
            nf.hung = True
            self._park(nf)
        elif spec.kind == "slowdown":
            from repro.nfs.cost_models import ScaledCost

            self._saved_cost[nf.name] = nf.cost_model
            nf.cost_model = ScaledCost(nf.cost_model, spec.factor)
        elif spec.kind == "ring_stall":
            nf.rx_ring.sealed = True
            self._park(nf)
        if self.bus is not None and self.bus.active:
            self.bus.publish(FAULT_INJECT, nf.name, kind=spec.kind,
                             index=index, lost=inc.packets_lost)
        if spec.duration_s is not None:
            self.loop.schedule(int(spec.duration_s * SEC),
                               self._heal_cb(nf, inc, spec))
        return inc

    def _inject_core_fail(self, spec: FaultSpec, index: int,
                          now: int) -> Optional[Incident]:
        core_id = int(spec.target)
        core = self.manager.cores.get(core_id)
        if core is None:
            raise KeyError(f"fault plan targets unknown core {core_id}")
        alias = f"core:{core_id}"
        if alias in self._active:
            return None
        inc = Incident(index=index, kind="core_fail", target=alias,
                       injected_ns=now, width=len(core.tasks))
        self.incidents.append(inc)
        self._active[alias] = inc
        core.fail()
        for task in core.tasks:
            # Every resident NF maps back to this one incident so the
            # watchdog's per-NF suspicions aggregate correctly.
            self._active.setdefault(task.name, inc)
        if self.bus is not None and self.bus.active:
            self.bus.publish(FAULT_INJECT, alias, kind="core_fail",
                             index=index, tasks=len(core.tasks))
        return inc

    def _apply_crash(self, nf: "NFProcess", inc: Incident, now: int) -> None:
        nf.failed = True
        # The batch the process held in user space dies with it.
        if len(nf.rx_ring):
            inflight = nf.rx_ring.dequeue(
                min(nf.batch_size, len(nf.rx_ring)))
            for seg in inflight:
                seg.flow.stats.queue_drops += seg.count
                inc.packets_lost += seg.count
        # Until recovery, the manager sheds this NF's arrivals (nf_dead
        # drops) rather than queueing into a ring nobody drains.
        nf.rx_ring.dead = True
        self._park(nf)

    def _park(self, nf: "NFProcess") -> None:
        """Take the NF off the CPU immediately (mid-quantum if running)."""
        if nf.core is not None:
            nf.core.deschedule(nf)

    # ------------------------------------------------------------------
    # Transient self-heal
    # ------------------------------------------------------------------
    def _heal_cb(self, nf: "NFProcess", inc: Incident,
                 spec: FaultSpec) -> Callable[[], None]:
        return lambda: self.heal(nf, inc, spec)

    def heal(self, nf: "NFProcess", inc: Incident, spec: FaultSpec) -> None:
        """Undo a transient fault whose duration elapsed."""
        if inc.detected_ns is not None or inc.recovered_ns is not None \
                or inc.gave_up:
            # The watchdog got there first; recovery owns this incident.
            return
        now = self.loop.now
        if spec.kind == "hang":
            nf.hung = False
        elif spec.kind == "ring_stall":
            nf.rx_ring.sealed = False
        elif spec.kind == "slowdown":
            saved = self._saved_cost.pop(nf.name, None)
            if saved is not None:
                nf.cost_model = saved
        inc.healed_ns = now
        self._active.pop(nf.name, None)
        if self.watchdog is not None:
            self.watchdog.forget(nf)
        if self.bus is not None and self.bus.active:
            self.bus.publish(FAULT_HEAL, nf.name, kind=spec.kind,
                             after_ns=now - inc.injected_ns)
        if self.manager.wakeup is not None:
            self.manager.wakeup.notify(nf)

    # ------------------------------------------------------------------
    # Detection -> recovery pipeline
    # ------------------------------------------------------------------
    def on_suspect(self, nf: "NFProcess", now_ns: int) -> None:
        """Watchdog callback: route a suspicion to the recovery policy."""
        inc = self._active.get(nf.name)
        if inc is None and nf.core is not None:
            # An NF migrated onto a core *after* that core's failure was
            # injected is not in the incident's resident-task snapshot.
            # Adopt it into the open core incident so recovery covers the
            # migrant instead of discarding the suspicion as noise.
            core_inc = self._active.get(f"core:{nf.core.core_id}")
            if core_inc is not None:
                self._active[nf.name] = core_inc
                core_inc.width += 1
                inc = core_inc
        if inc is None:
            # Suspicion without an injected fault: a watchdog false
            # positive.  Counted, not acted on — restarting a healthy NF
            # on a hunch is how outages start.
            self.false_alarms += 1
            return
        if inc.detected_ns is None:
            inc.detected_ns = now_ns
            if self.bus is not None and self.bus.active:
                self.bus.publish(
                    FAULT_DETECT, nf.name, kind=inc.kind,
                    latency_ns=now_ns - inc.injected_ns)
        self.policy.on_detected(nf, inc, now_ns)

    def finish_recovery(self, nf: "NFProcess", incident: Incident,
                        now_ns: int) -> None:
        """Policy callback: ``nf`` is serving again."""
        # For multi-NF (core) incidents the last restart defines recovery.
        incident.recovered_ns = now_ns
        self._active.pop(nf.name, None)
        if incident.target.startswith("core:"):
            still_down = [
                alias for alias, open_inc in self._active.items()
                if open_inc is incident and alias != incident.target
            ]
            if not still_down:
                self._active.pop(incident.target, None)
        if self.watchdog is not None:
            self.watchdog.forget(nf)
        if self.bus is not None and self.bus.active:
            self.bus.publish(
                FAULT_RECOVER, nf.name, kind=incident.kind,
                outage_ns=now_ns - incident.injected_ns,
                lost=incident.packets_lost,
                requeued=incident.packets_requeued)
        if self.manager.wakeup is not None:
            self.manager.wakeup.notify(nf)

    def give_up(self, nf: "NFProcess", incident: Incident,
                now_ns: int) -> None:
        """Policy callback: this NF will not be recovered (fail-chain)."""
        incident.gave_up = True
        # The incident stays open and the watchdog keeps it in the
        # suspected set, so nothing re-fires for this NF.
        if self.bus is not None and self.bus.active:
            self.bus.publish(FAULT_GIVEUP, nf.name, kind=incident.kind)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self, horizon_ns: Optional[int] = None) -> Dict[str, Any]:
        """JSON-safe resilience summary for experiment results."""
        horizon = self.loop.now if horizon_ns is None else int(horizon_ns)
        det = [inc.detection_latency_ns for inc in self.incidents
               if inc.detection_latency_ns is not None]
        rec = [inc.recovery_latency_ns for inc in self.incidents
               if inc.recovery_latency_ns is not None]
        return {
            "policy": self.policy.name,
            "incidents": [inc.to_dict() for inc in self.incidents],
            "injected": len(self.incidents),
            "detected": sum(
                1 for i in self.incidents if i.detected_ns is not None),
            "recovered": sum(
                1 for i in self.incidents if i.recovered_ns is not None),
            "healed": sum(
                1 for i in self.incidents if i.healed_ns is not None),
            "gave_up": sum(1 for i in self.incidents if i.gave_up),
            "false_alarms": self.false_alarms,
            "packets_lost": sum(i.packets_lost for i in self.incidents),
            "packets_requeued": sum(
                i.packets_requeued for i in self.incidents),
            "restarts": sum(nf.restarts for nf in self.manager.nfs),
            "availability": availability(
                self.incidents, horizon, len(self.manager.nfs)),
            "detection_latency": latency_stats(det),
            "recovery_latency": latency_stats(rec),
        }
