"""Fault injection and resilience for the NFV platform.

NFVnice's mechanisms — backpressure, wakeup eligibility, cgroup weights —
assume NFs that are slow, not NFs that are *gone*.  This package supplies
the missing failure half of the story so chaos experiments can measure how
the platform behaves when an NF crashes, wedges, or loses its ring:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` / `FaultSpec`
  (what breaks, when, for how long), JSON/YAML loadable, activatable as a
  process-wide plan the way :mod:`repro.obs.session` activates sessions.
* :mod:`repro.faults.injector` — executes a plan against a live
  :class:`~repro.platform.manager.NFManager` and keeps the incident log.
* :mod:`repro.faults.watchdog` — detection: liveness checks from the
  Monitor core using only externally observable symptoms (ring drain
  progress, backlog, scheduler state), never the injector's ground truth.
* :mod:`repro.faults.recovery` — pluggable recovery policies (cold/warm
  restart, backpressure shielding, fail-the-chain).
* :mod:`repro.faults.metrics` — resilience arithmetic (availability,
  throughput-dip depth/width).
"""

from repro.faults.injector import FaultInjector, Incident
from repro.faults.metrics import availability, throughput_dip
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    activate_plan,
    current_plan,
    deactivate_plan,
)
from repro.faults.recovery import (
    RECOVERY_POLICIES,
    FailChainPolicy,
    RecoveryPolicy,
    RestartPolicy,
    make_policy,
)
from repro.faults.watchdog import Watchdog

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "activate_plan",
    "current_plan",
    "deactivate_plan",
    "FaultInjector",
    "Incident",
    "Watchdog",
    "RecoveryPolicy",
    "RestartPolicy",
    "FailChainPolicy",
    "RECOVERY_POLICIES",
    "make_policy",
    "availability",
    "throughput_dip",
]
