"""Declarative fault plans.

A :class:`FaultPlan` says *what breaks, when, and how the platform should
respond* — it is pure data, serialisable to JSON (and YAML when PyYAML is
installed), so a chaos run is fully described by ``(plan, seed)`` and can
be replayed bit-for-bit.  Each :class:`FaultSpec` names one fault:

========== ============================================================
kind       effect
========== ============================================================
crash      the NF process dies: descheduled mid-quantum, the in-flight
           batch is lost, the manager sheds its arrivals (``nf_dead``)
hang       the NF stops consuming but holds its ring (wedged process);
           arrivals queue until the ring overflows
slowdown   per-packet cost multiplied by ``factor`` (cache thrash, log
           storm, noisy neighbour); the NF still makes progress
ring_stall the Rx ring seals shut: nothing in, nothing out, as if the
           shared-memory segment went away
core_fail  the whole worker core fails; every task on it deschedules
========== ============================================================

Onsets are either deterministic (``at_s``) or stochastic (``rate_per_s``
with ``count`` onsets drawn from exponential inter-arrivals on the
simulation's seeded ``faults`` stream).  Transient faults (``duration_s``)
self-heal; crashes and core failures are permanent until a recovery
policy intervenes.

The module also keeps a process-wide *active plan* mirroring
:mod:`repro.obs.session`: the CLI activates a plan, and every Scenario
built afterwards attaches it to its manager before starting.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: The fault taxonomy (see the table above and docs/faults.md).
FAULT_KINDS = ("crash", "hang", "slowdown", "ring_stall", "core_fail")

#: Kinds for which self-healing makes no sense: a dead process or core
#: does not come back without a recovery action.
_PERMANENT_KINDS = ("crash", "core_fail")


@dataclass
class FaultSpec:
    """One fault: what breaks (``kind`` + ``target``) and when."""

    kind: str
    #: NF name, or the worker-core id (as ``"0"`` / ``0``) for core_fail.
    target: str
    #: Deterministic onset, seconds of simulated time.
    at_s: Optional[float] = None
    #: Stochastic onsets: exponential inter-arrivals at this rate ...
    rate_per_s: Optional[float] = None
    #: ... and how many onsets to draw.
    count: int = 1
    #: Transient faults self-heal after this long (hang/slowdown/stall).
    duration_s: Optional[float] = None
    #: Per-packet cost multiplier for ``slowdown``.
    factor: float = 4.0

    def __post_init__(self) -> None:
        self.target = str(self.target)
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if (self.at_s is None) == (self.rate_per_s is None):
            raise ValueError(
                f"fault {self.kind}@{self.target}: specify exactly one of "
                f"at_s (deterministic onset) or rate_per_s (stochastic)"
            )
        if self.at_s is not None and self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {self.rate_per_s}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.duration_s is not None:
            if self.duration_s <= 0:
                raise ValueError(
                    f"duration_s must be > 0, got {self.duration_s}")
            if self.kind in _PERMANENT_KINDS:
                raise ValueError(
                    f"{self.kind} faults cannot self-heal; drop duration_s "
                    f"and rely on a recovery policy"
                )
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form; None/default fields are pruned for stability."""
        out = asdict(self)
        for key in ("at_s", "rate_per_s", "duration_s"):
            if out[key] is None:
                del out[key]
        if out["count"] == 1:
            del out["count"]
        if self.kind != "slowdown":
            del out["factor"]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        known = {"kind", "target", "at_s", "rate_per_s", "count",
                 "duration_s", "factor"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultSpec field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


@dataclass
class FaultPlan:
    """A chaos experiment's full failure script plus response knobs."""

    specs: List[FaultSpec] = field(default_factory=list)
    #: Recovery policy name (see repro.faults.recovery.RECOVERY_POLICIES).
    policy: str = "restart-warm"
    #: Watchdog staleness threshold: an NF with backlog but no drain
    #: progress for this long is flagged.
    detection_period_s: float = 0.002
    #: Time a restart takes (process spawn + ring re-attach) once a
    #: recovery policy decides to restart.
    restart_delay_s: float = 0.001

    def __post_init__(self) -> None:
        if self.detection_period_s <= 0:
            raise ValueError(
                f"detection_period_s must be > 0, got "
                f"{self.detection_period_s}"
            )
        if self.restart_delay_s < 0:
            raise ValueError(
                f"restart_delay_s must be >= 0, got {self.restart_delay_s}"
            )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "specs": [spec.to_dict() for spec in self.specs],
            "policy": self.policy,
            "detection_period_s": self.detection_period_s,
            "restart_delay_s": self.restart_delay_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        known = {"specs", "policy", "detection_period_s", "restart_delay_s"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        specs = [FaultSpec.from_dict(s) for s in data.get("specs", [])]
        return cls(
            specs=specs,
            policy=data.get("policy", "restart-warm"),
            detection_period_s=data.get("detection_period_s", 0.002),
            restart_delay_s=data.get("restart_delay_s", 0.001),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a ``.json`` or ``.yaml``/``.yml`` file.

        YAML needs PyYAML; when it is absent (the toolchain does not bake
        it in) the error tells the user to supply JSON instead of failing
        with a bare ImportError.
        """
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        if path.endswith((".yaml", ".yml")):
            try:
                import yaml  # type: ignore[import-untyped]
            except ImportError as exc:  # pragma: no cover - env dependent
                raise RuntimeError(
                    f"cannot load {path}: PyYAML is not installed; "
                    f"provide the fault plan as JSON instead"
                ) from exc
            return cls.from_dict(yaml.safe_load(text))
        return cls.from_json(text)


# ---------------------------------------------------------------------------
# Process-wide active plan (mirrors repro.obs.session): the CLI activates a
# plan, Scenario.run() picks it up for every platform it builds.
# ---------------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None


def activate_plan(plan: FaultPlan) -> None:
    """Make ``plan`` the one new scenarios attach to their managers."""
    global _ACTIVE
    _ACTIVE = plan


def deactivate_plan() -> None:
    global _ACTIVE
    _ACTIVE = None


def current_plan() -> Optional[FaultPlan]:
    return _ACTIVE
