"""Resilience arithmetic over incident logs and throughput samples.

Pure functions, deterministic and JSON-friendly, so their outputs can sit
directly in digest-checked experiment results.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import Incident


def availability(
    incidents: Iterable["Incident"],
    horizon_ns: int,
    n_targets: int,
) -> float:
    """Fraction of NF-uptime preserved over ``horizon_ns``.

    Each incident contributes downtime from injection until recovery,
    self-heal, or — for unresolved incidents — the horizon, weighted by
    how many NFs it took out (``width``; a core failure counts every task
    on the core).  Slowdowns do not count: a degraded NF is still up.
    """
    horizon = int(horizon_ns)
    if horizon <= 0 or n_targets <= 0:
        return 1.0
    down = 0
    for inc in incidents:
        if inc.kind == "slowdown":
            continue
        end = inc.recovered_ns
        if end is None:
            end = inc.healed_ns
        if end is None:
            end = horizon
        down += max(0, min(end, horizon) - inc.injected_ns) * inc.width
    return max(0.0, 1.0 - down / (horizon * n_targets))


def throughput_dip(
    samples: Sequence[Tuple[int, float]],
    fault_ns: int,
    recover_frac: float = 0.9,
) -> Dict[str, Any]:
    """Depth and width of the throughput dip around a fault.

    ``samples`` is a time-ordered sequence of ``(t_ns, value)`` probe
    readings (e.g. packets delivered per probe interval).  The baseline is
    the mean of pre-fault samples; *depth* is the fractional drop of the
    post-fault floor below that baseline; *width* is the time from onset
    until throughput first climbs back to ``recover_frac`` of baseline
    after having dipped below it (the full horizon when it never does).
    """
    pre = [v for t, v in samples if t <= fault_ns]
    post = [(t, v) for t, v in samples if t > fault_ns]
    if not pre or not post:
        return {
            "baseline": 0.0, "floor": 0.0, "depth_frac": 0.0,
            "width_ns": 0, "recovered": True,
        }
    baseline = sum(pre) / len(pre)
    floor = min(v for _t, v in post)
    depth = 0.0 if baseline <= 0 else max(0.0, 1.0 - floor / baseline)
    threshold = recover_frac * baseline
    dipped = False
    width = None
    for t, v in post:
        if not dipped:
            dipped = v < threshold
        elif v >= threshold:
            width = t - fault_ns
            break
    if not dipped:
        width, recovered = 0, True
    elif width is None:
        width, recovered = post[-1][0] - fault_ns, False
    else:
        recovered = True
    return {
        "baseline": float(baseline),
        "floor": float(floor),
        "depth_frac": float(depth),
        "width_ns": int(width),
        "recovered": recovered,
    }


def latency_stats(values_ns: Sequence[int]) -> Dict[str, float]:
    """Mean/min/max summary of a latency list (empty -> all zero)."""
    vals: List[int] = [int(v) for v in values_ns]
    if not vals:
        return {"count": 0, "mean_ns": 0.0, "min_ns": 0.0, "max_ns": 0.0}
    return {
        "count": len(vals),
        "mean_ns": float(sum(vals) / len(vals)),
        "min_ns": float(min(vals)),
        "max_ns": float(max(vals)),
    }
