"""Failure detection from the Monitor core.

The watchdog flags NFs that have *observably* stopped serving their
queue.  It deliberately sees only what a real NF manager could see —
ring counters, offered arrivals, scheduler state, the libnf heartbeat —
never the injector's ground-truth fault flags, so detection latency
measured in experiments is honest.

An NF is suspected when, for longer than the detection period:

* its Rx ring made no drain progress (``dequeued_total`` static), and
* there was demand — packets queued, or arrivals still being offered
  (a dead ring sheds arrivals, so depth alone can sit at zero), and
* it is parked BLOCKED (or its core failed) — a READY/RUNNING NF with
  backlog is merely CPU-starved, which is the scheduler's business, and
* it is not *legitimately* blocked: relinquish-flagged by backpressure,
  waiting on I/O, or stopped by a full Tx ring.  Those states resolve
  on their own; restarting such an NF would be a false positive.

Slowdowns are intentionally not flagged: a slow NF still progresses and
the cgroup weights already adapt to its measured service time.

The watchdog normally rides the Monitor thread's 1 ms tick (the paper's
Monitor core has the spare cycles; liveness checks must stay off the
data path).  Without a Monitor (cgroup weighting disabled) it runs as
its own periodic process at the same cadence.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.sched.base import TaskState
from repro.sim.engine import EventLoop
from repro.sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.nf import NFProcess


class Watchdog:
    """Liveness checks over a dynamic roster of NFs."""

    def __init__(
        self,
        loop: EventLoop,
        detection_period_ns: int,
        on_suspect: Optional[Callable[["NFProcess", int], None]] = None,
    ):
        if detection_period_ns <= 0:
            raise ValueError(
                f"detection_period_ns must be > 0, got {detection_period_ns}"
            )
        self.loop = loop
        self.detection_period_ns = int(detection_period_ns)
        #: Called once per newly suspected NF: ``on_suspect(nf, now_ns)``.
        self.on_suspect = on_suspect
        self.nfs: List["NFProcess"] = []
        #: name -> detection time; insertion-ordered, cleared by forget().
        self.suspected: Dict[str, int] = {}
        self.checks = 0
        self.detections = 0
        self._last_drained: Dict[str, int] = {}
        self._last_offered: Dict[str, int] = {}
        #: Last time the NF looked alive (progress, no demand, or excused).
        self._alive_ns: Dict[str, int] = {}
        self._proc: Optional[PeriodicProcess] = None

    # ------------------------------------------------------------------
    # Roster
    # ------------------------------------------------------------------
    def register(self, nf: "NFProcess") -> None:
        if nf not in self.nfs:
            self.nfs.append(nf)

    def forget(self, nf: "NFProcess") -> None:
        """Clear suspicion and restart the liveness clock (post-recovery)."""
        name = nf.name
        self.suspected.pop(name, None)
        self._last_drained.pop(name, None)
        self._last_offered.pop(name, None)
        self._alive_ns.pop(name, None)

    def remove(self, nf: "NFProcess") -> None:
        """Drop an NF from the roster entirely."""
        try:
            self.nfs.remove(nf)
        except ValueError:
            pass
        self.forget(nf)

    # ------------------------------------------------------------------
    # Standalone operation (no Monitor thread to ride on)
    # ------------------------------------------------------------------
    def start_standalone(self, period_ns: int) -> None:
        if self._proc is None:
            self._proc = PeriodicProcess(
                self.loop, int(period_ns),
                lambda: self.tick(self.loop.now), "watchdog",
            )
        self._proc.start()

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()

    # ------------------------------------------------------------------
    def tick(self, now_ns: int) -> None:
        """One liveness pass over the roster (host: MonitorThread.tick)."""
        self.checks += 1
        for nf in self.nfs:
            if nf.name in self.suspected:
                continue
            self._check(nf, now_ns)

    def _check(self, nf: "NFProcess", now: int) -> None:
        name = nf.name
        drained = nf.rx_ring.dequeued_total
        offered = nf.offered_arrivals
        last_drained = self._last_drained.get(name)
        last_offered = self._last_offered.get(name, offered)
        self._last_drained[name] = drained
        self._last_offered[name] = offered
        if last_drained is None or drained != last_drained:
            # First sighting, or the queue moved: alive.
            self._alive_ns[name] = now
            return
        if len(nf.rx_ring) == 0 and offered <= last_offered:
            # No demand: an idle NF is indistinguishable from a dead one,
            # and restarting it would be pure churn.
            self._alive_ns[name] = now
            return
        if (
            nf.relinquish
            or (nf.io is not None and nf.io.blocked)
            or nf.tx_ring.free == 0
        ):
            # Legitimately parked; these states clear themselves.
            self._alive_ns[name] = now
            return
        core_down = nf.core is not None and nf.core.failed
        if nf.state is not TaskState.BLOCKED and not core_down:
            # Backlogged but READY/RUNNING: starved, not stuck.  Do not
            # refresh the clock — if it never gets the CPU *and* later
            # parks without draining, the stale window already ran.
            return
        alive = self._alive_ns.setdefault(name, now)
        if now - alive >= self.detection_period_ns:
            self.suspected[name] = now
            self.detections += 1
            if self.on_suspect is not None:
                self.on_suspect(nf, now)
