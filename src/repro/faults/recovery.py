"""Recovery policies: what the manager does about a detected failure.

A policy is bound to the :class:`~repro.faults.injector.FaultInjector`
and receives ``on_detected(nf, incident, now_ns)`` each time the watchdog
flags an NF.  The shipped policies cover the paper-adjacent design space:

=====================  ====================================================
restart-cold           respawn the process with no state: queued packets
                       are lost (``nf_dead`` drops) and the service-time
                       estimator re-warms from the cost model's mean
restart-warm           respawn against the surviving shared-memory ring
                       (OpenNetVM rings outlive the NF process): queued
                       packets are *requeued* — consumed by the new
                       instance — and the estimator history is kept
restart-backpressure   restart-warm, but while the restart is in flight
                       the NF's chains are throttled at the system entry
                       (Figure 5's early discard) instead of shedding at
                       the dead ring — upstream work is never wasted
fail-chain             no restart: permanently throttle every chain
                       through the NF and shed the remainder at its ring
=====================  ====================================================

Entry throttling rides the existing backpressure machinery
(``chain.throttled`` checked by the Rx thread), so shield modes degrade
gracefully to ring-level shedding when backpressure is disabled.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.sim.clock import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.nf import NFProcess
    from repro.faults.injector import FaultInjector, Incident
    from repro.platform.chain import ServiceChain


class RecoveryPolicy:
    """Base class; subclasses implement :meth:`on_detected`."""

    name = "base"

    def __init__(self) -> None:
        self.injector: Optional["FaultInjector"] = None

    def bind(self, injector: "FaultInjector") -> None:
        self.injector = injector

    def on_detected(self, nf: "NFProcess", incident: "Incident",
                    now_ns: int) -> None:
        raise NotImplementedError


class RestartPolicy(RecoveryPolicy):
    """Respawn the NF after ``restart_delay_s``, cold or warm."""

    def __init__(
        self,
        mode: str = "warm",
        shield: str = "drop",
        restart_delay_s: Optional[float] = None,
    ):
        super().__init__()
        if mode not in ("warm", "cold"):
            raise ValueError(f"mode must be 'warm' or 'cold', got {mode!r}")
        if shield not in ("drop", "backpressure"):
            raise ValueError(
                f"shield must be 'drop' or 'backpressure', got {shield!r}")
        self.mode = mode
        self.shield = shield
        #: Overrides the plan's restart_delay_s when set.
        self.restart_delay_s = restart_delay_s
        self.name = f"restart-{mode}" if shield == "drop" \
            else "restart-backpressure"
        self._pending: Set[str] = set()
        self._shielded: Dict[str, List["ServiceChain"]] = {}

    # ------------------------------------------------------------------
    def on_detected(self, nf: "NFProcess", incident: "Incident",
                    now_ns: int) -> None:
        assert self.injector is not None, "policy used before bind()"
        if nf.name in self._pending:
            return
        self._pending.add(nf.name)
        if self.shield == "backpressure":
            self._raise_shield(nf)
        delay_s = (
            self.restart_delay_s if self.restart_delay_s is not None
            else self.injector.plan.restart_delay_s
        )
        self.injector.loop.schedule(
            int(delay_s * SEC), self._restart_cb(nf, incident)
        )

    def _restart_cb(self, nf: "NFProcess",
                    incident: "Incident") -> Callable[[], None]:
        def _restart() -> None:
            inj = self.injector
            assert inj is not None
            now = inj.loop.now
            self._pending.discard(nf.name)
            if nf.core is not None and nf.core.failed:
                # A core failure takes its NFs down together; the first
                # restart restores the core, the rest find it healthy.
                nf.core.repair()
            ring = nf.rx_ring
            if self.mode == "cold":
                # No checkpoint: whatever sat in the ring dies with the
                # old instance.  Account it like any other failure drop.
                lost = ring.clear()
                if lost:
                    ring.dropped_total += lost
                    ring.drops_by_reason["nf_dead"] = (
                        ring.drops_by_reason.get("nf_dead", 0) + lost
                    )
                incident.packets_lost += lost
            else:
                # Warm: the shared-memory ring survived; the replacement
                # instance drains what queued up during the outage.
                incident.packets_requeued += len(ring)
            nf.restart(now, cold=(self.mode == "cold"))
            self._drop_shield(nf)
            inj.finish_recovery(nf, incident, now)

        return _restart

    # ------------------------------------------------------------------
    # Backpressure shield: discard at entry, not at the dead ring.
    # ------------------------------------------------------------------
    def _raise_shield(self, nf: "NFProcess") -> None:
        shielded: List["ServiceChain"] = []
        for chain in nf.chains:
            if not chain.throttled:
                chain.throttled = True
                chain.throttle_cause = nf
                shielded.append(chain)
        self._shielded[nf.name] = shielded
        # Arrivals are now shed at entry; stop declaring the ring dead so
        # anything already queued survives for the warm restart.
        nf.rx_ring.dead = False

    def _drop_shield(self, nf: "NFProcess") -> None:
        for chain in self._shielded.pop(nf.name, []):
            if chain.throttle_cause is nf:
                chain.throttled = False
                chain.throttle_cause = None


class FailChainPolicy(RecoveryPolicy):
    """Write the NF off: throttle its chains for good, never restart."""

    name = "fail-chain"

    def on_detected(self, nf: "NFProcess", incident: "Incident",
                    now_ns: int) -> None:
        assert self.injector is not None, "policy used before bind()"
        for chain in nf.chains:
            if not chain.throttled:
                chain.throttled = True
                chain.throttle_cause = nf
        # Stragglers already inside the chain still reach this ring; they
        # keep being shed as nf_dead.
        nf.rx_ring.dead = True
        self.injector.give_up(nf, incident, now_ns)


# ---------------------------------------------------------------------------
# Registry (campaign grids and CLI flags select policies by name).
# ---------------------------------------------------------------------------
RECOVERY_POLICIES: Dict[str, Callable[[], RecoveryPolicy]] = {
    "restart-cold": lambda: RestartPolicy(mode="cold"),
    "restart-warm": lambda: RestartPolicy(mode="warm"),
    "restart-backpressure": lambda: RestartPolicy(mode="warm",
                                                  shield="backpressure"),
    "fail-chain": FailChainPolicy,
}


def make_policy(spec) -> RecoveryPolicy:
    """Resolve a policy instance from an instance or a registry name."""
    if isinstance(spec, RecoveryPolicy):
        return spec
    try:
        factory = RECOVERY_POLICIES[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown recovery policy {spec!r}; expected one of "
            f"{sorted(RECOVERY_POLICIES)} or a RecoveryPolicy instance"
        ) from None
    return factory()
