"""Time units and CPU-cycle conversions.

All simulation time is kept in **integer nanoseconds**.  CPU work is
expressed in cycles (the paper quotes NF costs such as "550 cycles per
packet") and converted through the simulated core frequency.

The default frequency matches the paper's testbed: Intel Xeon E5-2697 v3
@ 2.60 GHz (Section 4.1).
"""

from __future__ import annotations

#: One nanosecond — the base unit of simulated time.
NSEC = 1
#: One microsecond in nanoseconds.
USEC = 1_000
#: One millisecond in nanoseconds.
MSEC = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000

#: Simulated CPU core frequency (Hz); E5-2697 v3 runs at 2.6 GHz.
CPU_FREQ_HZ = 2_600_000_000

#: Cycles elapsed per nanosecond at :data:`CPU_FREQ_HZ`.
CYCLES_PER_NSEC = CPU_FREQ_HZ / SEC


def cycles_to_ns(cycles: float, freq_hz: float = CPU_FREQ_HZ) -> float:
    """Convert a CPU-cycle count to nanoseconds at ``freq_hz``.

    The result is a float; callers that schedule events round up so work
    never takes zero time.
    """
    return cycles * SEC / freq_hz


def ns_to_cycles(ns: float, freq_hz: float = CPU_FREQ_HZ) -> float:
    """Convert nanoseconds to CPU cycles at ``freq_hz``."""
    return ns * freq_hz / SEC
