"""The discrete-event loop.

Two interchangeable engines live behind one ``EventLoop`` front:

``impl="heap"``
    A binary heap of ``(time, sequence, handle)`` entries — the original
    engine.  Cancellation is lazy (a cancelled handle stays in the heap and
    is skipped when popped) because schedulers and cores re-plan the running
    task frequently; when cancelled entries outnumber live ones the heap is
    compacted *in place* (rebinding the list would strand the local alias
    ``run_until`` drains — see PR 2's regression).

``impl="wheel"`` (default)
    A hierarchical timer wheel: three levels of 256 power-of-two slots
    (4.096 µs, ~1.05 ms and ~268 ms wide), a per-level occupancy bitmask
    scanned with integer bit tricks, a tiny "current window" heap that
    holds only the events of the active 4.096 µs slot (preserving the exact
    ``(time, sequence)`` firing order, including mid-callback same-instant
    inserts), and a small overflow heap for events farther than ~68.7 s
    out.  Insertion and periodic re-arm are O(1): a bucket holds the
    *handles themselves* (intrusive — no per-event node or tuple), so the
    dominant rx/tx/wakeup/monitor re-arms never allocate.  Cancellation is
    lazy with per-bucket live counters: a bucket whose live count hits
    zero is dropped wholesale (tombstones and all), replacing the heap
    engine's global compaction heuristic; the current-window and overflow
    heaps keep a global sweep as backstop.

Both engines honour the same contract: integer-nanosecond times (the
``call_at`` fast path never touches floating point, so precision survives
past 2**53 ns), events fire strictly in ``(time, sequence)`` order, and a
periodic re-arm consumes one sequence number *before* its callback runs —
bit-compatible with the cancel+reschedule idiom it replaced, so every
campaign digest is identical between the two implementations.  The engine
is picked per loop with ``EventLoop(impl=...)`` or globally with the
``REPRO_ENGINE`` environment variable (``repro run --engine`` sets it).
"""

from __future__ import annotations

#: Digest-safety contract marker, verified by ``repro check --deep``
#: (SIM603) against ``repro.check.registry.MARKED_MODULES``.
__digest_safety__ = "digest-invisible: loop_stats instrumentation only"

import heapq
import math
import os
from typing import Callable, Dict, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop
_heapreplace = heapq.heapreplace

#: Environment variable consulted when ``EventLoop(impl=None)``.
ENGINE_ENV = "REPRO_ENGINE"
_DEFAULT_IMPL = "wheel"


class EventHandle:
    """A scheduled callback; ``cancel()`` prevents it from firing.

    ``period`` is 0 for one-shot events; periodic handles (from
    :meth:`EventLoop.call_every`) carry their re-arm interval and stay
    live across fires until cancelled.  ``seq`` and ``_bkey`` are the
    wheel engine's intrusive bookkeeping (tie-break rank and current
    bucket index); the heap engine keeps the rank in its tuples instead.
    """

    __slots__ = ("time", "period", "callback", "cancelled", "seq", "_bkey",
                 "_loop")

    def __init__(self, time: int, callback: Callable[[], None], loop: "EventLoop",
                 period: int = 0):
        self.time = time
        self.period = period
        self.callback = callback
        self.cancelled = False
        self.seq = 0
        self._bkey = -1
        self._loop = loop

    def cancel(self) -> None:
        """Mark the event so the loop skips it.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop the reference so large closures are collectable immediately.
        self.callback = _noop
        self._loop._on_cancel(self)


def _noop() -> None:
    return None


class EventLoop:
    """Nanosecond-resolution discrete-event loop.

    Events scheduled for the same instant fire in scheduling order
    (a monotonically increasing sequence number breaks ties), which makes
    runs fully deterministic.

    ``EventLoop(impl="wheel"|"heap")`` selects the engine; ``impl=None``
    reads the ``REPRO_ENGINE`` environment variable and falls back to the
    wheel.  Both engines are drop-in equivalent (identical firing
    sequences, hence identical digests) — they differ only in asymptotic
    cost and in how the hygiene counters are realised.
    """

    #: Structures smaller than this are never compacted/swept — the churn
    #: would cost more than the memory it reclaims.
    _COMPACT_MIN_SIZE = 64

    def __new__(cls, impl: Optional[str] = None) -> "EventLoop":
        if cls is EventLoop:
            if impl is None:
                impl = os.environ.get(ENGINE_ENV) or _DEFAULT_IMPL
            try:
                cls = _IMPLS[impl]
            except KeyError:
                raise ValueError(
                    f"unknown EventLoop impl {impl!r}; expected one of "
                    f"{sorted(_IMPLS)}"
                ) from None
        return object.__new__(cls)

    def __init__(self, impl: Optional[str] = None) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._live_events: int = 0
        # Hygiene counters (exposed as repro.obs gauges and recorded by the
        # perf suite).  Plain int adds; cheap enough for the hot loop.
        self.pushes: int = 0            # inserts, periodic re-arms included
        self.pops: int = 0              # events actually fired
        self.lazy_cancel_skips: int = 0  # dead entries discarded lazily
        self.compactions: int = 0       # in-place rebuilds / sweeps
        self.cascades: int = 0          # wheel bucket redistributions
        self.peak_heap: int = 0         # high-water mark of pending entries

    #: Engine name ("heap" or "wheel"); set by the concrete subclass.
    impl = "?"

    # ------------------------------------------------------------------
    # Scheduling (shared surface; call_at/call_every are per-engine)
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        raise NotImplementedError

    def call_every(self, period: int, callback: Callable[[], None],
                   first: Optional[int] = None) -> EventHandle:
        raise NotImplementedError

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.call_at(self.now + delay, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        raise NotImplementedError

    def run_until(self, t_end: float) -> None:
        raise NotImplementedError

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (or at most ``max_events``); returns events run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _on_cancel(self, handle: EventHandle) -> None:
        raise NotImplementedError

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return self._live_events

    def stats_dict(self) -> Dict[str, int]:
        """Loop-hygiene counters with implementation-appropriate semantics.

        Digest-invisible (rides ``ScenarioResult.loop_stats``).  Shared
        keys mean the same thing under both engines; ``peak_pending`` is
        the high-water mark of entries resident in the engine (heap
        length for the heap, current-window + buckets + overflow for the
        wheel), ``compactions`` counts in-place rebuilds (heap
        compactions / wheel sweeps) and ``cascades`` counts wheel bucket
        redistributions (always 0 for the heap).
        """
        return {
            "impl": self.impl,  # type: ignore[dict-item]
            "pushes": self.pushes,
            "pops": self.pops,
            "lazy_cancel_skips": self.lazy_cancel_skips,
            "compactions": self.compactions,
            "cascades": self.cascades,
            "peak_pending": self.peak_heap,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventLoop(impl={self.impl!r}, now={self.now}ns, "
                f"pending={self.pending})")


class _HeapLoop(EventLoop):
    """Binary-heap engine: ``(time, sequence, handle)`` tuples."""

    impl = "heap"

    def __init__(self, impl: Optional[str] = None) -> None:
        super().__init__(impl)
        self._heap: List = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time`` (ns).

        ``time`` is rounded up to an integer nanosecond and clamped to
        ``now`` so an event can never fire in the past.  Integer times
        take a fast path that never touches floating point, so nanosecond
        precision survives past 2**53 ns (float doubles lose integer
        exactness there, which would misorder events in very long runs).
        """
        if type(time) is int:
            t = time
        else:
            t = int(math.ceil(time))
        if t < self.now:
            t = self.now
        handle = EventHandle(t, callback, self)
        self._seq += 1
        _heappush(self._heap, (t, self._seq, handle))
        self._live_events += 1
        self.pushes += 1
        if len(self._heap) > self.peak_heap:
            self.peak_heap = len(self._heap)
        return handle

    def call_every(self, period: int, callback: Callable[[], None],
                   first: Optional[int] = None) -> EventHandle:
        """Schedule ``callback`` every ``period`` ns, starting at ``first``
        (default: one period from now).

        Returns a single :class:`EventHandle` that re-arms itself in place
        each fire — ``cancel()`` it to stop the recurrence.  Equivalent in
        firing instants and tie-break order to rescheduling a one-shot
        event from inside its own callback, but without the per-tick
        handle allocation and pop+push heap churn.
        """
        period = int(period)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if first is None:
            t = self.now + period
        elif type(first) is int:
            t = first
        else:
            t = int(math.ceil(first))
        if t < self.now:
            t = self.now
        handle = EventHandle(t, callback, self, period)
        self._seq += 1
        _heappush(self._heap, (t, self._seq, handle))
        self._live_events += 1
        self.pushes += 1
        if len(self._heap) > self.peak_heap:
            self.peak_heap = len(self._heap)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            handle = entry[2]
            if handle.cancelled:
                _heappop(heap)
                self.lazy_cancel_skips += 1
                continue
            t = entry[0]
            self.now = t
            self.pops += 1
            period = handle.period
            if period:
                # Re-arm in place: one sift replaces pop+push, and the
                # sequence number is consumed before the callback exactly
                # as the reschedule-first idiom did.
                self._seq += 1
                handle.time = t + period
                _heapreplace(heap, (handle.time, self._seq, handle))
                self.pushes += 1
            else:
                _heappop(heap)
                # Mark fired so a late cancel() is a no-op instead of a
                # double-decrement of the live counter.
                handle.cancelled = True
                self._live_events -= 1
            handle.callback()
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Run events with ``time <= t_end``; the clock finishes at ``t_end``.

        Events scheduled exactly at ``t_end`` *do* run, so periodic samplers
        aligned with the horizon record their final sample.
        """
        if type(t_end) is not int:
            t_end = int(t_end)
        heap = self._heap
        pops = 0
        while heap:
            entry = heap[0]
            t = entry[0]
            if t > t_end:
                break
            handle = entry[2]
            if handle.cancelled:
                _heappop(heap)
                self.lazy_cancel_skips += 1
                continue
            self.now = t
            pops += 1
            period = handle.period
            if period:
                self._seq += 1
                handle.time = t + period
                _heapreplace(heap, (handle.time, self._seq, handle))
                self.pushes += 1
            else:
                _heappop(heap)
                handle.cancelled = True  # fired; see step()
                self._live_events -= 1
            handle.callback()
        self.pops += pops
        if self.now < t_end:
            self.now = t_end

    # ------------------------------------------------------------------
    # Heap hygiene
    # ------------------------------------------------------------------
    def _on_cancel(self, handle: EventHandle) -> None:
        self._live_events -= 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones.

        Every heap entry is either live or cancelled (fired one-shot
        entries are popped, periodic entries stay live until cancelled),
        so the dead count is ``len(heap) - _live_events``.
        """
        heap = self._heap
        if len(heap) < self._COMPACT_MIN_SIZE:
            return
        if len(heap) - self._live_events <= len(heap) // 2:
            return
        # Compact *in place*: step()/run_until() hold a local alias to the
        # heap list while draining it, and cancel() — hence compaction — runs
        # from inside event callbacks.  Rebinding self._heap would strand
        # those aliases on the stale list and silently drop every event
        # scheduled after the compaction.
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self.compactions += 1


# Wheel geometry: 3 levels of 256 slots; level-0 slots are 2**12 ns
# (4.096 µs) wide, each higher level's slot spans a whole lower level.
#   level 0: events    <  2**20 ns (~1.05 ms) ahead, slot = (t>>12) & 255
#   level 1: events    <  2**28 ns (~268 ms) ahead, slot = (t>>20) & 255
#   level 2: events    <  2**36 ns (~68.7 s) ahead, slot = (t>>28) & 255
#   beyond:  overflow heap (rare: nothing in the simulator schedules that
#            far out; exercised by tests)
_SHIFT0 = 12
_SLOT_BITS = 8
_SLOTS = 1 << _SLOT_BITS          # 256
_SLOT_MASK = _SLOTS - 1           # 255
_FULL_MASK = (1 << _SLOTS) - 1    # 256-bit occupancy word


class _WheelLoop(EventLoop):
    """Hierarchical-timer-wheel engine (see module docstring).

    Internal invariants (``ct`` is ``_cur_tick``, the level-0 tick of the
    active window):

    * ``_cur`` holds tuple entries with ``time >> 12 <= ct`` — the active
      window plus any stragglers scheduled behind it after ``run_until``
      stopped the clock short of the loaded window.  It is a heap, so
      order within is exact.
    * a level-``l`` bucket holds handles whose level tick ``t >> shift_l``
      is in ``(ct_l, ct_l + 256]`` where ``ct_l = ct >> (8*l)``; the slot
      index is ``tick & 255``, which is collision-free on that range.
      Window advances only shrink the distance, so placements stay valid
      without rehashing.
    * ``_far`` entries are strictly beyond the loaded window (``tick >
      ct``); refill pulls them in before their slot can fire.
    * every live handle has exactly one entry somewhere; dead entries are
      tombstones discarded lazily (``lazy_cancel_skips``).
    """

    impl = "wheel"

    def __init__(self, impl: Optional[str] = None) -> None:
        super().__init__(impl)
        self._cur: List = []                  # (time, seq, handle) tuples
        self._cur_tick: int = 0               # level-0 tick of active window
        self._buckets: List[List[EventHandle]] = [[] for _ in range(3 * _SLOTS)]
        self._blive: List[int] = [0] * (3 * _SLOTS)   # live handles per bucket
        self._occ: List[int] = [0, 0, 0]      # per-level occupancy bitmask
        self._far: List = []                  # (time, seq, handle) overflow heap
        self._total: int = 0                  # entries resident, tombstones incl.

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, h: EventHandle) -> None:
        """File ``h`` (time/seq already set) into the right structure.

        Does not touch counters — callers account pushes/_total/peak.
        """
        t = h.time
        ct = self._cur_tick
        tick = t >> 12
        d = tick - ct
        if d <= 0:
            # Active window (or behind it): exact-order mini heap.
            h._bkey = -1
            _heappush(self._cur, (t, h.seq, h))
            return
        if d <= 256:
            key = tick & 255
        else:
            tick = t >> 20
            d = tick - (ct >> 8)
            if d <= 256:
                key = 256 + (tick & 255)
            else:
                tick = t >> 28
                d = tick - (ct >> 16)
                if d <= 256:
                    key = 512 + (tick & 255)
                else:
                    h._bkey = -1
                    _heappush(self._far, (t, h.seq, h))
                    return
        bucket = self._buckets[key]
        if not bucket:
            self._occ[key >> 8] |= 1 << (key & 255)
        bucket.append(h)
        h._bkey = key
        self._blive[key] += 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time`` (ns).

        Same contract as the heap engine: round up to integer ns, clamp
        to ``now``, integer fast path past 2**53 ns.
        """
        if type(time) is int:
            t = time
        else:
            t = int(math.ceil(time))
        if t < self.now:
            t = self.now
        handle = EventHandle(t, callback, self)
        self._seq += 1
        handle.seq = self._seq
        self._place(handle)
        self._live_events += 1
        self.pushes += 1
        total = self._total + 1
        self._total = total
        if total > self.peak_heap:
            self.peak_heap = total
        return handle

    def call_every(self, period: int, callback: Callable[[], None],
                   first: Optional[int] = None) -> EventHandle:
        """Schedule ``callback`` every ``period`` ns (see heap docstring).

        On the wheel this is the allocation-free path: the handle itself
        is the bucket node, so each re-arm is an append — no tuple, no
        node, no sift.
        """
        period = int(period)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if first is None:
            t = self.now + period
        elif type(first) is int:
            t = first
        else:
            t = int(math.ceil(first))
        if t < self.now:
            t = self.now
        handle = EventHandle(t, callback, self, period)
        self._seq += 1
        handle.seq = self._seq
        self._place(handle)
        self._live_events += 1
        self.pushes += 1
        total = self._total + 1
        self._total = total
        if total > self.peak_heap:
            self.peak_heap = total
        return handle

    # ------------------------------------------------------------------
    # Window refill
    # ------------------------------------------------------------------
    def _next_tick(self, lvl: int) -> int:
        """Tick of the nearest occupied slot at ``lvl``, or -1 if empty.

        Every occupied slot maps to exactly one tick in
        ``(base, base + 256]`` (placement invariant): bits above the
        current slot index fire within this 256-slot span, bits at or
        below it have wrapped into the next one.
        """
        occ = self._occ[lvl]
        if not occ:
            return -1
        base = self._cur_tick >> (_SLOT_BITS * lvl)
        s = base & 255
        hi = occ >> (s + 1)
        if hi:
            # No wrap: lowest set bit above the current slot.
            return base + (hi & -hi).bit_length()
        # Wrapped: slot index i <= s fires at tick base + 256 - s + i.
        return base + 256 - s + (occ & -occ).bit_length() - 1

    def _cascade(self, lvl: int, tick: int) -> None:
        """Advance the window to ``tick``'s span and redistribute its bucket."""
        key = (lvl << 8) | (tick & 255)
        bucket = self._buckets[key]
        self._occ[lvl] &= ~(1 << (tick & 255))
        self._blive[key] = 0
        # New window base = start of the cascaded span, so redistributed
        # entries land at distance [1, 256] of the right lower level.
        self._cur_tick = (tick << (_SLOT_BITS * lvl)) - 1
        skips = 0
        for h in bucket:
            if h.cancelled:
                skips += 1
            else:
                self._place(h)
        del bucket[:]
        if skips:
            self.lazy_cancel_skips += skips
            self._total -= skips
        self.cascades += 1

    def _refill(self, bound: Optional[int]) -> bool:
        """Make ``_cur``'s head the next live event; False when drained.

        With a ``bound``, stops (returning False) once the nearest
        candidate lies strictly beyond it — without loading its window.
        """
        cur = self._cur
        far = self._far
        buckets = self._buckets
        while True:
            while cur:
                if cur[0][2].cancelled:
                    _heappop(cur)
                    self.lazy_cancel_skips += 1
                    self._total -= 1
                    continue
                return True
            # Fast path: an occupied level-0 slot strictly after the current
            # one within the same 256-slot span (no wrap) is necessarily
            # nearer than any level-1/2 cascade, whose earliest possible
            # window starts at the next span boundary.  Only the overflow
            # heap could still precede it, so one strict slot-granularity
            # comparison guards the shortcut (ties and nearer far entries
            # take the slow path, which drains them in exact order).
            occ0 = self._occ[0]
            if occ0:
                ct = self._cur_tick
                hi = occ0 >> ((ct & 255) + 1)
                if hi:
                    tick0 = ct + (hi & -hi).bit_length()
                    if not far or (far[0][0] >> 12) > tick0:
                        if bound is not None and (tick0 << 12) > bound:
                            return False
                        self._cur_tick = tick0
                        key = tick0 & 255
                        bucket = buckets[key]
                        self._occ[0] = occ0 & ~(1 << key)
                        self._blive[key] = 0
                        skips = 0
                        lst = []
                        for h in bucket:
                            if h.cancelled:
                                skips += 1
                            else:
                                h._bkey = -1
                                lst.append((h.time, h.seq, h))
                        del bucket[:]
                        if skips:
                            self.lazy_cancel_skips += skips
                            self._total -= skips
                        lst.sort()
                        cur[:] = lst  # sorted == valid heap; cur was empty
                        continue
            while far and far[0][2].cancelled:
                _heappop(far)
                self.lazy_cancel_skips += 1
                self._total -= 1
            # Candidate window start per source; pick the smallest, breaking
            # ties towards the higher level (its span *contains* the lower
            # candidates, so it must be broken up first).
            t0 = t1 = t2 = -1
            tick0 = self._next_tick(0)
            if tick0 >= 0:
                t0 = tick0 << 12
            tick1 = self._next_tick(1)
            if tick1 >= 0:
                t1 = tick1 << 20
            tick2 = self._next_tick(2)
            if tick2 >= 0:
                t2 = tick2 << 28
            far_t = far[0][0] if far else -1
            best = -1
            for c in (t0, t1, t2, far_t):
                if c >= 0 and (best < 0 or c < best):
                    best = c
            if best < 0:
                return False
            if bound is not None and best > bound:
                return False
            if t2 == best:
                self._cascade(2, tick2)
                continue
            if t1 == best:
                self._cascade(1, tick1)
                continue
            if t0 == best:
                # Load the slot into the current window.
                ct = self._cur_tick = tick0
                key = tick0 & 255
                bucket = self._buckets[key]
                self._occ[0] &= ~(1 << key)
                self._blive[key] = 0
                skips = 0
                lst = []
                for h in bucket:
                    if h.cancelled:
                        skips += 1
                    else:
                        h._bkey = -1
                        lst.append((h.time, h.seq, h))
                del bucket[:]
                if skips:
                    self.lazy_cancel_skips += skips
                    self._total -= skips
                lst.sort()
                cur[:] = lst  # sorted == valid heap; cur was empty
            else:
                # Overflow heap is nearest: jump the window to it.
                ct = far_t >> 12
                if ct > self._cur_tick:
                    self._cur_tick = ct
                else:
                    ct = self._cur_tick
            # Pull overflow entries that fall inside the (possibly new)
            # window so they interleave exactly with its events.
            while far and (far[0][0] >> 12) <= ct:
                e = heapq.heappop(far)
                if e[2].cancelled:
                    self.lazy_cancel_skips += 1
                    self._total -= 1
                else:
                    _heappush(cur, e)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        cur = self._cur
        while True:
            if cur:
                entry = cur[0]
                handle = entry[2]
                if handle.cancelled:
                    _heappop(cur)
                    self.lazy_cancel_skips += 1
                    self._total -= 1
                    continue
                t = entry[0]
                _heappop(cur)
                self._total -= 1
                self.now = t
                self.pops += 1
                period = handle.period
                if period:
                    # Re-arm before the callback — consumes one sequence
                    # number first, exactly like the heap engine.
                    self._seq += 1
                    handle.time = t + period
                    handle.seq = self._seq
                    self._place(handle)
                    self.pushes += 1
                    total = self._total + 1
                    self._total = total
                    if total > self.peak_heap:
                        self.peak_heap = total
                else:
                    handle.cancelled = True  # fired; late cancel is a no-op
                    self._live_events -= 1
                handle.callback()
                return True
            if not self._refill(None):
                return False

    def run_until(self, t_end: float) -> None:
        """Run events with ``time <= t_end``; the clock finishes at ``t_end``."""
        if type(t_end) is not int:
            t_end = int(t_end)
        cur = self._cur
        pops = 0
        while True:
            if cur:
                entry = cur[0]
                handle = entry[2]
                if handle.cancelled:
                    _heappop(cur)
                    self.lazy_cancel_skips += 1
                    self._total -= 1
                    continue
                t = entry[0]
                if t > t_end:
                    break
                _heappop(cur)
                self._total -= 1
                self.now = t
                pops += 1
                period = handle.period
                if period:
                    self._seq += 1
                    handle.time = t + period
                    handle.seq = self._seq
                    self._place(handle)
                    self.pushes += 1
                    total = self._total + 1
                    self._total = total
                    if total > self.peak_heap:
                        self.peak_heap = total
                else:
                    handle.cancelled = True  # fired; see step()
                    self._live_events -= 1
                handle.callback()
                continue
            if not self._refill(t_end):
                break
        self.pops += pops
        if self.now < t_end:
            self.now = t_end

    # ------------------------------------------------------------------
    # Hygiene
    # ------------------------------------------------------------------
    def _on_cancel(self, handle: EventHandle) -> None:
        self._live_events -= 1
        key = handle._bkey
        if key >= 0:
            # Per-bucket accounting: when the last live handle in a bucket
            # is cancelled the whole bucket (tombstones included) is
            # dropped at once — no global scan needed.
            handle._bkey = -1
            n = self._blive[key] - 1
            self._blive[key] = n
            if n == 0:
                bucket = self._buckets[key]
                dropped = len(bucket)
                del bucket[:]
                self._occ[key >> 8] &= ~(1 << (key & 255))
                self.lazy_cancel_skips += dropped
                self._total -= dropped
                return
        # Backstop sweep for tombstones the per-bucket rule cannot reach
        # (tuples in _cur/_far, dead handles in buckets that keep one
        # live occupant) — same outnumbered-by-dead heuristic the heap
        # engine's compaction uses.
        total = self._total
        if total >= self._COMPACT_MIN_SIZE and \
                total - self._live_events > total // 2:
            self._sweep()

    def _sweep(self) -> None:
        """Drop tombstones from every structure (the wheel's "compaction").

        In place — ``run_until`` holds local aliases to ``_cur`` while
        draining it, and cancel() (hence a sweep) runs from inside event
        callbacks.
        """
        removed = 0
        cur = self._cur
        if cur:
            live = [e for e in cur if not e[2].cancelled]
            removed += len(cur) - len(live)
            live.sort()
            cur[:] = live
        far = self._far
        if far:
            live = [e for e in far if not e[2].cancelled]
            removed += len(far) - len(live)
            heapq.heapify(live)
            far[:] = live
        for key, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            kept = [h for h in bucket if not h.cancelled]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                bucket[:] = kept
                if not kept:
                    self._occ[key >> 8] &= ~(1 << (key & 255))
        self._total -= removed
        self.compactions += 1


_IMPLS: Dict[str, type] = {"heap": _HeapLoop, "wheel": _WheelLoop}
