"""The discrete-event loop.

A minimal, fast event queue: a binary heap of ``(time, sequence, handle)``
entries.  Cancellation is lazy — a cancelled handle stays in the heap and is
skipped when popped — because schedulers and cores re-plan the running task
frequently (every enqueue to a running NF invalidates its predicted yield
time) and eager heap removal would dominate the run time.

Lazy cancellation must not let dead entries pile up without bound, though:
a re-plan-heavy run that cancels far-future events faster than the clock
reaches them would otherwise grow the heap forever.  When cancelled
entries outnumber live ones (and the heap is big enough to care), the heap
is compacted in place — an O(n) filter + heapify amortised against the
O(n) of cancellations it takes to get there.  Entries keep their
``(time, sequence)`` ranks, so compaction never changes event order.

Recurring events have a dedicated fast path: :meth:`EventLoop.call_every`
re-arms a periodic handle *in place* with a single ``heapreplace`` sift —
no per-tick handle allocation, no pop-then-push, no cancel churn.  The
manager's Rx/Tx/Wakeup/Monitor ticks and the traffic generator all ride
this path; on tick-heavy runs the majority of events never allocate.
Ordering is bit-compatible with the cancel+reschedule idiom it replaces:
the re-arm consumes one sequence number *before* the callback runs, which
is exactly what ``PeriodicProcess`` did by rescheduling first.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop
_heapreplace = heapq.heapreplace


class EventHandle:
    """A scheduled callback; ``cancel()`` prevents it from firing.

    ``period`` is 0 for one-shot events; periodic handles (from
    :meth:`EventLoop.call_every`) carry their re-arm interval and stay
    live across fires until cancelled.
    """

    __slots__ = ("time", "period", "callback", "cancelled", "_loop")

    def __init__(self, time: int, callback: Callable[[], None], loop: "EventLoop",
                 period: int = 0):
        self.time = time
        self.period = period
        self.callback = callback
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Mark the event so the loop skips it.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self._loop._live_events -= 1
        # Drop the reference so large closures are collectable immediately.
        self.callback = _noop
        self._loop._maybe_compact()


def _noop() -> None:
    return None


class EventLoop:
    """Nanosecond-resolution discrete-event loop.

    Events scheduled for the same instant fire in scheduling order
    (a monotonically increasing sequence number breaks ties), which makes
    runs fully deterministic.
    """

    #: Heaps smaller than this are never compacted — the churn would cost
    #: more than the memory it reclaims.
    _COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List = []
        self._seq: int = 0
        self._live_events: int = 0
        # Hygiene counters (exposed as repro.obs gauges and recorded by the
        # perf suite).  Plain int adds; cheap enough for the hot loop.
        self.pushes: int = 0            # heap inserts, re-arms included
        self.pops: int = 0              # events actually fired
        self.lazy_cancel_skips: int = 0  # dead entries discarded on pop
        self.compactions: int = 0       # in-place heap rebuilds
        self.peak_heap: int = 0         # high-water mark of len(heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time`` (ns).

        ``time`` is rounded up to an integer nanosecond and clamped to
        ``now`` so an event can never fire in the past.  Integer times
        take a fast path that never touches floating point, so nanosecond
        precision survives past 2**53 ns (float doubles lose integer
        exactness there, which would misorder events in very long runs).
        """
        if type(time) is int:
            t = time
        else:
            t = int(math.ceil(time))
        if t < self.now:
            t = self.now
        handle = EventHandle(t, callback, self)
        self._seq += 1
        _heappush(self._heap, (t, self._seq, handle))
        self._live_events += 1
        self.pushes += 1
        if len(self._heap) > self.peak_heap:
            self.peak_heap = len(self._heap)
        return handle

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.call_at(self.now + delay, callback)

    def call_every(self, period: int, callback: Callable[[], None],
                   first: Optional[int] = None) -> EventHandle:
        """Schedule ``callback`` every ``period`` ns, starting at ``first``
        (default: one period from now).

        Returns a single :class:`EventHandle` that re-arms itself in place
        each fire — ``cancel()`` it to stop the recurrence.  Equivalent in
        firing instants and tie-break order to rescheduling a one-shot
        event from inside its own callback, but without the per-tick
        handle allocation and pop+push heap churn.
        """
        period = int(period)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if first is None:
            t = self.now + period
        elif type(first) is int:
            t = first
        else:
            t = int(math.ceil(first))
        if t < self.now:
            t = self.now
        handle = EventHandle(t, callback, self, period)
        self._seq += 1
        _heappush(self._heap, (t, self._seq, handle))
        self._live_events += 1
        self.pushes += 1
        if len(self._heap) > self.peak_heap:
            self.peak_heap = len(self._heap)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            handle = entry[2]
            if handle.cancelled:
                _heappop(heap)
                self.lazy_cancel_skips += 1
                continue
            t = entry[0]
            self.now = t
            self.pops += 1
            period = handle.period
            if period:
                # Re-arm in place: one sift replaces pop+push, and the
                # sequence number is consumed before the callback exactly
                # as the reschedule-first idiom did.
                self._seq += 1
                handle.time = t + period
                _heapreplace(heap, (handle.time, self._seq, handle))
                self.pushes += 1
            else:
                _heappop(heap)
                # Mark fired so a late cancel() is a no-op instead of a
                # double-decrement of the live counter.
                handle.cancelled = True
                self._live_events -= 1
            handle.callback()
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Run events with ``time <= t_end``; the clock finishes at ``t_end``.

        Events scheduled exactly at ``t_end`` *do* run, so periodic samplers
        aligned with the horizon record their final sample.
        """
        if type(t_end) is not int:
            t_end = int(t_end)
        heap = self._heap
        pops = 0
        while heap:
            entry = heap[0]
            t = entry[0]
            if t > t_end:
                break
            handle = entry[2]
            if handle.cancelled:
                _heappop(heap)
                self.lazy_cancel_skips += 1
                continue
            self.now = t
            pops += 1
            period = handle.period
            if period:
                self._seq += 1
                handle.time = t + period
                _heapreplace(heap, (handle.time, self._seq, handle))
                self.pushes += 1
            else:
                _heappop(heap)
                handle.cancelled = True  # fired; see step()
                self._live_events -= 1
            handle.callback()
        self.pops += pops
        if self.now < t_end:
            self.now = t_end

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (or at most ``max_events``); returns events run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    # ------------------------------------------------------------------
    # Heap hygiene
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones.

        Every heap entry is either live or cancelled (fired one-shot
        entries are popped, periodic entries stay live until cancelled),
        so the dead count is ``len(heap) - _live_events``.
        """
        heap = self._heap
        if len(heap) < self._COMPACT_MIN_SIZE:
            return
        if len(heap) - self._live_events <= len(heap) // 2:
            return
        # Compact *in place*: step()/run_until() hold a local alias to the
        # heap list while draining it, and cancel() — hence compaction — runs
        # from inside event callbacks.  Rebinding self._heap would strand
        # those aliases on the stale list and silently drop every event
        # scheduled after the compaction.
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self.compactions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return self._live_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLoop(now={self.now}ns, pending={self.pending})"
