"""Discrete-event simulation engine.

The engine is the foundation of the NFVnice reproduction: every other
subsystem (cores, schedulers, the NF manager, traffic generators, the disk)
is driven by events on a single nanosecond-resolution event loop.

Public surface:

* :class:`~repro.sim.engine.EventLoop` — the event queue and clock.
* :class:`~repro.sim.engine.EventHandle` — cancellable handle returned by
  ``schedule``/``call_at``.
* :class:`~repro.sim.process.PeriodicProcess` — a callback invoked on a fixed
  period (used for the manager's Rx/Tx/Wakeup/Monitor threads).
* :mod:`~repro.sim.clock` — time units and cycle conversions.
* :class:`~repro.sim.rng.RngFactory` — deterministic per-component random
  streams.
"""

from repro.sim.clock import (
    CPU_FREQ_HZ,
    MSEC,
    NSEC,
    SEC,
    USEC,
    cycles_to_ns,
    ns_to_cycles,
)
from repro.sim.engine import EventHandle, EventLoop
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngFactory

__all__ = [
    "CPU_FREQ_HZ",
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "cycles_to_ns",
    "ns_to_cycles",
    "EventLoop",
    "EventHandle",
    "PeriodicProcess",
    "RngFactory",
]
