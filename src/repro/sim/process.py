"""Periodic simulation processes.

The NF Manager's dedicated-core threads (Rx, Tx, Wakeup, Monitor — paper
§3.1) are modelled as periodic processes: each fires its callback on a fixed
period.  They run on dedicated cores in the paper, so in the simulation they
never contend with NFs for CPU and a plain timer is a faithful model.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, EventLoop


class PeriodicProcess:
    """Invoke ``callback`` every ``period`` ns until ``stop()`` is called.

    The first invocation happens at ``start_at`` (default: one period from
    ``start()``).  A ``phase`` offset lets several same-period processes
    interleave deterministically instead of firing in creation order.
    """

    def __init__(
        self,
        loop: EventLoop,
        period: int,
        callback: Callable[[], None],
        name: str = "proc",
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.loop = loop
        self.period = int(period)
        self.callback = callback
        self.name = name
        self.running = False
        self.fired = 0
        self._handle: Optional[EventHandle] = None

    def start(self, start_at: Optional[int] = None) -> None:
        """Begin firing; idempotent while already running."""
        if self.running:
            return
        self.running = True
        first = self.loop.now + self.period if start_at is None else start_at
        self._handle = self.loop.call_at(first, self._fire)

    def stop(self) -> None:
        """Stop firing; a pending invocation is cancelled."""
        self.running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self.running:
            return
        # Re-arm first: the callback may inspect `pending` or stop us.
        self._handle = self.loop.schedule(self.period, self._fire)
        self.fired += 1
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"PeriodicProcess({self.name!r}, period={self.period}ns, {state})"
