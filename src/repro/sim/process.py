"""Periodic simulation processes.

The NF Manager's dedicated-core threads (Rx, Tx, Wakeup, Monitor — paper
§3.1) are modelled as periodic processes: each fires its callback on a fixed
period.  They run on dedicated cores in the paper, so in the simulation they
never contend with NFs for CPU and a plain timer is a faithful model.

``PeriodicProcess`` is now a thin wrapper over
:meth:`repro.sim.engine.EventLoop.call_every`, which re-arms one recurring
handle in place instead of cancelling and re-pushing a fresh event every
tick.  Firing instants and same-instant ordering are identical to the old
reschedule-from-the-callback implementation (the re-arm consumes the tie-break
sequence number before the callback in both).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, EventLoop


class PeriodicProcess:
    """Invoke ``callback`` every ``period`` ns until ``stop()`` is called.

    The first invocation happens at ``start_at`` (default: one period from
    ``start()``).  A ``phase`` offset lets several same-period processes
    interleave deterministically instead of firing in creation order.
    """

    __slots__ = ("loop", "period", "callback", "name", "running", "fired",
                 "_handle")

    def __init__(
        self,
        loop: EventLoop,
        period: int,
        callback: Callable[[], None],
        name: str = "proc",
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.loop = loop
        self.period = int(period)
        self.callback = callback
        self.name = name
        self.running = False
        self.fired = 0
        self._handle: Optional[EventHandle] = None

    def start(self, start_at: Optional[int] = None) -> None:
        """Begin firing; idempotent while already running."""
        if self.running:
            return
        self.running = True
        self._handle = self.loop.call_every(self.period, self._fire,
                                            first=start_at)

    def stop(self) -> None:
        """Stop firing; a pending invocation is cancelled."""
        self.running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self.running:
            return
        self.fired += 1
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"PeriodicProcess({self.name!r}, period={self.period}ns, {state})"
