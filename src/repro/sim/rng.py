"""Deterministic random-number streams.

Every stochastic component (traffic generator, per-packet cost model,
flow-order shuffling, ...) draws from its own named substream so that adding
a component never perturbs the draws seen by another — runs stay reproducible
and comparable across configurations.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngFactory:
    """Produces independent, named ``numpy.random.Generator`` streams.

    Streams are derived as ``seed ^ crc32(name)`` through ``SeedSequence``;
    the same (seed, name) pair always yields an identical stream.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the component called ``name``."""
        tag = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(tag,))
        return np.random.default_rng(seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"


def fallback_generator() -> np.random.Generator:
    """A fixed-seed generator for components constructed without a stream.

    Deterministic (seed 0) but *shared-less*: every call returns an
    independent generator, so a component that forgot to thread an
    :class:`RngFactory` stream still reproduces bit-for-bit.  This is the
    only sanctioned generator constructor outside :class:`RngFactory`
    (enforced by simcheck rule SIM401).
    """
    return np.random.default_rng(0)
