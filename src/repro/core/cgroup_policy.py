"""Rate-cost proportional CPU share computation (paper §3.2).

For each NF *i* on a shared core *m*::

    load(i)      = lambda_i * s_i          (arrival rate x service time)
    TotalLoad(m) = sum over the core's NFs of load(i)
    Shares_i     = Priority_i * load(i) / TotalLoad(m)

"This provides an allocation of CPU weights that provides rate
proportional fairness to each NF.  The Priority_i parameter can be tuned
if desired to provide differential service."

The share fractions are scaled onto the cgroup cpu.shares range so that
the *average* NF keeps the nice-0 weight of 1024 — absolute scale is
irrelevant to CFS, only ratios matter, but staying near 1024 keeps the
values readable and inside kernel bounds.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

#: cpu.shares assigned to the average NF on a core.
BASE_SHARES = 1024


def compute_shares(
    loads: Sequence[Tuple[str, float, float]],
) -> Dict[str, int]:
    """Map ``(name, load, priority)`` triples to cpu.shares values.

    ``load`` is ``lambda_i * s_i`` (dimensionless utilisation demand).
    NFs with zero measured load receive the minimum share rather than
    zero — the paper's fairness goal guarantees "all competing NFs get a
    minimal CPU share necessary to progress" (§2.1).
    """
    if not loads:
        return {}
    weighted = [(name, max(0.0, load) * max(0.0, prio))
                for name, load, prio in loads]
    total = sum(w for _name, w in weighted)
    n = len(weighted)
    if total <= 0.0:
        return {name: BASE_SHARES for name, _w in weighted}
    scale = BASE_SHARES * n
    shares: Dict[str, int] = {}
    for name, w in weighted:
        value = int(round(scale * w / total))
        shares[name] = max(value, 1)
    return shares
