"""ECN marking on persistent queue build-up (paper §3.3).

"To facilitate congestion control across machines, the NF Manager will
also mark the ECN bits in TCP flows ... Since ECN works at longer
timescales, we monitor queue lengths with an exponentially weighted moving
average and use that to trigger marking of flows following [RFC 3168]."

The Tx threads update one EWMA per NF Rx ring each poll; while the EWMA
exceeds the marking threshold, segments of *responsive* flows enqueued to
that ring are CE-marked.  Marks feed back into the TCP model
(:mod:`repro.traffic.tcp`), which reacts like an RFC 3168 sender — one
multiplicative decrease per RTT.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.platform.config import PlatformConfig
from repro.platform.packet import Flow
from repro.platform.ring import PacketRing


class ECNMarker:
    """EWMA queue-length tracker and CE-marking decision per ring."""

    def __init__(self, config: Optional[PlatformConfig] = None):
        self.config = config if config is not None else PlatformConfig()
        self._ewma: Dict[str, float] = {}
        self.marked_packets = 0
        #: Optional :class:`repro.obs.bus.EventBus` (wired by the manager).
        self.bus = None

    def observe(self, ring: PacketRing) -> float:
        """Fold the ring's instantaneous length into its EWMA; returns it."""
        alpha = self.config.ecn_ewma_alpha
        prev = self._ewma.get(ring.name, 0.0)
        ewma = (1.0 - alpha) * prev + alpha * len(ring)
        self._ewma[ring.name] = ewma
        return ewma

    def ewma_of(self, ring: PacketRing) -> float:
        return self._ewma.get(ring.name, 0.0)

    def mark_fraction(self, ring: PacketRing) -> float:
        """RED-style marking probability from the EWMA queue length."""
        lo = self.config.ecn_min_fraction * ring.capacity
        hi = self.config.ecn_max_fraction * ring.capacity
        ewma = self._ewma.get(ring.name, 0.0)
        if ewma <= lo:
            return 0.0
        if ewma >= hi:
            return 1.0
        return (ewma - lo) / (hi - lo)

    def should_mark(self, ring: PacketRing) -> bool:
        return self.mark_fraction(ring) > 0.0

    def mark(self, flow: Flow, count: int, now_ns: int) -> int:
        """CE-mark ``count`` packets of ``flow`` if it is ECN-capable.

        Non-responsive (UDP) flows ignore ECN; marking them would be a
        no-op on the wire, so we skip it entirely.  Returns packets marked.
        """
        if not flow.responsive or count <= 0:
            return 0
        flow.stats.ecn_marks += count
        self.marked_packets += count
        if self.bus is not None and self.bus.active:
            self.bus.publish("ecn.mark", flow.flow_id, count=count)
        if flow.tcp is not None:
            flow.tcp.on_ecn_mark(count, now_ns)
        return count
