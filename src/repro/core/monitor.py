"""The Monitor thread (paper §3.5 "Separating load estimation and CPU
allocation").

Every millisecond it computes each NF's load — packet arrival rate (EWMA
over the 1 ms deltas of the Rx ring's offered-arrivals counter) times the
estimated per-packet service time (the 100 ms windowed median sampled by
libnf).  Every 10 ms it converts per-core loads into cgroup cpu.shares via
the rate-cost proportional formula and writes them through the cgroup
filesystem (a 5 µs sysfs write, so it must stay off the data path).

NF membership is dynamic: instances registered after construction (a
restarted NF, a scaled-out replica) are picked up on the next tick, and
per-NF bookkeeping is created lazily — arrival deltas are clamped at zero
so a counter that restarts from scratch cannot produce a negative rate.
The Monitor also hosts the fault watchdog when one is attached (it shares
the 1 ms cadence and, like the cgroup writes, must stay off the data
path).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.cgroup_policy import compute_shares
from repro.core.nf import NFProcess
from repro.metrics.timeseries import TimeSeries
from repro.platform.config import PlatformConfig
from repro.sched.cgroups import CgroupController
from repro.sim.clock import SEC
from repro.sim.engine import EventHandle, EventLoop


class MonitorThread:
    """Periodic load estimation and cgroup weight assignment."""

    def __init__(
        self,
        loop: EventLoop,
        nfs: List[NFProcess],
        cgroups: CgroupController,
        config: Optional[PlatformConfig] = None,
        record_series: bool = False,
    ):
        self.loop = loop
        self.nfs = list(nfs)
        self.cgroups = cgroups
        self.config = config if config is not None else PlatformConfig()
        self._arrival_ewma_pps: Dict[str, float] = {nf.name: 0.0 for nf in self.nfs}
        self._last_offered: Dict[str, int] = {
            nf.name: nf.offered_arrivals for nf in self.nfs
        }
        self._last_weight_update = 0
        self.record_series = record_series
        #: Optional :class:`repro.obs.bus.EventBus` (wired by the manager).
        self.bus = None
        #: Optional :class:`repro.faults.watchdog.Watchdog`; ticked every
        #: monitor period when attached (the paper's Monitor core has the
        #: spare cycles; the data path must not pay for liveness checks).
        self.watchdog = None
        #: Optional per-NF share history (Figure 15a plots this).
        self.share_series: Dict[str, TimeSeries] = {
            nf.name: TimeSeries(nf.name) for nf in self.nfs
        }
        self._period_ns = int(self.config.monitor_period_ns)
        self._tick_handle: Optional[EventHandle] = None

    def start(self) -> None:
        if self._tick_handle is None:
            self._tick_handle = self.loop.call_every(self._period_ns,
                                                     self.tick)

    def stop(self) -> None:
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    # ------------------------------------------------------------------
    # Dynamic membership
    # ------------------------------------------------------------------
    def add_nf(self, nf: NFProcess) -> None:
        """Start estimating a late-registered NF on the next tick."""
        if nf not in self.nfs:
            self.nfs.append(nf)

    def remove_nf(self, nf: NFProcess) -> None:
        """Stop estimating ``nf`` (bookkeeping is kept for re-registration)."""
        try:
            self.nfs.remove(nf)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def tick(self) -> None:
        now = self.loop.now
        self._update_arrival_rates()
        if now - self._last_weight_update >= self.config.weight_update_ns:
            self._last_weight_update = now
            self._update_weights(now)
        if self.watchdog is not None:
            self.watchdog.tick(now)

    def _update_arrival_rates(self) -> None:
        alpha = self.config.arrival_ewma_alpha
        period_s = self.config.monitor_period_ns / SEC
        for nf in self.nfs:
            offered = nf.offered_arrivals
            last = self._last_offered.get(nf.name)
            self._last_offered[nf.name] = offered
            if last is None:
                # First sighting (registered after construction): no
                # interval to difference yet.
                continue
            # A restarted NF may present a counter that went backwards;
            # a negative delta is a reset, not a negative arrival rate.
            delta = max(0, offered - last)
            instant_pps = delta / period_s
            prev = self._arrival_ewma_pps.get(nf.name, 0.0)
            self._arrival_ewma_pps[nf.name] = (
                (1.0 - alpha) * prev + alpha * instant_pps
            )

    def arrival_rate_pps(self, nf: NFProcess) -> float:
        return self._arrival_ewma_pps.get(nf.name, 0.0)

    def load_of(self, nf: NFProcess, now_ns: int) -> float:
        """load(i) = lambda_i * s_i, a dimensionless CPU demand."""
        lam = self._arrival_ewma_pps.get(nf.name, 0.0)
        service_s = nf.service_time_ns(now_ns) / SEC
        return lam * service_s

    def _update_weights(self, now_ns: int) -> None:
        # Group NFs by the core they share; shares are computed per core m.
        by_core: Dict[int, List[NFProcess]] = {}
        for nf in self.nfs:
            if nf.core is None or nf.failed:
                # A crashed NF has no process to weight; its share returns
                # once a recovery policy restarts it.
                continue
            by_core.setdefault(nf.core.core_id, []).append(nf)
        for _core_id, group in by_core.items():
            loads = [
                (nf.name, self.load_of(nf, now_ns), nf.priority) for nf in group
            ]
            shares = compute_shares(loads)
            for nf in group:
                value = self.cgroups.set_shares(nf, shares[nf.name])
                if self.record_series:
                    series = self.share_series.get(nf.name)
                    if series is None:
                        series = self.share_series[nf.name] = \
                            TimeSeries(nf.name)
                    series.append(now_ns, value)
                if self.bus is not None and self.bus.active:
                    self.bus.publish("monitor.weights", nf.name,
                                     core=_core_id, shares=value)
