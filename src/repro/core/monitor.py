"""The Monitor thread (paper §3.5 "Separating load estimation and CPU
allocation").

Every millisecond it computes each NF's load — packet arrival rate (EWMA
over the 1 ms deltas of the Rx ring's offered-arrivals counter) times the
estimated per-packet service time (the 100 ms windowed median sampled by
libnf).  Every 10 ms it converts per-core loads into cgroup cpu.shares via
the rate-cost proportional formula and writes them through the cgroup
filesystem (a 5 µs sysfs write, so it must stay off the data path).

NF membership is dynamic: instances registered after construction (a
restarted NF, a scaled-out replica) are picked up on the next tick, and
per-NF bookkeeping is created lazily — arrival deltas are clamped at zero
so a counter that restarts from scratch cannot produce a negative rate.
The Monitor also hosts the fault watchdog when one is attached (it shares
the 1 ms cadence and, like the cgroup writes, must stay off the data
path).
"""

from __future__ import annotations

#: Digest-safety contract marker, verified by ``repro check --deep``
#: (SIM603) against ``repro.check.registry.MARKED_MODULES``.
__digest_safety__ = "digest-invisible: SLO/backpressure telemetry summaries"

from typing import Any, Dict, List, Optional, Sequence

from repro.core.cgroup_policy import compute_shares
from repro.core.nf import NFProcess
from repro.metrics.timeseries import TimeSeries
from repro.platform.config import PlatformConfig
from repro.sched.cgroups import CgroupController
from repro.sched.deadline import project_slo_miss
from repro.sim.clock import SEC
from repro.sim.engine import EventHandle, EventLoop


class SLOGovernor:
    """Deadline-cognizant share steering and chain-aware reallocation.

    The control half of the ``DEADLINE`` scheduler family
    (:mod:`repro.sched.deadline`).  Each weight-update period the Monitor
    asks the governor to evaluate every chain with a declared SLO, in
    sorted chain-name order (determinism):

    * the chain's live p99 sojourn comes from the attached
      :class:`~repro.obs.latency.FlowLatencyTracker` (PR 6's exact
      percentile snapshots), its backlog from the worst Rx-ring
      occupancy along the chain;
    * :func:`~repro.sched.deadline.project_slo_miss` projects the miss —
      a p99 *exactly at* the SLO is compliant;
    * a projected miss multiplies the chain's NFVnice priority factor by
      ``boost_step`` (capped at ``boost_max``) so the next cpu.shares
      computation tilts toward the missing chain;
    * ``migrate_after`` *consecutive* misses trigger chain-aware core
      reallocation: the chain's bottleneck NF (deepest Rx ring) moves to
      the least-busy spare core;
    * ``cooldown`` consecutive compliant evaluations decay the boost one
      step, so a recovered chain returns to plain NFVnice weights.

    The governor never mutates ``nf.priority`` — the Monitor multiplies
    :meth:`priority_factor` into the share formula — and reads telemetry
    only, so attaching it with no SLO targets is a no-op.
    """

    def __init__(
        self,
        manager,
        targets_ns: Dict[str, int],
        occupancy_threshold: float = 0.5,
        headroom: float = 0.8,
        boost_step: float = 2.0,
        boost_max: float = 8.0,
        migrate_after: int = 3,
        cooldown: int = 2,
        spare_cores: Sequence[int] = (),
    ):
        if boost_step <= 1.0:
            raise ValueError("boost_step must be > 1")
        if migrate_after < 1 or cooldown < 1:
            raise ValueError("migrate_after and cooldown must be >= 1")
        self.manager = manager
        #: chain name -> end-to-end sojourn budget (ns).
        self.targets_ns = dict(targets_ns)
        self.occupancy_threshold = float(occupancy_threshold)
        self.headroom = float(headroom)
        self.boost_step = float(boost_step)
        self.boost_max = float(boost_max)
        self.migrate_after = int(migrate_after)
        self.cooldown = int(cooldown)
        self.spare_cores = list(spare_cores)
        #: chain name -> current priority multiplier (> 1 while boosted).
        self.boost: Dict[str, float] = {}
        #: Control actions taken, in order (surfaced in results).
        self.events: List[Dict[str, Any]] = []
        self.checks = 0
        self.misses = 0
        self.migrations = 0
        self._miss_streak: Dict[str, int] = {}
        self._ok_streak: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Telemetry reads (override points for synthetic-snapshot tests)
    # ------------------------------------------------------------------
    def chain_p99_us(self, chain_name: str) -> float:
        """Live p99 sojourn (µs) of ``chain_name``, 0.0 before any
        delivery or when no tracker is attached."""
        tracker = self.manager.latency
        if tracker is None:
            return 0.0
        hist = tracker.chains.get(chain_name)
        if hist is None:
            return 0.0
        tracker._flush()
        return hist.percentile(99.0) / 1e3

    def chain_occupancy(self, chain) -> float:
        """Worst Rx-ring fill fraction along ``chain`` (0..1)."""
        worst = 0.0
        for nf in chain.nfs:
            occ = nf.rx_ring.occupancy()
            if occ > worst:
                worst = occ
        return worst

    # ------------------------------------------------------------------
    def priority_factor(self, nf: NFProcess) -> float:
        """Multiplier for ``nf.priority`` in the share formula (max over
        the boosted chains the NF belongs to)."""
        factor = 1.0
        for chain, _pos in nf.chain_positions.values():
            boost = self.boost.get(chain.name)
            if boost is not None and boost > factor:
                factor = boost
        return factor

    def evaluate(self, now_ns: int) -> None:
        """One control-loop pass over every chain with an SLO target."""
        self.checks += 1
        for name in sorted(self.targets_ns):
            chain = self.manager.chains.get(name)
            if chain is None:
                continue
            slo_us = self.targets_ns[name] / 1e3
            p99_us = self.chain_p99_us(name)
            occupancy = self.chain_occupancy(chain)
            if project_slo_miss(p99_us, slo_us, occupancy,
                                self.occupancy_threshold, self.headroom):
                self._on_miss(name, chain, p99_us, now_ns)
            else:
                self._on_compliant(name, now_ns)

    def _on_miss(self, name: str, chain, p99_us: float,
                 now_ns: int) -> None:
        self.misses += 1
        self._ok_streak[name] = 0
        streak = self._miss_streak.get(name, 0) + 1
        self._miss_streak[name] = streak
        current = self.boost.get(name, 1.0)
        boosted = min(current * self.boost_step, self.boost_max)
        if boosted > current:
            self.boost[name] = boosted
            self.events.append({
                "t_ns": now_ns, "kind": "boost", "chain": name,
                "factor": boosted, "p99_us": round(p99_us, 3),
            })
        if streak >= self.migrate_after:
            self._try_migrate(name, chain, now_ns)
            self._miss_streak[name] = 0

    def _on_compliant(self, name: str, now_ns: int) -> None:
        self._miss_streak[name] = 0
        streak = self._ok_streak.get(name, 0) + 1
        self._ok_streak[name] = streak
        if streak >= self.cooldown and name in self.boost:
            decayed = self.boost[name] / self.boost_step
            if decayed <= 1.0:
                del self.boost[name]
                decayed = 1.0
            else:
                self.boost[name] = decayed
            self._ok_streak[name] = 0
            self.events.append({
                "t_ns": now_ns, "kind": "decay", "chain": name,
                "factor": decayed,
            })

    def _try_migrate(self, name: str, chain, now_ns: int) -> None:
        """Move the chain's bottleneck NF to the least-busy spare core."""
        if not self.spare_cores:
            return
        bottleneck = None
        depth = -1
        for nf in chain.nfs:
            if nf.failed or nf.core is None:
                continue
            queued = len(nf.rx_ring)
            if queued > depth:
                depth = queued
                bottleneck = nf
        if bottleneck is None:
            return
        manager = self.manager
        best = None
        best_busy = 0
        for core_id in self.spare_cores:
            if bottleneck.core.core_id == core_id:
                continue
            busy = manager.core(core_id).stats.busy_ns
            if best is None or busy < best_busy:
                best = core_id
                best_busy = busy
        if best is None:
            return
        if manager.migrate_nf(bottleneck, best):
            self.migrations += 1
            self.events.append({
                "t_ns": now_ns, "kind": "migrate", "chain": name,
                "nf": bottleneck.name, "to_core": best,
            })

    def summary(self) -> Dict[str, Any]:
        """JSON-safe control-loop summary for experiment results."""
        return {
            "targets_us": {name: self.targets_ns[name] / 1e3
                           for name in sorted(self.targets_ns)},
            "checks": self.checks,
            "misses": self.misses,
            "migrations": self.migrations,
            "boost": {name: self.boost[name]
                      for name in sorted(self.boost)},
            "events": list(self.events),
        }


class MonitorThread:
    """Periodic load estimation and cgroup weight assignment."""

    def __init__(
        self,
        loop: EventLoop,
        nfs: List[NFProcess],
        cgroups: CgroupController,
        config: Optional[PlatformConfig] = None,
        record_series: bool = False,
    ):
        self.loop = loop
        self.nfs = list(nfs)
        self.cgroups = cgroups
        self.config = config if config is not None else PlatformConfig()
        self._arrival_ewma_pps: Dict[str, float] = {nf.name: 0.0 for nf in self.nfs}
        self._last_offered: Dict[str, int] = {
            nf.name: nf.offered_arrivals for nf in self.nfs
        }
        self._last_weight_update = 0
        self.record_series = record_series
        #: Optional :class:`repro.obs.bus.EventBus` (wired by the manager).
        self.bus = None
        #: Optional :class:`repro.faults.watchdog.Watchdog`; ticked every
        #: monitor period when attached (the paper's Monitor core has the
        #: spare cycles; the data path must not pay for liveness checks).
        self.watchdog = None
        #: Optional per-NF share history (Figure 15a plots this).
        self.share_series: Dict[str, TimeSeries] = {
            nf.name: TimeSeries(nf.name) for nf in self.nfs
        }
        #: Optional :class:`SLOGovernor` (wired by the manager); evaluated
        #: every weight-update period just before shares are recomputed.
        self.slo_governor: Optional[SLOGovernor] = None
        self._period_ns = int(self.config.monitor_period_ns)
        self._tick_handle: Optional[EventHandle] = None

    def start(self) -> None:
        if self._tick_handle is None:
            self._tick_handle = self.loop.call_every(self._period_ns,
                                                     self.tick)

    def stop(self) -> None:
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    # ------------------------------------------------------------------
    # Dynamic membership
    # ------------------------------------------------------------------
    def add_nf(self, nf: NFProcess) -> None:
        """Start estimating a late-registered NF on the next tick."""
        if nf not in self.nfs:
            self.nfs.append(nf)

    def remove_nf(self, nf: NFProcess) -> None:
        """Stop estimating ``nf`` (bookkeeping is kept for re-registration)."""
        try:
            self.nfs.remove(nf)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def tick(self) -> None:
        now = self.loop.now
        self._update_arrival_rates()
        if now - self._last_weight_update >= self.config.weight_update_ns:
            self._last_weight_update = now
            if self.slo_governor is not None:
                self.slo_governor.evaluate(now)
            self._update_weights(now)
        if self.watchdog is not None:
            self.watchdog.tick(now)

    def _update_arrival_rates(self) -> None:
        alpha = self.config.arrival_ewma_alpha
        period_s = self.config.monitor_period_ns / SEC
        for nf in self.nfs:
            offered = nf.offered_arrivals
            last = self._last_offered.get(nf.name)
            self._last_offered[nf.name] = offered
            if last is None:
                # First sighting (registered after construction): no
                # interval to difference yet.
                continue
            # A restarted NF may present a counter that went backwards;
            # a negative delta is a reset, not a negative arrival rate.
            delta = max(0, offered - last)
            instant_pps = delta / period_s
            prev = self._arrival_ewma_pps.get(nf.name, 0.0)
            self._arrival_ewma_pps[nf.name] = (
                (1.0 - alpha) * prev + alpha * instant_pps
            )

    def arrival_rate_pps(self, nf: NFProcess) -> float:
        return self._arrival_ewma_pps.get(nf.name, 0.0)

    def cluster_snapshot(self, now_ns: int) -> Dict[str, Dict[str, float]]:
        """Per-NF telemetry for cluster-level control loops.

        The :class:`repro.cluster.autoscaler.Autoscaler` polls this each
        evaluation period: arrival-rate EWMA, dimensionless CPU demand
        and Rx-ring fill fraction per live NF.  Read-only — the snapshot
        is computed from the same state the weight loop uses, so a
        cluster controller sees exactly what the per-host Monitor sees.
        """
        snap: Dict[str, Dict[str, float]] = {}
        for nf in self.nfs:
            if nf.core is None or nf.failed:
                continue
            snap[nf.name] = {
                "arrival_pps": self._arrival_ewma_pps.get(nf.name, 0.0),
                "load": self.load_of(nf, now_ns),
                "rx_occupancy": nf.rx_ring.occupancy(),
            }
        return snap

    def load_of(self, nf: NFProcess, now_ns: int) -> float:
        """load(i) = lambda_i * s_i, a dimensionless CPU demand."""
        lam = self._arrival_ewma_pps.get(nf.name, 0.0)
        service_s = nf.service_time_ns(now_ns) / SEC
        return lam * service_s

    def _update_weights(self, now_ns: int) -> None:
        # Group NFs by the core they share; shares are computed per core m.
        by_core: Dict[int, List[NFProcess]] = {}
        for nf in self.nfs:
            if nf.core is None or nf.failed:
                # A crashed NF has no process to weight; its share returns
                # once a recovery policy restarts it.
                continue
            by_core.setdefault(nf.core.core_id, []).append(nf)
        governor = self.slo_governor
        for _core_id, group in by_core.items():
            if governor is not None:
                # SLO boosts multiply the NFVnice priority factor in the
                # share formula without mutating nf.priority itself.
                loads = [
                    (nf.name, self.load_of(nf, now_ns),
                     nf.priority * governor.priority_factor(nf))
                    for nf in group
                ]
            else:
                loads = [
                    (nf.name, self.load_of(nf, now_ns), nf.priority)
                    for nf in group
                ]
            shares = compute_shares(loads)
            for nf in group:
                value = self.cgroups.set_shares(nf, shares[nf.name])
                if self.record_series:
                    series = self.share_series.get(nf.name)
                    if series is None:
                        series = self.share_series[nf.name] = \
                            TimeSeries(nf.name)
                    series.append(now_ns, value)
                if self.bus is not None and self.bus.active:
                    self.bus.publish("monitor.weights", nf.name,
                                     core=_core_id, shares=value)
