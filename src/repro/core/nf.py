"""The network-function process model.

An :class:`NFProcess` is a schedulable task (one OS process / container in
the paper) whose run loop is libnf's (§3.2 "Relinquishing the CPU"):

    process a batch of at most 32 packets → check the shared-memory
    relinquish flag set by the NF Manager → if set, or if no packets
    remain, block on the semaphore; otherwise take the next batch.

Per-packet CPU cost comes from a :class:`~repro.nfs.cost_models.CostModel`;
processed packets go to the NF's Tx ring for the manager to ferry onwards.
The NF yields voluntarily when its Rx ring is empty, its Tx ring is full
(local backpressure, §3.3), or its I/O double-buffers are full (§3.4).

The NF also implements libnf's measurement duties: every millisecond it
samples the per-packet processing time of the current batch into a shared
sliding-window estimator the Monitor reads (§3.5).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.metrics.histogram import CycleHistogram, SlidingWindowEstimator
from repro.platform.config import PlatformConfig
from repro.platform.packet import Flow, PacketSegment
from repro.platform.ring import PacketRing
from repro.sched.base import CoreTask, ExecOutcome, ExecResult
from repro.sim.clock import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nfs.cost_models import CostModel
    from repro.platform.chain import ServiceChain


class NFProcess(CoreTask):
    """A network function running as its own scheduled process."""

    def __init__(
        self,
        name: str,
        cost_model: "CostModel",
        config: Optional[PlatformConfig] = None,
        weight: int = 1024,
        priority: float = 1.0,
        io=None,
        io_selector: Optional[Callable[[Flow], bool]] = None,
        busy_loop: bool = False,
    ):
        super().__init__(name, weight)
        cfg = config if config is not None else PlatformConfig()
        self.config = cfg
        if cfg.nf_overhead_cycles > 0 and not busy_loop:
            from repro.nfs.cost_models import FixedCost, WithOverhead

            if isinstance(cost_model, FixedCost):
                cost_model = FixedCost(cost_model.cycles + cfg.nf_overhead_cycles)
            else:
                cost_model = WithOverhead(cost_model, cfg.nf_overhead_cycles)
        self.cost_model = cost_model
        #: NFVnice priority factor in the share formula (§3.2).
        self.priority = float(priority)
        self.batch_size = cfg.nf_batch_size
        self._ns_per_cycle = SEC / cfg.cpu_freq_hz
        self._cycles_per_ns = cfg.cpu_freq_hz / SEC

        self.rx_ring = PacketRing(
            cfg.ring_capacity, cfg.high_watermark, cfg.low_watermark,
            name=f"{name}.rx",
        )
        self.tx_ring = PacketRing(
            cfg.ring_capacity, cfg.high_watermark, cfg.low_watermark,
            name=f"{name}.tx",
        )

        #: Chains this NF belongs to, keyed by chain name -> (chain, position).
        self.chain_positions: Dict[str, Tuple["ServiceChain", int]] = {}
        #: Relinquish flag in shared memory, set by the NF Manager (§3.2).
        self.relinquish = False
        #: A misbehaving NF that never yields (§2.1's malicious-NF scenario).
        self.busy_loop = busy_loop
        #: Fault state (set by :mod:`repro.faults`): a *failed* NF crashed
        #: (its process is gone until a recovery policy restarts it); a
        #: *hung* NF still exists but stopped consuming — it holds its
        #: rings yet never responds to semaphore posts.
        self.failed = False
        self.hung = False
        #: libnf heartbeat: stamped every time the NF actually runs.  The
        #: watchdog combines this with ring-drain progress to tell a dead
        #: or wedged NF from one that is merely parked without work.
        self.heartbeat_ns = 0
        #: Crash/restart bookkeeping surfaced in experiment results.
        self.restarts = 0
        #: Set by the manager when any upstream chain hop is on the other
        #: NUMA socket (the per-packet penalty is folded into cost_model).
        self.numa_remote_input = False

        # I/O (None, SyncIOContext or AsyncIOContext); the selector says
        # which flows require a disk write per packet.
        self.io = io
        self.io_selector = io_selector

        # Measurement state.
        self.processed_packets = 0
        self.processed_by_chain: Dict[str, int] = {}
        self.wasted_processed = 0  # my output later dropped downstream
        self.latency_hist = CycleHistogram()  # queuing delay at my Rx (ns)
        self.service_estimator = SlidingWindowEstimator(
            cfg.service_window_ns, cfg.warmup_discard_samples
        )
        self._last_sample_ns = -(10 ** 18)
        self._cycle_credit = 0.0

    # ------------------------------------------------------------------
    # Chain membership
    # ------------------------------------------------------------------
    def join_chain(self, chain: "ServiceChain", position: int) -> None:
        self.chain_positions[chain.name] = (chain, position)

    @property
    def chains(self) -> List["ServiceChain"]:
        return [c for c, _pos in self.chain_positions.values()]

    def position_in(self, chain: "ServiceChain") -> int:
        return self.chain_positions[chain.name][1]

    # ------------------------------------------------------------------
    # Scheduling interface
    # ------------------------------------------------------------------
    def estimate_run_ns(self, now_ns: int) -> float:
        """Time until this NF would voluntarily block (0 = nothing to do)."""
        if self.failed or self.hung or self.rx_ring.sealed:
            return 0.0
        if self.busy_loop:
            return math.inf
        if self.relinquish:
            return 0.0
        if self.io is not None and self.io.blocked:
            return 0.0
        n = len(self.rx_ring)
        if n == 0:
            return 0.0
        n = min(n, self.tx_ring.free)
        if n == 0:
            return 0.0
        if self.io is not None and self.io.sync:
            # A sync write blocks after a single I/O packet; plan only up to
            # the first packet of an I/O flow.
            head = self.rx_ring.peek_head()
            if head is not None and self._needs_io(head.flow):
                n = 1
        cycles = self.cost_model.peek_sum(n) - self._cycle_credit
        if cycles <= 0:
            cycles = 1.0
        return cycles * self._ns_per_cycle

    def execute(self, now_ns: int, granted_ns: float) -> ExecResult:
        """libnf's batch loop for ``granted_ns`` of CPU time."""
        self.heartbeat_ns = now_ns
        if self.failed or self.hung or self.rx_ring.sealed:
            # Killed/wedged mid-grant (or the ring went away): no work is
            # performed; the task blocks immediately.
            return ExecResult(0.0, ExecOutcome.RAN_OUT)
        if self.busy_loop:
            return ExecResult(granted_ns, ExecOutcome.USED_ALL)

        credit_in = self._cycle_credit
        cycles_avail = granted_ns * self._cycles_per_ns + credit_in
        consumed = 0.0
        outcome = ExecOutcome.USED_ALL

        while True:
            # Batch boundary: the relinquish flag is checked between batches.
            if self.relinquish:
                outcome = ExecOutcome.FLAG_YIELD
                break
            if self.io is not None and self.io.blocked:
                outcome = ExecOutcome.IO_BLOCKED
                break
            qlen = len(self.rx_ring)
            if qlen == 0:
                outcome = ExecOutcome.RAN_OUT
                break
            free = self.tx_ring.free
            if free == 0:
                outcome = ExecOutcome.TX_BLOCKED
                break

            batch = min(self.batch_size, qlen, free)
            if self.io is not None and self.io.sync:
                head = self.rx_ring.peek_head()
                if head is not None and self._needs_io(head.flow):
                    batch = 1
            k, cyc = self.cost_model.consume_upto(cycles_avail - consumed, batch)
            if k == 0:
                # Out of cycles for even one more packet.
                outcome = ExecOutcome.USED_ALL
                break
            consumed += cyc
            io_full = self._forward(self.rx_ring.dequeue(k), now_ns,
                                    (cyc / k) * self._ns_per_cycle)
            self._maybe_sample(now_ns, cyc, k)
            if io_full:
                outcome = ExecOutcome.IO_BLOCKED
                break

        if outcome is ExecOutcome.USED_ALL:
            self._cycle_credit = cycles_avail - consumed
            used_ns = granted_ns
        else:
            self._cycle_credit = 0.0
            used_ns = max(0.0, consumed - credit_in) * self._ns_per_cycle
            used_ns = min(used_ns, granted_ns)
        return ExecResult(used_ns, outcome)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _needs_io(self, flow: Flow) -> bool:
        return self.io_selector is None or self.io_selector(flow)

    def _forward(self, segments: List[PacketSegment], now_ns: int,
                 svc_ns_per_pkt: float = 0.0) -> bool:
        """Emit processed segments to the Tx ring; returns True if the I/O
        context became full (NF must yield)."""
        io_full = False
        for seg in segments:
            wait = now_ns - seg.enqueue_ns
            if wait >= 0:
                self.latency_hist.add(wait)
            if seg.span is not None:
                # Sampled packet: this hop's queue wait and service time.
                seg.span.record_hop(self.name, max(0, wait), svc_ns_per_pkt)
            self.processed_packets += seg.count
            chain = seg.flow.chain
            if chain is not None:
                key = chain.name
                self.processed_by_chain[key] = (
                    self.processed_by_chain.get(key, 0) + seg.count
                )
            if self.io is not None and self._needs_io(seg.flow):
                ok = self.io.submit(
                    seg.count, seg.count * seg.flow.pkt_size, now_ns
                )
                if not ok:
                    io_full = True
            # Space was reserved (batch <= tx free), so this cannot drop.
            self.tx_ring.enqueue(seg.flow, seg.count, now_ns,
                                 origin_ns=seg.origin_ns, span=seg.span)
        return io_full

    def _maybe_sample(self, now_ns: int, cycles: float, packets: int) -> None:
        """libnf's 1 ms rdtsc sampling of per-packet processing time."""
        if now_ns - self._last_sample_ns < self.config.service_sample_period_ns:
            return
        self._last_sample_ns = now_ns
        per_packet_ns = (cycles / packets) * self._ns_per_cycle
        self.service_estimator.add(now_ns, per_packet_ns)

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------
    def restart(self, now_ns: int, cold: bool = False) -> None:
        """Bring a failed/hung NF back to a runnable state.

        Called by a recovery policy once the replacement instance is up.
        ``cold`` models a restart that lost all in-memory state: the
        service-time estimator restarts from scratch (the Monitor falls
        back to the cost model's long-run mean until it re-warms), and any
        partially consumed cycle credit is forfeited.  A warm restart
        (checkpointed state) keeps the estimator history.
        """
        self.failed = False
        self.hung = False
        self.rx_ring.sealed = False
        self.rx_ring.dead = False
        self.tx_ring.sealed = False
        self.restarts += 1
        self.heartbeat_ns = int(now_ns)
        self._cycle_credit = 0.0
        if cold:
            self.service_estimator = SlidingWindowEstimator(
                self.config.service_window_ns,
                self.config.warmup_discard_samples,
            )
            self._last_sample_ns = -(10 ** 18)

    # ------------------------------------------------------------------
    # Introspection for the Monitor / experiments
    # ------------------------------------------------------------------
    @property
    def offered_arrivals(self) -> int:
        """Packets offered to this NF's Rx ring (accepted + dropped)."""
        return self.rx_ring.enqueued_total + self.rx_ring.dropped_total

    def service_time_ns(self, now_ns: int) -> float:
        """Estimated per-packet service time: windowed median with a
        fallback to the cost model's long-run mean before warm-up."""
        if self.config.service_estimator == "mean":
            est = self.service_estimator.mean(now_ns)
        else:
            est = self.service_estimator.median(now_ns)
        if est is not None:
            return est
        return self.cost_model.mean_cycles * self._ns_per_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NFProcess({self.name!r}, rx={len(self.rx_ring)}, "
            f"tx={len(self.tx_ring)}, {self.state.value})"
        )
