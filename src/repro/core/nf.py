"""The network-function process model.

An :class:`NFProcess` is a schedulable task (one OS process / container in
the paper) whose run loop is libnf's (§3.2 "Relinquishing the CPU"):

    process a batch of at most 32 packets → check the shared-memory
    relinquish flag set by the NF Manager → if set, or if no packets
    remain, block on the semaphore; otherwise take the next batch.

Per-packet CPU cost comes from a :class:`~repro.nfs.cost_models.CostModel`;
processed packets go to the NF's Tx ring for the manager to ferry onwards.
The NF yields voluntarily when its Rx ring is empty, its Tx ring is full
(local backpressure, §3.3), or its I/O double-buffers are full (§3.4).

The NF also implements libnf's measurement duties: every millisecond it
samples the per-packet processing time of the current batch into a shared
sliding-window estimator the Monitor reads (§3.5).
"""

from __future__ import annotations

#: Digest-safety contract marker, verified by ``repro check --deep``
#: (SIM603) against ``repro.check.registry.MARKED_MODULES``.
__digest_safety__ = "digest-checked: per-NF counters feed the result payload"

import math
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.metrics.histogram import CycleHistogram, SlidingWindowEstimator
from repro.platform.config import PlatformConfig
from repro.platform.packet import Flow
from repro.platform.ring import PacketRing
from repro.sched.base import CoreTask, ExecOutcome, ExecResult
from repro.sim.clock import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nfs.cost_models import CostModel
    from repro.platform.chain import ServiceChain


class NFProcess(CoreTask):
    """A network function running as its own scheduled process."""

    #: True when _forward emits exactly the packets it was handed, letting
    #: execute() track Tx-ring free space arithmetically.  Subclasses whose
    #: _forward may drop packets (CallbackNF's handler) must clear this so
    #: free space is re-read from the ring each batch.
    _forward_exact = True

    def __init__(
        self,
        name: str,
        cost_model: "CostModel",
        config: Optional[PlatformConfig] = None,
        weight: int = 1024,
        priority: float = 1.0,
        io=None,
        io_selector: Optional[Callable[[Flow], bool]] = None,
        busy_loop: bool = False,
    ):
        super().__init__(name, weight)
        cfg = config if config is not None else PlatformConfig()
        self.config = cfg
        if cfg.nf_overhead_cycles > 0 and not busy_loop:
            from repro.nfs.cost_models import FixedCost, WithOverhead

            if isinstance(cost_model, FixedCost):
                cost_model = FixedCost(cost_model.cycles + cfg.nf_overhead_cycles)
            else:
                cost_model = WithOverhead(cost_model, cfg.nf_overhead_cycles)
        self.cost_model = cost_model
        #: NFVnice priority factor in the share formula (§3.2).
        self.priority = float(priority)
        self.batch_size = cfg.nf_batch_size
        self._ns_per_cycle = SEC / cfg.cpu_freq_hz
        self._cycles_per_ns = cfg.cpu_freq_hz / SEC

        self.rx_ring = PacketRing(
            cfg.ring_capacity, cfg.high_watermark, cfg.low_watermark,
            name=f"{name}.rx",
        )
        self.tx_ring = PacketRing(
            cfg.ring_capacity, cfg.high_watermark, cfg.low_watermark,
            name=f"{name}.tx",
        )

        #: Chains this NF belongs to, keyed by chain name -> (chain, position).
        self.chain_positions: Dict[str, Tuple["ServiceChain", int]] = {}
        #: Relinquish flag in shared memory, set by the NF Manager (§3.2).
        self.relinquish = False
        #: A misbehaving NF that never yields (§2.1's malicious-NF scenario).
        self.busy_loop = busy_loop
        #: Fault state (set by :mod:`repro.faults`): a *failed* NF crashed
        #: (its process is gone until a recovery policy restarts it); a
        #: *hung* NF still exists but stopped consuming — it holds its
        #: rings yet never responds to semaphore posts.
        self.failed = False
        self.hung = False
        #: libnf heartbeat: stamped every time the NF actually runs.  The
        #: watchdog combines this with ring-drain progress to tell a dead
        #: or wedged NF from one that is merely parked without work.
        self.heartbeat_ns = 0
        #: Crash/restart bookkeeping surfaced in experiment results.
        self.restarts = 0
        #: Set by the manager when any upstream chain hop is on the other
        #: NUMA socket (the per-packet penalty is folded into cost_model).
        self.numa_remote_input = False

        # I/O (None, SyncIOContext or AsyncIOContext); the selector says
        # which flows require a disk write per packet.
        self.io = io
        self.io_selector = io_selector

        # Measurement state.
        #: Optional :class:`repro.obs.latency.FlowLatencyTracker` (wired by
        #: the manager); records exact per-hop wait/service histograms.
        self.latency = None
        #: Cached ``(wait, service)`` staging dicts from the tracker —
        #: stable objects (drained in place), fetched once per NF.
        self._lat_staging = None
        self.processed_packets = 0
        self.processed_by_chain: Dict[str, int] = {}
        self.wasted_processed = 0  # my output later dropped downstream
        self.latency_hist = CycleHistogram()  # queuing delay at my Rx (ns)
        self.service_estimator = SlidingWindowEstimator(
            cfg.service_window_ns, cfg.warmup_discard_samples
        )
        self._last_sample_ns = -(10 ** 18)
        self._cycle_credit = 0.0

    # ------------------------------------------------------------------
    # Chain membership
    # ------------------------------------------------------------------
    def join_chain(self, chain: "ServiceChain", position: int) -> None:
        self.chain_positions[chain.name] = (chain, position)

    @property
    def chains(self) -> List["ServiceChain"]:
        return [c for c, _pos in self.chain_positions.values()]

    def position_in(self, chain: "ServiceChain") -> int:
        return self.chain_positions[chain.name][1]

    # ------------------------------------------------------------------
    # Scheduling interface
    # ------------------------------------------------------------------
    def estimate_run_ns(self, now_ns: int) -> float:
        """Time until this NF would voluntarily block (0 = nothing to do)."""
        if self.failed or self.hung or self.rx_ring.sealed:
            return 0.0
        if self.busy_loop:
            return math.inf
        if self.relinquish:
            return 0.0
        if self.io is not None and self.io.blocked:
            return 0.0
        n = self.rx_ring._count
        if n == 0:
            return 0.0
        tx = self.tx_ring
        free = tx.capacity - tx._count
        if free < n:
            n = free
        if n == 0:
            return 0.0
        if self.io is not None and self.io.sync:
            # A sync write blocks after a single I/O packet; plan only up to
            # the first packet of an I/O flow.
            head = self.rx_ring.peek_head()
            if head is not None and self._needs_io(head.flow):
                n = 1
        cm = self.cost_model
        if type(cm) is FixedCost:
            cycles = n * cm.cycles - self._cycle_credit
        else:
            cycles = cm.peek_sum(n) - self._cycle_credit
        if cycles <= 0:
            cycles = 1.0
        return cycles * self._ns_per_cycle

    def deadline_ns(self, now_ns: int, default_slo_ns: int) -> Optional[int]:
        """Absolute SLO deadline of the head-of-ring packet, or None.

        ``origin_ns`` is stamped once at NIC arrival and carried through
        every hop, so a downstream NF inherits the end-to-end deadline of
        the oldest traffic it is holding (deadline inheritance).  The
        budget is the head flow's declared SLO class (``Flow.slo_ns``),
        falling back to the scheduler's ``default_slo_ns``.
        """
        head = self.rx_ring.peek_head()
        if head is None:
            return None
        slo = head.flow.slo_ns
        if slo is None:
            slo = default_slo_ns
        return head.origin_ns + slo

    def execute(self, now_ns: int, granted_ns: float) -> ExecResult:
        """libnf's batch loop for ``granted_ns`` of CPU time."""
        self.heartbeat_ns = now_ns
        if self.failed or self.hung or self.rx_ring.sealed:
            # Killed/wedged mid-grant (or the ring went away): no work is
            # performed; the task blocks immediately.
            return ExecResult(0.0, ExecOutcome.RAN_OUT)
        if self.busy_loop:
            return ExecResult(granted_ns, ExecOutcome.USED_ALL)

        credit_in = self._cycle_credit
        cycles_avail = granted_ns * self._cycles_per_ns + credit_in
        consumed = 0.0
        outcome = ExecOutcome.USED_ALL
        # Hot-loop locals: the rings and I/O context are stable for the
        # whole grant; the cost model is re-read each batch because a fault
        # injector may swap it, but its *type* gates a no-dispatch inline
        # of FixedCost.consume_upto (the common case by far).
        rx_ring = self.rx_ring
        tx_ring = self.tx_ring
        io = self.io
        io_sync = io is not None and io.sync
        batch_size = self.batch_size
        sample_period = self.config.service_sample_period_ns
        # Nothing can flip the relinquish flag while execute() runs — the
        # whole grant happens inside one simulation event — so the per-batch
        # check of the original loop collapses to a single test up front.
        # Ring occupancies likewise only change through our own dequeues and
        # enqueues here (exactly k per batch, the reserved space cannot
        # drop), so they are tracked arithmetically instead of re-read.
        if self.relinquish:
            outcome = ExecOutcome.FLAG_YIELD
        else:
            qlen = rx_ring._count
            free = tx_ring.capacity - tx_ring._count
            # Without I/O the only per-batch side effects outside this
            # loop's arithmetic are the dequeue and the Tx enqueue — and
            # consecutive same-segment runs coalesce in the Tx ring anyway
            # (same flow/instant/origin), so deferring the forwarding to
            # one fused flush after the loop yields byte-identical ring
            # contents while paying the dequeue/forward cost once per
            # grant instead of once per batch.  The budget, credit and
            # sampling arithmetic stays per-batch: float operation order
            # is digest-load-bearing.
            fuse = io is None and self._forward_exact
            pending = 0
            svc_ns = 0.0
            # Full-batch fast loop.  While whole batches fit (queue, Tx
            # space and cycle budget all cover ``batch_size``), each
            # iteration of the general loop below performs exactly
            # ``budget = cycles_avail - consumed`` and ``consumed += cyc``
            # with ``cyc == batch_size * c`` — the same two float ops in
            # the same order as here, so the fusion is bit-identical; the
            # remainder (partial batch, budget exhaustion) falls through
            # to the general loop.  Gated on a positive sample period so
            # the once-per-grant sampling shortcut below stays faithful.
            cm = self.cost_model
            if fuse and sample_period > 0 and type(cm) is FixedCost:
                bs = batch_size
                c = cm.cycles
                cyc = bs * c
                sampled = False
                while qlen >= bs and free >= bs:
                    budget = cycles_avail - consumed
                    if budget < c or budget // c < bs:
                        break
                    consumed += cyc
                    qlen -= bs
                    free -= bs
                    pending += bs
                    if not sampled:
                        sampled = True
                        svc_ns = (cyc / bs) * self._ns_per_cycle
                        if now_ns - self._last_sample_ns >= sample_period:
                            self._last_sample_ns = now_ns
                            self.service_estimator.add(now_ns, svc_ns)
            while True:
                if io is not None and io.blocked:
                    outcome = ExecOutcome.IO_BLOCKED
                    break
                if qlen == 0:
                    outcome = ExecOutcome.RAN_OUT
                    break
                if free == 0:
                    outcome = ExecOutcome.TX_BLOCKED
                    break

                batch = batch_size
                if qlen < batch:
                    batch = qlen
                if free < batch:
                    batch = free
                if io_sync:
                    head = rx_ring.peek_head()
                    if head is not None and self._needs_io(head.flow):
                        batch = 1
                cm = self.cost_model
                if type(cm) is FixedCost:
                    c = cm.cycles
                    budget = cycles_avail - consumed
                    if budget < c:
                        k = 0
                    else:
                        k = int(budget // c)
                        if k > batch:
                            k = batch
                        cyc = k * c
                else:
                    k, cyc = cm.consume_upto(cycles_avail - consumed, batch)
                if k == 0:
                    # Out of cycles for even one more packet.
                    outcome = ExecOutcome.USED_ALL
                    break
                consumed += cyc
                qlen -= k
                svc_ns = (cyc / k) * self._ns_per_cycle
                if fuse:
                    pending += k
                    free -= k
                    io_full = False
                else:
                    io_full = self._forward(rx_ring.dequeue_batch(k),
                                            now_ns, svc_ns)
                    if self._forward_exact:
                        free -= k
                    else:
                        free = tx_ring.capacity - tx_ring._count
                if now_ns - self._last_sample_ns >= sample_period:
                    self._last_sample_ns = now_ns
                    self.service_estimator.add(now_ns, svc_ns)
                if io_full:
                    outcome = ExecOutcome.IO_BLOCKED
                    break
            if pending:
                self._forward(rx_ring.dequeue_batch(pending), now_ns,
                              svc_ns)

        if outcome is ExecOutcome.USED_ALL:
            self._cycle_credit = cycles_avail - consumed
            used_ns = granted_ns
        else:
            self._cycle_credit = 0.0
            used_ns = max(0.0, consumed - credit_in) * self._ns_per_cycle
            used_ns = min(used_ns, granted_ns)
        return ExecResult(used_ns, outcome)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _needs_io(self, flow: Flow) -> bool:
        return self.io_selector is None or self.io_selector(flow)

    def _forward(self, batch: List[Tuple], now_ns: int,
                 svc_ns_per_pkt: float = 0.0) -> bool:
        """Emit processed packet runs to the Tx ring; returns True if the
        I/O context became full (NF must yield).

        ``batch`` holds ``(flow, count, enqueue_ns, origin_ns, span)``
        tuples from :meth:`PacketRing.dequeue_batch`.
        """
        io_full = False
        hist_add = self.latency_hist.add
        by_chain = self.processed_by_chain
        io = self.io
        tx_enqueue = self.tx_ring.enqueue
        latency = self.latency
        lat_wait = lat_svc = None
        if latency is not None:
            # Exact (unsampled) wait/service decomposition: stage straight
            # into the tracker's value->weight dicts; every packet in a
            # dequeued run shares the same wait and modelled service.
            staging = self._lat_staging
            if staging is None:
                staging = self._lat_staging = latency.hop_staging(self.name)
            lat_wait, lat_svc = staging
            svc = svc_ns_per_pkt if svc_ns_per_pkt > 0 else 0.0
        processed = 0
        for flow, count, enqueue_ns, origin_ns, span in batch:
            wait = now_ns - enqueue_ns
            if wait >= 0:
                hist_add(wait)
                if lat_wait is not None:
                    if wait in lat_wait:
                        lat_wait[wait] += count
                    else:
                        lat_wait[wait] = count
            elif lat_wait is not None:
                lat_wait[0] = lat_wait.get(0, 0) + count
            if span is not None:
                # Sampled packet: this hop's queue wait and service time.
                span.record_hop(self.name, max(0, wait), svc_ns_per_pkt)
            processed += count
            chain = flow.chain
            if chain is not None:
                key = chain.name
                try:
                    by_chain[key] += count
                except KeyError:
                    by_chain[key] = count
            if io is not None and self._needs_io(flow):
                ok = io.submit(count, count * flow.pkt_size, now_ns)
                if not ok:
                    io_full = True
            # Space was reserved (batch <= tx free), so this cannot drop.
            tx_enqueue(flow, count, now_ns, origin_ns=origin_ns, span=span)
        self.processed_packets += processed
        if lat_wait is not None and processed:
            # The modelled per-packet service time is constant across a
            # dequeued batch: one staged update covers every run.
            lat_svc[svc] = lat_svc.get(svc, 0) + processed
            if (len(lat_wait) >= latency._PENDING_LIMIT
                    or len(lat_svc) >= latency._PENDING_LIMIT):
                latency.drain_hop(self.name)
        return io_full

    def _maybe_sample(self, now_ns: int, cycles: float, packets: int) -> None:
        """libnf's 1 ms rdtsc sampling of per-packet processing time."""
        if now_ns - self._last_sample_ns < self.config.service_sample_period_ns:
            return
        self._last_sample_ns = now_ns
        per_packet_ns = (cycles / packets) * self._ns_per_cycle
        self.service_estimator.add(now_ns, per_packet_ns)

    # ------------------------------------------------------------------
    # Fault recovery
    # ------------------------------------------------------------------
    def restart(self, now_ns: int, cold: bool = False) -> None:
        """Bring a failed/hung NF back to a runnable state.

        Called by a recovery policy once the replacement instance is up.
        ``cold`` models a restart that lost all in-memory state: the
        service-time estimator restarts from scratch (the Monitor falls
        back to the cost model's long-run mean until it re-warms), and any
        partially consumed cycle credit is forfeited.  A warm restart
        (checkpointed state) keeps the estimator history.
        """
        self.failed = False
        self.hung = False
        self.rx_ring.sealed = False
        self.rx_ring.dead = False
        self.tx_ring.sealed = False
        self.restarts += 1
        self.heartbeat_ns = int(now_ns)
        self._cycle_credit = 0.0
        if cold:
            self.service_estimator = SlidingWindowEstimator(
                self.config.service_window_ns,
                self.config.warmup_discard_samples,
            )
            self._last_sample_ns = -(10 ** 18)

    # ------------------------------------------------------------------
    # Introspection for the Monitor / experiments
    # ------------------------------------------------------------------
    @property
    def offered_arrivals(self) -> int:
        """Packets offered to this NF's Rx ring (accepted + dropped)."""
        return self.rx_ring.enqueued_total + self.rx_ring.dropped_total

    def service_time_ns(self, now_ns: int) -> float:
        """Estimated per-packet service time: windowed median with a
        fallback to the cost model's long-run mean before warm-up."""
        if self.config.service_estimator == "mean":
            est = self.service_estimator.mean(now_ns)
        else:
            est = self.service_estimator.median(now_ns)
        if est is not None:
            return est
        return self.cost_model.mean_cycles * self._ns_per_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NFProcess({self.name!r}, rx={len(self.rx_ring)}, "
            f"tx={len(self.tx_ring)}, {self.state.value})"
        )


# Imported at the bottom: repro.nfs.catalog imports NFProcess from this
# module, so a top-of-file import would be circular whichever side loads
# first.  Down here both cycles resolve — NFProcess is already defined when
# the nested import comes back around.  execute() needs the concrete class
# for its no-dispatch FixedCost fast path.
from repro.nfs.cost_models import FixedCost  # noqa: E402
