"""libnf: the developer-facing NF API (paper Figure 6).

The paper's libnf "exports a simple, minimal interface (9 functions, 2
callbacks and 4 structures)"; the four shown in Figure 6 are reproduced
here.  :class:`CallbackNF` lets a network function be written as a packet
handler — "a simple bridge NF or a basic monitor NF is less than 100 lines"
(§3.1) — while inheriting all of :class:`~repro.core.nf.NFProcess`'s
scheduling behaviour (batching, relinquish checks, voluntary yields).

Handler-style NFs pay a Python call per segment, so they are meant for
functional tests and examples; high-rate experiments use plain
:class:`NFProcess` with a cost model.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.io import DiskDevice
from repro.core.nf import NFProcess
from repro.platform.packet import Flow


class LibnfAPI:
    """The I/O face of libnf bound to one NF instance.

    ``write_pkt`` corresponds to ``libnf_write_pkt`` (forward downstream);
    ``read_data``/``write_data`` enqueue asynchronous storage requests whose
    callback "runs in a separate thread context" — modelled as an event on
    the simulation loop at the device's completion time.
    """

    def __init__(self, nf: NFProcess, disk: Optional[DiskDevice] = None):
        self.nf = nf
        self.disk = disk
        self.storage_reads = 0
        self.storage_writes = 0

    # -- packet path ----------------------------------------------------
    def write_pkt(self, flow: Flow, count: int, now_ns: int) -> int:
        """Output ``count`` processed packets of ``flow``; returns accepted."""
        accepted, _dropped, _hi = self.nf.tx_ring.enqueue(flow, count, now_ns)
        return accepted

    # -- liveness --------------------------------------------------------
    def keep_alive(self, now_ns: int) -> None:
        """Refresh the NF's heartbeat without processing a packet.

        Long-running handlers (a table rebuild, a slow storage callback)
        call this so the Manager's watchdog does not mistake a busy NF for
        a wedged one; :meth:`NFProcess.execute` stamps it automatically on
        every scheduled run.
        """
        self.nf.heartbeat_ns = int(now_ns)

    # -- storage path (Figure 6 signatures, sans fd/buf plumbing) --------
    def read_data(self, size: int,
                  callback_fn: Callable[[object], None],
                  context: object = None) -> int:
        """Enqueue an async storage read; 0 on success, -1 if no device."""
        if self.disk is None:
            return -1
        self.storage_reads += 1
        self.disk.submit(size, lambda: callback_fn(context))
        return 0

    def write_data(self, size: int,
                   callback_fn: Callable[[object], None],
                   context: object = None) -> int:
        """Enqueue an async storage write; 0 on success, -1 if no device."""
        if self.disk is None:
            return -1
        self.storage_writes += 1
        self.disk.submit(size, lambda: callback_fn(context))
        return 0


class CallbackNF(NFProcess):
    """An NF defined by a per-segment packet handler.

    ``handler(api, flow, count, now_ns) -> int`` receives a run of packets
    and returns how many to forward (the rest are intentionally dropped,
    e.g. a firewall deny — counted separately from congestion drops).
    """

    #: The handler may forward fewer packets than it was handed, so Tx free
    #: space cannot be tracked arithmetically (see NFProcess._forward_exact).
    _forward_exact = False

    def __init__(self, name, cost_model,
                 handler: Callable[[LibnfAPI, Flow, int, int], int],
                 disk: Optional[DiskDevice] = None, **kwargs):
        super().__init__(name, cost_model, **kwargs)
        self.handler = handler
        self.api = LibnfAPI(self, disk)
        self.dropped_by_handler = 0

    def _forward(self, batch, now_ns: int,
                 svc_ns_per_pkt: float = 0.0) -> bool:
        # ``batch`` holds (flow, count, enqueue_ns, origin_ns, span) tuples
        # from PacketRing.dequeue_batch (see NFProcess._forward).
        io_full = False
        for flow, count, enqueue_ns, origin_ns, span in batch:
            wait = now_ns - enqueue_ns
            if wait >= 0:
                self.latency_hist.add(wait)
            if span is not None:
                span.record_hop(self.name, max(0, wait), svc_ns_per_pkt)
            self.processed_packets += count
            chain = flow.chain
            if chain is not None:
                self.processed_by_chain[chain.name] = (
                    self.processed_by_chain.get(chain.name, 0) + count
                )
            keep = self.handler(self.api, flow, count, now_ns)
            keep = max(0, min(int(keep), count))
            self.dropped_by_handler += count - keep
            if self.io is not None and self._needs_io(flow):
                ok = self.io.submit(count, count * flow.pkt_size, now_ns)
                if not ok:
                    io_full = True
            if keep > 0:
                self.tx_ring.enqueue(flow, keep, now_ns,
                                     origin_ns=origin_ns, span=span)
        return io_full
