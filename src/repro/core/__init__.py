"""NFVnice: the paper's contribution.

* :mod:`~repro.core.nf` — the NF process model: libnf's batch-of-32 loop,
  relinquish-flag checks, voluntary yields on empty ring / full Tx ring /
  full I/O buffers, and service-time sampling.
* :mod:`~repro.core.libnf` — the developer-facing API from Figure 6
  (``read_pkt``/``write_pkt``/``read_data``/``write_data``) for writing
  callback-style NFs.
* :mod:`~repro.core.io` — asynchronous, double-buffered disk I/O (§3.4)
  and the synchronous baseline.
* :mod:`~repro.core.backpressure` — the watch/throttle/clear state machine
  (Figure 4) with cross-chain entry-point discard (Figure 5).
* :mod:`~repro.core.cgroup_policy` — rate-cost proportional share
  computation (§3.2).
* :mod:`~repro.core.monitor` — the Monitor thread: 1 ms load estimation,
  100 ms median service time, 10 ms weight writes (§3.5).
* :mod:`~repro.core.ecn` — EWMA queue-length ECN marking for responsive
  flows (§3.3).
"""

from repro.core.backpressure import BackpressureController, BackpressureState
from repro.core.cgroup_policy import compute_shares
from repro.core.ecn import ECNMarker
from repro.core.io import AsyncIOContext, DiskDevice, SyncIOContext
from repro.core.libnf import CallbackNF, LibnfAPI
from repro.core.monitor import MonitorThread
from repro.core.nf import NFProcess

__all__ = [
    "NFProcess",
    "LibnfAPI",
    "CallbackNF",
    "DiskDevice",
    "AsyncIOContext",
    "SyncIOContext",
    "BackpressureController",
    "BackpressureState",
    "compute_shares",
    "MonitorThread",
    "ECNMarker",
]
