"""Backpressure: watch list → packet throttle → clear throttle (Figure 4).

Detection and control are separated (§3.5): the Tx threads *detect*
overload for free from the enqueue return value and put the NF on the
watch list; the Wakeup thread's scan *decides*, moving an NF to the
throttle state only if its queue is still above the high watermark **and**
the head-of-queue wait exceeds the queuing-time threshold — hysteresis
that forgives short bursts that drain before the scan.

When an NF is throttled, every service chain that passes through it with
the NF downstream (position >= 1) is throttled **at the system entry
point** (Figure 5): the Rx thread discards those chains' arrivals before
any NF spends cycles on them.  Chains for which the congested NF is the
entry NF simply drop at its ring — no upstream work is wasted there.

Additionally, upstream NFs whose every chain is throttled are evicted via
the relinquish flag (§4.3.2 "the upstream NF will not execute till the
downstream NF gets to consume and process its receive buffers");
NFs shared with un-throttled chains keep running (Figure 8's NF1 must keep
serving chain 1 while chain 2 is throttled).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.nf import NFProcess
from repro.platform.config import PlatformConfig
from repro.sched.base import TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.chain import ServiceChain


class BackpressureState(enum.Enum):
    """Per-NF state in Figure 4's diagram."""

    OFF = "off"
    WATCH = "watch"          # above high watermark, awaiting the time gate
    THROTTLE = "throttle"    # chains through this NF are being shed at entry


class BackpressureController:
    """Tracks congested NFs and throttles service chains at entry."""

    def __init__(self, config: Optional[PlatformConfig] = None):
        self.config = config if config is not None else PlatformConfig()
        self._state: Dict[str, BackpressureState] = {}
        # Insertion-ordered (dict-as-set): a plain ``set`` of NF objects
        # iterates in id-hash order, which varies run to run and made the
        # evaluate() scan — and thus event ordering and relinquish
        # decisions — nondeterministic under identical seeds.
        self._watch: Dict[str, NFProcess] = {}
        self._throttling: Dict[str, List["ServiceChain"]] = {}
        # Counters
        self.throttle_events = 0
        self.clear_events = 0
        #: Optional :class:`repro.obs.bus.EventBus` (wired by the manager).
        self.bus = None
        #: Optional :class:`repro.obs.causality.CausalityTracer` — receives
        #: every throttle/clear/relinquish transition with its culprit so
        #: throttle-induced delay can be attributed per flow class.
        self.causality = None

    # ------------------------------------------------------------------
    # Detection path (called by Tx/Rx threads on watermark feedback)
    # ------------------------------------------------------------------
    def mark_overloaded(self, nf: NFProcess) -> None:
        """Enqueue feedback crossed the high watermark: add to watch list."""
        if self.state_of(nf) is BackpressureState.OFF:
            self._state[nf.name] = BackpressureState.WATCH
            self._watch[nf.name] = nf
            if self.bus is not None and self.bus.active:
                self.bus.publish("bp.watch", nf.name,
                                 depth=len(nf.rx_ring))

    def state_of(self, nf: NFProcess) -> BackpressureState:
        return self._state.get(nf.name, BackpressureState.OFF)

    # ------------------------------------------------------------------
    # Control path (called by the Wakeup thread scan)
    # ------------------------------------------------------------------
    def evaluate(self, now_ns: int) -> None:
        """Advance the Figure 4 state machine for every watched NF."""
        if not self._watch:
            return
        for nf in list(self._watch.values()):
            state = self.state_of(nf)
            ring = nf.rx_ring
            if state is BackpressureState.WATCH:
                if ring.below_low:
                    self._state[nf.name] = BackpressureState.OFF
                    self._watch.pop(nf.name, None)
                elif (
                    ring.above_high
                    and ring.head_wait_ns(now_ns)
                    > self.config.queuing_time_threshold_ns
                ):
                    self._throttle(nf, now_ns)
            elif state is BackpressureState.THROTTLE:
                if ring.below_low:
                    self._clear(nf, now_ns)
                else:
                    # A chain may have been released by another NF clearing
                    # while this one is still congested: re-claim it.
                    self._reclaim(nf, now_ns)

    def _throttle(self, nf: NFProcess, now_ns: int) -> None:
        """Enter packet-throttle: shed this NF's downstream chains at entry."""
        self._state[nf.name] = BackpressureState.THROTTLE
        affected: List["ServiceChain"] = []
        selective = self.config.selective_chain_throttle
        for chain, position in nf.chain_positions.values():
            if position == 0:
                continue  # entry NF: drops at its own ring waste nothing
            if not chain.throttled:
                chain.throttled = True
                chain.throttle_cause = nf
                affected.append(chain)
        if not selective:
            # Chain-agnostic ablation: collateral throttling of every chain
            # sharing an NF with a congested chain — the coarse behaviour
            # Figure 5's per-chain selectivity ("packets for service chain
            # B are not affected at all") exists to avoid.
            for chain in list(affected):
                for member in chain.nfs:
                    for sibling in member.chains:
                        if not sibling.throttled:
                            sibling.throttled = True
                            sibling.throttle_cause = nf
                            affected.append(sibling)
        self._throttling[nf.name] = affected
        self.throttle_events += 1
        if self.causality is not None:
            for chain in affected:
                self.causality.on_throttle(nf.name, chain.name, now_ns)
        if self.bus is not None and self.bus.active:
            self.bus.publish("bp.throttle", nf.name,
                             chains=[c.name for c in affected],
                             depth=len(nf.rx_ring))
        if self.config.enable_relinquish:
            for chain in affected:
                # Collateral (chain-agnostic) chains may not contain nf;
                # relinquish only applies upstream of the congested NF.
                if chain.name not in nf.chain_positions:
                    continue
                for upstream in chain.upstream_of(nf):
                    self._update_relinquish(upstream, now_ns)

    def _reclaim(self, nf: NFProcess, now_ns: int) -> None:
        """Re-throttle downstream chains released by another NF's clear."""
        mine = self._throttling.setdefault(nf.name, [])
        for chain, position in nf.chain_positions.values():
            if position == 0 or chain.throttled:
                continue
            chain.throttled = True
            chain.throttle_cause = nf
            mine.append(chain)
            if self.causality is not None:
                self.causality.on_throttle(nf.name, chain.name, now_ns)
            if self.config.enable_relinquish:
                for upstream in chain.upstream_of(nf):
                    self._update_relinquish(upstream, now_ns)

    def _clear(self, nf: NFProcess, now_ns: int) -> None:
        """Queue drained below the low watermark: lift the throttle."""
        self._state[nf.name] = BackpressureState.OFF
        self._watch.pop(nf.name, None)
        affected = self._throttling.pop(nf.name, [])
        for chain in affected:
            if chain.throttle_cause is nf:
                chain.throttled = False
                chain.throttle_cause = None
                if self.causality is not None:
                    self.causality.on_clear(nf.name, chain.name, now_ns)
        self.clear_events += 1
        if self.bus is not None and self.bus.active:
            self.bus.publish("bp.clear", nf.name,
                             chains=[c.name for c in affected],
                             depth=len(nf.rx_ring))
        for chain in affected:
            if chain.name not in nf.chain_positions:
                continue
            for upstream in chain.upstream_of(nf):
                self._update_relinquish(upstream, now_ns)

    # ------------------------------------------------------------------
    # Relinquish-flag management
    # ------------------------------------------------------------------
    def _update_relinquish(self, nf: NFProcess, now_ns: int) -> None:
        """Set the relinquish flag iff *all* of the NF's chains are throttled.

        A flagged NF is evicted from the CPU (voluntary switch) and not
        woken until the flag clears.
        """
        should = bool(nf.chains) and all(c.throttled for c in nf.chains)
        if should == nf.relinquish:
            return
        nf.relinquish = should
        if self.causality is not None:
            self.causality.on_relinquish(nf.name, should, now_ns)
        if self.bus is not None and self.bus.active:
            self.bus.publish("bp.relinquish", nf.name, on=should)
        core = nf.core
        if core is None:
            return
        if should:
            if core.current is nf:
                core.interrupt_current(voluntary=True)
            elif nf.state is TaskState.READY:
                core.block_ready(nf)
        # Un-flagged NFs are picked up by the Wakeup thread's next scan.

    def throttled_chains(self) -> List["ServiceChain"]:
        """All chains currently being shed at entry (for reporting)."""
        out: List["ServiceChain"] = []
        for chains in self._throttling.values():
            out.extend(c for c in chains if c.throttled)
        return out
