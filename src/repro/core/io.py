"""Disk I/O: the asynchronous double-buffered path and the sync baseline.

Paper §3.4: "Using batched asynchronous I/O with double buffering, libnf
enables the NF implementation to put the processing of one or more packets
on hold, while continuing processing of other packets unhindered. ...
Double buffering enables libnf to service one set of I/O requests
asynchronously while the other buffer is filled up by the NF.  When both
buffers are full, libnf suspends the execution of the NF and yields the
CPU."

:class:`SyncIOContext` is the baseline an NF without libnf's I/O helpers
would exhibit — every write blocks the process for the full device round
trip, stalling all flows behind it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.clock import SEC, USEC
from repro.sim.engine import EventLoop


class DiskDevice:
    """A storage device with per-op latency and serialised bandwidth."""

    def __init__(
        self,
        loop: EventLoop,
        bandwidth_bps: float = 400e6 * 8,  # 400 MB/s SATA-SSD-class
        op_latency_ns: float = 20 * USEC,
        name: str = "disk0",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.loop = loop
        self.bandwidth_bps = float(bandwidth_bps)
        self.op_latency_ns = float(op_latency_ns)
        self.name = name
        self.busy_until: float = 0.0
        self.ops = 0
        self.bytes_written = 0

    def transfer_ns(self, nbytes: int) -> float:
        """Service time of one request of ``nbytes``."""
        return self.op_latency_ns + nbytes * 8 * SEC / self.bandwidth_bps

    def submit(self, nbytes: int, callback: Callable[[], None]) -> float:
        """Queue a request; ``callback`` fires at completion.

        Requests are serviced in order (a single device queue); returns the
        absolute completion time.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = max(float(self.loop.now), self.busy_until)
        done = start + self.transfer_ns(nbytes)
        self.busy_until = done
        self.ops += 1
        self.bytes_written += nbytes
        self.loop.call_at(done, callback)
        return done

    def utilization(self, horizon_ns: float) -> float:
        """Busy fraction over a horizon (saturation indicator)."""
        if horizon_ns <= 0:
            return 0.0
        return min(1.0, self.busy_until / horizon_ns) if self.ops else 0.0


class AsyncIOContext:
    """libnf's batched, double-buffered asynchronous write path.

    Writes accumulate in the *fill* buffer; when it reaches
    ``buffer_requests`` it is flushed to the device while the other buffer
    fills.  ``blocked`` becomes True only when both buffers are full and a
    flush is still in flight — at that point the NF must yield.
    A periodic flush timer bounds the latency of trickle writes (the flush
    interval is "tunable by the NF implementation").
    """

    sync = False

    def __init__(
        self,
        loop: EventLoop,
        disk: DiskDevice,
        buffer_requests: int = 256,
        flush_interval_ns: int = 1_000_000,
        on_unblock: Optional[Callable[[], None]] = None,
    ):
        if buffer_requests <= 0:
            raise ValueError("buffer_requests must be positive")
        self.loop = loop
        self.disk = disk
        self.buffer_requests = int(buffer_requests)
        self.on_unblock = on_unblock
        # Fill buffer state (the in-flight buffer is implicit in _in_flight).
        self._fill_requests = 0
        self._fill_bytes = 0
        self._pending_requests = 0   # full buffer waiting for the device
        self._pending_bytes = 0
        self._in_flight = False
        self.flushes = 0
        self.requests = 0
        self.blocked_events = 0
        if flush_interval_ns and flush_interval_ns > 0:
            from repro.sim.process import PeriodicProcess

            self._flusher = PeriodicProcess(
                loop, int(flush_interval_ns), self._periodic_flush, "io-flush"
            )
            self._flusher.start()
        else:
            self._flusher = None

    # ------------------------------------------------------------------
    @property
    def blocked(self) -> bool:
        """True when the NF must suspend (both buffers full, flush busy)."""
        return self._pending_requests > 0 and self._fill_requests >= self.buffer_requests

    def submit(self, requests: int, nbytes: int, now_ns: int) -> bool:
        """Record ``requests`` writes totalling ``nbytes``.

        Writes land one buffer at a time, rotating through the double
        buffer as each fills.  Returns True while the NF may continue;
        False once both buffers are full (caller should stop processing
        and yield).  Overflow from an in-progress batch is banked in the
        fill buffer — those packets were already processed.
        """
        if requests <= 0:
            return not self.blocked
        self.requests += requests
        per_request = nbytes / requests
        remaining = requests
        while remaining > 0:
            space = self.buffer_requests - self._fill_requests
            if space <= 0:
                if self._pending_requests == 0:
                    self._rotate()
                    continue
                # Both buffers full: bank the rest and tell the NF to yield.
                self._fill_requests += remaining
                self._fill_bytes += per_request * remaining
                self.blocked_events += 1
                return False
            take = min(remaining, space)
            self._fill_requests += take
            self._fill_bytes += per_request * take
            remaining -= take
            if self._fill_requests >= self.buffer_requests \
                    and self._pending_requests == 0:
                self._rotate()
        return not self.blocked

    def _rotate(self) -> None:
        """Move the full fill buffer to pending and flush (device free)."""
        self._pending_requests = self._fill_requests
        self._pending_bytes = self._fill_bytes
        self._fill_requests = 0
        self._fill_bytes = 0
        self._start_flush()

    def _start_flush(self) -> None:
        if self._in_flight or self._pending_requests == 0:
            return
        self._in_flight = True
        self.flushes += 1
        self.disk.submit(self._pending_bytes, self._on_flush_done)

    def _on_flush_done(self) -> None:
        self._in_flight = False
        self._pending_requests = 0
        self._pending_bytes = 0
        if self._fill_requests >= self.buffer_requests:
            self._rotate()
        if self.on_unblock is not None:
            self.on_unblock()

    def _periodic_flush(self) -> None:
        """Flush a partially filled buffer so trickle writes complete."""
        if self._fill_requests > 0 and self._pending_requests == 0:
            self._pending_requests = self._fill_requests
            self._pending_bytes = self._fill_bytes
            self._fill_requests = 0
            self._fill_bytes = 0
            self._start_flush()

    def stop(self) -> None:
        if self._flusher is not None:
            self._flusher.stop()


class SyncIOContext:
    """Blocking writes: the NF stalls for the device round trip per write.

    This is the paper's implicit baseline; with it, one I/O-bound flow
    head-of-line blocks the whole NF (§4.3.5 and Figure 14 contrast).
    """

    sync = True

    def __init__(
        self,
        loop: EventLoop,
        disk: DiskDevice,
        on_unblock: Optional[Callable[[], None]] = None,
    ):
        self.loop = loop
        self.disk = disk
        self.on_unblock = on_unblock
        self._blocked = False
        self.requests = 0
        self.blocked_events = 0

    @property
    def blocked(self) -> bool:
        return self._blocked

    def submit(self, requests: int, nbytes: int, now_ns: int) -> bool:
        """One blocking write; the NF must yield immediately afterwards."""
        if requests <= 0:
            return not self._blocked
        self.requests += requests
        self._blocked = True
        self.blocked_events += 1
        self.disk.submit(nbytes, self._on_done)
        return False

    def _on_done(self) -> None:
        self._blocked = False
        if self.on_unblock is not None:
            self.on_unblock()

    def stop(self) -> None:
        return None
