"""Service-time histograms and windowed estimators.

NFVnice measures per-packet processing time inside each NF with ``rdtsc``
samples kept in a shared-memory histogram, and the Monitor estimates service
time as *the median over a 100 ms moving window* (paper §3.5).  Two tools
reproduce that:

* :class:`CycleHistogram` — log-bucketed histogram with percentile queries,
  matching "a histogram of timings, allowing NFVnice to efficiently estimate
  the service time at different percentiles" (§3.2).
* :class:`SlidingWindowEstimator` — timestamped samples with median/mean over
  a moving window, matching the Monitor's estimator.
"""

from __future__ import annotations

import math
from collections import deque
from math import log as _log
from typing import Any, Deque, Dict, List, Optional, Tuple


class CycleHistogram:
    """Logarithmic-bucket histogram for cycle counts.

    Buckets are powers of ``2**(1/bins_per_octave)`` so relative resolution
    is constant across the 50-to-10000-cycle span the paper's NFs cover.
    """

    def __init__(self, bins_per_octave: int = 4, max_value: float = 1e9):
        if bins_per_octave < 1:
            raise ValueError("bins_per_octave must be >= 1")
        self.bins_per_octave = bins_per_octave
        self._scale = bins_per_octave / math.log(2.0)
        n_bins = int(math.log(max_value) * self._scale) + 2
        self._counts: List[int] = [0] * n_bins
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # Last (value, bucket) pair: hot callers feed long runs of equal
        # values (constant per-NF service times, zero queue waits), so one
        # equality check replaces the log() almost every time.
        self._memo_value: Optional[float] = None
        self._memo_idx = 0

    def _bucket(self, value: float) -> int:
        if value < 1.0:
            return 0
        idx = int(math.log(value) * self._scale) + 1
        return min(idx, len(self._counts) - 1)

    def add(self, value: float, weight: int = 1) -> None:
        """Record a sample (``weight`` > 1 records it for that many packets)."""
        if value < 0:
            raise ValueError(f"negative sample: {value!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        # _bucket() inlined: add() runs once per forwarded segment, and the
        # extra call frame showed up in profiles.  The math must stay
        # bit-identical to _bucket() — percentiles feed digest-checked
        # results.
        counts = self._counts
        if value == self._memo_value:
            idx = self._memo_idx
        else:
            if value < 1.0:
                idx = 0
            else:
                idx = int(_log(value) * self._scale) + 1
                last = len(counts) - 1
                if idx > last:
                    idx = last
            self._memo_value = value
            self._memo_idx = idx
        counts[idx] += weight
        self.count += weight
        self.total += value * weight
        mn = self.min
        if mn is None or value < mn:
            self.min = value
        mx = self.max
        if mx is None or value > mx:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate the p-th percentile (0..100) from bucket boundaries.

        Returns the geometric midpoint of the bucket containing the rank,
        which is within one bucket-width of the true value.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for idx, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                if idx == 0:
                    return 0.5
                lo = math.exp((idx - 1) / self._scale)
                hi = math.exp(idx / self._scale)
                return math.sqrt(lo * hi)
        return self.max or 0.0

    def median(self) -> float:
        return self.percentile(50.0)

    def reset(self) -> None:
        for i in range(len(self._counts)):
            self._counts[i] = 0
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    # ------------------------------------------------------------------
    # Aggregation and canonical serialisation
    # ------------------------------------------------------------------
    def merge(self, other: "CycleHistogram") -> "CycleHistogram":
        """Fold ``other`` into this histogram bucket-by-bucket.

        Both histograms must use the same ``bins_per_octave`` (bucket
        boundaries line up exactly, so merging loses no precision beyond
        what each histogram already lost).  Merging per-worker histograms
        in a fixed (enumeration) order yields the same result for any
        worker count — the invariance contract the campaign runner's
        digests already follow.  Returns ``self`` for chaining.
        """
        if other.bins_per_octave != self.bins_per_octave:
            raise ValueError(
                f"cannot merge histograms with bins_per_octave "
                f"{other.bins_per_octave} into {self.bins_per_octave}"
            )
        if len(other._counts) > len(self._counts):
            self._counts.extend(
                [0] * (len(other._counts) - len(self._counts)))
            # The clamp boundary moved: a memoised clamped index would
            # now be wrong for the same value.
            self._memo_value = None
        for idx, c in enumerate(other._counts):
            if c:
                self._counts[idx] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe form (trailing empty buckets trimmed).

        Two histograms holding the same samples produce byte-identical
        dicts regardless of how they were accumulated or merged, except
        for ``total`` whose float sum is order-sensitive — callers that
        need bit-identical aggregates must merge in a fixed order.
        """
        counts = list(self._counts)
        while counts and counts[-1] == 0:
            counts.pop()
        return {
            "bins_per_octave": self.bins_per_octave,
            "n_bins": len(self._counts),
            "counts": counts,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CycleHistogram":
        """Rebuild a histogram from :meth:`to_dict` output (exact inverse)."""
        hist = cls(bins_per_octave=int(data["bins_per_octave"]))
        n_bins = int(data.get("n_bins", len(hist._counts)))
        counts = [int(c) for c in data.get("counts", [])]
        if n_bins < len(counts):
            n_bins = len(counts)
        hist._counts = counts + [0] * (n_bins - len(counts))
        hist.count = int(data.get("count", sum(counts)))
        hist.total = float(data.get("total", 0.0))
        hist.min = data.get("min")
        hist.max = data.get("max")
        return hist


class SlidingWindowEstimator:
    """Timestamped samples with statistics over a trailing time window.

    Mirrors the Monitor thread's estimator: libnf samples the per-packet
    processing time every millisecond; the Monitor takes the **median over a
    100 ms moving window** as the NF's estimated service time (§3.5), which
    is robust to samples inflated by context switches or I/O.
    """

    def __init__(self, window_ns: int = 100_000_000, warmup_discard: int = 0):
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.window_ns = int(window_ns)
        #: Samples discarded before the estimator starts listening; the paper
        #: drops the first 10 to warm the cache and skip outliers (§4.3.8).
        self.warmup_discard = warmup_discard
        self._discarded = 0
        self._samples: Deque[Tuple[int, float]] = deque()

    def add(self, now_ns: int, value: float) -> None:
        """Record a sample taken at simulated time ``now_ns``."""
        if self._discarded < self.warmup_discard:
            self._discarded += 1
            return
        self._samples.append((int(now_ns), float(value)))
        self._evict(int(now_ns))

    def _evict(self, now_ns: int) -> None:
        horizon = now_ns - self.window_ns
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def median(self, now_ns: int) -> Optional[float]:
        """Median of samples within the window, or None if empty."""
        self._evict(int(now_ns))
        if not self._samples:
            return None
        values = sorted(v for _, v in self._samples)
        n = len(values)
        mid = n // 2
        if n % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def mean(self, now_ns: int) -> Optional[float]:
        """Mean of samples within the window, or None if empty."""
        self._evict(int(now_ns))
        if not self._samples:
            return None
        return sum(v for _, v in self._samples) / len(self._samples)

    def __len__(self) -> int:
        return len(self._samples)
