"""Service-time histograms and windowed estimators.

NFVnice measures per-packet processing time inside each NF with ``rdtsc``
samples kept in a shared-memory histogram, and the Monitor estimates service
time as *the median over a 100 ms moving window* (paper §3.5).  Two tools
reproduce that:

* :class:`CycleHistogram` — log-bucketed histogram with percentile queries,
  matching "a histogram of timings, allowing NFVnice to efficiently estimate
  the service time at different percentiles" (§3.2).
* :class:`SlidingWindowEstimator` — timestamped samples with median/mean over
  a moving window, matching the Monitor's estimator.
"""

from __future__ import annotations

import math
from collections import deque
from math import log as _log
from typing import Deque, List, Optional, Tuple


class CycleHistogram:
    """Logarithmic-bucket histogram for cycle counts.

    Buckets are powers of ``2**(1/bins_per_octave)`` so relative resolution
    is constant across the 50-to-10000-cycle span the paper's NFs cover.
    """

    def __init__(self, bins_per_octave: int = 4, max_value: float = 1e9):
        if bins_per_octave < 1:
            raise ValueError("bins_per_octave must be >= 1")
        self.bins_per_octave = bins_per_octave
        self._scale = bins_per_octave / math.log(2.0)
        n_bins = int(math.log(max_value) * self._scale) + 2
        self._counts: List[int] = [0] * n_bins
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _bucket(self, value: float) -> int:
        if value < 1.0:
            return 0
        idx = int(math.log(value) * self._scale) + 1
        return min(idx, len(self._counts) - 1)

    def add(self, value: float, weight: int = 1) -> None:
        """Record a sample (``weight`` > 1 records it for that many packets)."""
        if value < 0:
            raise ValueError(f"negative sample: {value!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        # _bucket() inlined: add() runs once per forwarded segment, and the
        # extra call frame showed up in profiles.  The math must stay
        # bit-identical to _bucket() — percentiles feed digest-checked
        # results.
        counts = self._counts
        if value < 1.0:
            idx = 0
        else:
            idx = int(_log(value) * self._scale) + 1
            last = len(counts) - 1
            if idx > last:
                idx = last
        counts[idx] += weight
        self.count += weight
        self.total += value * weight
        mn = self.min
        if mn is None or value < mn:
            self.min = value
        mx = self.max
        if mx is None or value > mx:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate the p-th percentile (0..100) from bucket boundaries.

        Returns the geometric midpoint of the bucket containing the rank,
        which is within one bucket-width of the true value.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for idx, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                if idx == 0:
                    return 0.5
                lo = math.exp((idx - 1) / self._scale)
                hi = math.exp(idx / self._scale)
                return math.sqrt(lo * hi)
        return self.max or 0.0

    def median(self) -> float:
        return self.percentile(50.0)

    def reset(self) -> None:
        for i in range(len(self._counts)):
            self._counts[i] = 0
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None


class SlidingWindowEstimator:
    """Timestamped samples with statistics over a trailing time window.

    Mirrors the Monitor thread's estimator: libnf samples the per-packet
    processing time every millisecond; the Monitor takes the **median over a
    100 ms moving window** as the NF's estimated service time (§3.5), which
    is robust to samples inflated by context switches or I/O.
    """

    def __init__(self, window_ns: int = 100_000_000, warmup_discard: int = 0):
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.window_ns = int(window_ns)
        #: Samples discarded before the estimator starts listening; the paper
        #: drops the first 10 to warm the cache and skip outliers (§4.3.8).
        self.warmup_discard = warmup_discard
        self._discarded = 0
        self._samples: Deque[Tuple[int, float]] = deque()

    def add(self, now_ns: int, value: float) -> None:
        """Record a sample taken at simulated time ``now_ns``."""
        if self._discarded < self.warmup_discard:
            self._discarded += 1
            return
        self._samples.append((int(now_ns), float(value)))
        self._evict(int(now_ns))

    def _evict(self, now_ns: int) -> None:
        horizon = now_ns - self.window_ns
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def median(self, now_ns: int) -> Optional[float]:
        """Median of samples within the window, or None if empty."""
        self._evict(int(now_ns))
        if not self._samples:
            return None
        values = sorted(v for _, v in self._samples)
        n = len(values)
        mid = n // 2
        if n % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def mean(self, now_ns: int) -> Optional[float]:
        """Mean of samples within the window, or None if empty."""
        self._evict(int(now_ns))
        if not self._samples:
            return None
        return sum(v for _, v in self._samples) / len(self._samples)

    def __len__(self) -> int:
        return len(self._samples)
