"""Jain's fairness index (paper §4.3.6, Figure 15b).

``J = (sum x_i)^2 / (n * sum x_i^2)`` — 1.0 when all allocations are equal,
``1/n`` when a single member receives everything.
"""

from __future__ import annotations

from typing import Sequence


def jain_index(values: Sequence[float]) -> float:
    """Return Jain's fairness index of ``values``.

    An empty sequence or an all-zero sequence has no meaningful fairness;
    by convention we return 1.0 (everyone equally got nothing).
    Negative allocations are rejected.
    """
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError("allocations must be non-negative")
    total = float(sum(values))
    if total == 0.0:
        return 1.0
    sq = sum(float(v) * float(v) for v in values)
    if sq == 0.0:
        # Subnormal allocations whose squares underflow to zero: everyone
        # got (effectively) nothing, equally.
        return 1.0
    return total * total / (len(values) * sq)
