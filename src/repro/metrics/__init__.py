"""Measurement infrastructure.

The paper's evaluation reports per-second throughput/drop samples, context
switch counts from ``sar``/``pidstat``, scheduling delay and runtime from
``perf sched``, CPU utilisation, Jain's fairness index and service-time
percentiles.  This package provides the simulator-side equivalents:

* :mod:`~repro.metrics.counters` — monotonic packet/byte/drop counters.
* :mod:`~repro.metrics.histogram` — cycle histograms with percentile
  estimation and the 100 ms sliding-window median used by the Monitor.
* :mod:`~repro.metrics.timeseries` — time series and interval samplers.
* :mod:`~repro.metrics.fairness` — Jain's fairness index.
* :mod:`~repro.metrics.report` — plain-text table rendering for benches.
"""

from repro.metrics.counters import Counter, PacketCounter
from repro.metrics.fairness import jain_index
from repro.metrics.histogram import CycleHistogram, SlidingWindowEstimator
from repro.metrics.report import format_value, render_table
from repro.metrics.timeseries import IntervalSampler, TimeSeries

__all__ = [
    "Counter",
    "PacketCounter",
    "jain_index",
    "CycleHistogram",
    "SlidingWindowEstimator",
    "render_table",
    "format_value",
    "TimeSeries",
    "IntervalSampler",
]
