"""Monotonic counters.

Counters are deliberately dumb: they only accumulate.  Rates and deltas are
derived by :class:`~repro.metrics.timeseries.IntervalSampler`, mirroring how
the paper samples testbed counters once per second.
"""

from __future__ import annotations


class Counter:
    """A single monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (add {n})")
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class PacketCounter:
    """Packets and bytes together, since throughput is reported in both.

    The paper quotes Mpps for 64-byte workloads and Gbps for iperf flows;
    carrying bytes alongside packets lets any experiment report either.
    """

    __slots__ = ("name", "packets", "bytes")

    def __init__(self, name: str = ""):
        self.name = name
        self.packets = 0
        self.bytes = 0

    def add(self, packets: int, nbytes: int = 0) -> None:
        if packets < 0 or nbytes < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease "
                f"(add packets={packets}, bytes={nbytes})"
            )
        self.packets += packets
        self.bytes += nbytes

    def reset(self) -> None:
        self.packets = 0
        self.bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PacketCounter({self.name!r}, pkts={self.packets}, bytes={self.bytes})"
