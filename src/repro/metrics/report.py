"""Plain-text table rendering for benchmark output.

Every bench prints the same rows/series its paper artifact reports; these
helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_value(value, precision: int = 3) -> str:
    """Human formatting: floats trimmed, large counts with SI suffixes."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e9:
            return f"{value / 1e9:.{precision}g}G"
        if magnitude >= 1e6:
            return f"{value / 1e6:.{precision}g}M"
        if magnitude >= 1e3:
            return f"{value / 1e3:.{precision}g}K"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned monospace table with an optional title banner."""
    str_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append("")
        lines.append(f"=== {title} ===")
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
