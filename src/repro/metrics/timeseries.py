"""Time series and interval sampling.

The paper's bar plots show "the average, the minimum and maximum values
observed across the samples collected every second during the experiment"
(§4.1).  :class:`IntervalSampler` reproduces exactly that workflow: it
snapshots a set of counters every interval and converts deltas to rates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.clock import SEC
from repro.sim.engine import EventLoop
from repro.sim.process import PeriodicProcess


class TimeSeries:
    """An append-only series of (time_ns, value) points."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []

    def append(self, time_ns: int, value: float) -> None:
        if self.times and time_ns < self.times[-1]:
            raise ValueError(
                f"series {self.name!r} is append-only "
                f"({time_ns} < {self.times[-1]})"
            )
        self.times.append(int(time_ns))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    # Summary statistics used by the bar plots (avg with min/max whiskers).
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def summary(self) -> Tuple[float, float, float]:
        """(mean, min, max) — the triple every bar plot reports."""
        return self.mean(), self.min(), self.max()

    def between(self, t0: int, t1: int) -> "TimeSeries":
        """Sub-series with ``t0 <= time < t1`` (e.g. the UDP-on interval)."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if t0 <= t < t1:
                out.append(t, v)
        return out


class IntervalSampler:
    """Samples named probes on a fixed period into :class:`TimeSeries`.

    Probes return a monotonic value; the sampler records either the value
    itself (``rate=False``) or the per-second rate of its delta over the
    sampling interval (``rate=True``), which is how "packets per second"
    figures in the paper are produced.
    """

    def __init__(self, loop: EventLoop, period_ns: int = SEC):
        self.loop = loop
        self.period_ns = int(period_ns)
        self._probes: List[Tuple[str, Callable[[], float], bool]] = []
        self._last: Dict[str, float] = {}
        self.series: Dict[str, TimeSeries] = {}
        self._proc = PeriodicProcess(loop, self.period_ns, self._sample, "sampler")

    def add_probe(self, name: str, fn: Callable[[], float], rate: bool = True) -> None:
        """Register ``fn``; ``rate=True`` records d(fn)/dt per second."""
        if name in self.series:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes.append((name, fn, rate))
        self.series[name] = TimeSeries(name)
        self._last[name] = float(fn())

    def start(self) -> None:
        self._proc.start()

    def stop(self) -> None:
        self._proc.stop()

    def _sample(self) -> None:
        now = self.loop.now
        scale = SEC / self.period_ns
        for name, fn, rate in self._probes:
            value = float(fn())
            if rate:
                delta = value - self._last[name]
                self._last[name] = value
                self.series[name].append(now, delta * scale)
            else:
                self.series[name].append(now, value)

    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]
