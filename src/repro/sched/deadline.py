"""Deadline-cognizant CFS and the Monitor's SLO-miss projection.

Two halves of one control loop:

* :class:`DeadlineCFSScheduler` — the *policy* half.  Plain CFS mechanics
  (weighted vruntime, rbtree runqueue, kernel time slices) so every
  fairness property of :class:`~repro.sched.cfs.CFSScheduler` still
  holds, plus deadline cognizance at the two points a policy can act
  without touching vruntime: a waking task whose head-of-ring deadline is
  earlier than the current task's preempts immediately, and a task
  dispatched with little slack left gets a fuller slice so it drains its
  backlog instead of ping-ponging.  Crucially it never *lowers* any
  vruntime — per-task vruntime stays monotone, the invariant the property
  suite pins.
* :func:`project_slo_miss` — the *mechanism* half used by
  :class:`~repro.core.monitor.SLOGovernor`.  A pure predicate over a PR 6
  percentile snapshot and ring occupancy: it projects a miss either when
  p99 already exceeds the SLO, or when p99 is inside the headroom band
  *and* ring occupancy says the backlog is still growing.  A p99 exactly
  equal to the SLO is compliant — the inequality is strict on purpose,
  and tested at that boundary.

The cpu.shares reweighting and chain-aware core reallocation themselves
live in the Monitor (:class:`~repro.core.monitor.SLOGovernor`), which
multiplies NFVnice's priority factor per chain and migrates the
bottleneck NF of a persistently missing chain to a spare core.
"""

from __future__ import annotations

from repro.sched.base import CoreTask
from repro.sched.cfs import CFSScheduler
from repro.sched.edf import task_deadline
from repro.sim.clock import MSEC, USEC


def project_slo_miss(p99_us: float, slo_us: float, occupancy: float,
                     occupancy_threshold: float = 0.5,
                     headroom: float = 0.8) -> bool:
    """Project whether a chain is missing (or about to miss) its SLO.

    ``p99_us`` is the chain's observed p99 sojourn, ``slo_us`` its budget,
    ``occupancy`` the worst Rx-ring fill fraction (0..1) along the chain.

    * ``p99 > slo`` — already missing.  Strict: a p99 **exactly at** the
      SLO is compliant.
    * ``p99 > headroom * slo`` with ``occupancy >= occupancy_threshold``
      — inside the danger band while queues are deep: the backlog will
      push the tail over the budget, so act before the miss materialises.
    """
    if slo_us <= 0:
        return False
    if p99_us > slo_us:
        return True
    return occupancy >= occupancy_threshold and p99_us > headroom * slo_us


class DeadlineCFSScheduler(CFSScheduler):
    """CFS with deadline-driven preemption and urgency-sized slices."""

    name = "DEADLINE"

    def __init__(
        self,
        sched_latency_ns: int = 6 * MSEC,
        min_granularity_ns: int = 750 * USEC,
        wakeup_granularity_ns: int = 1 * MSEC,
        default_slo_ns: int = 10 * MSEC,
        urgency_ns: int = 500 * USEC,
        urgent_slice_ns: int = 2 * MSEC,
    ):
        super().__init__(
            sched_latency_ns=sched_latency_ns,
            min_granularity_ns=min_granularity_ns,
            wakeup_granularity_ns=wakeup_granularity_ns,
            wakeup_preemption=True,
        )
        if default_slo_ns <= 0:
            raise ValueError("default_slo_ns must be positive")
        self.default_slo_ns = int(default_slo_ns)
        #: Remaining slack at or below which a task counts as urgent.
        self.urgency_ns = int(urgency_ns)
        #: Slice floor granted to an urgent task (never *shrinks* the
        #: fair slice — urgency can only extend it).
        self.urgent_slice_ns = int(urgent_slice_ns)

    # ------------------------------------------------------------------
    def enqueue(self, task: CoreTask, now_ns: int, wakeup: bool) -> None:
        # Stamp the head-of-ring deadline alongside the CFS enqueue so
        # preempts_on_wake (which has no ``now``) can compare absolute
        # deadlines.  Same inheritance rule as EDF: origin_ns + flow SLO.
        task.edf_deadline_ns = task_deadline(task, now_ns,
                                             self.default_slo_ns)
        super().enqueue(task, now_ns, wakeup)

    def time_slice(self, task: CoreTask, now_ns: int) -> float:
        slice_ns = super().time_slice(task, now_ns)
        deadline = task_deadline(task, now_ns, self.default_slo_ns)
        if deadline - now_ns <= self.urgency_ns:
            urgent = self.urgent_slice_ns
            if urgent > slice_ns:
                return urgent
        return slice_ns

    def preempts_on_wake(self, woken: CoreTask, current: CoreTask,
                         current_ran_ns: float) -> bool:
        woken_deadline = getattr(woken, "edf_deadline_ns", None)
        current_deadline = getattr(current, "edf_deadline_ns", None)
        if (woken_deadline is not None and current_deadline is not None
                and woken_deadline < current_deadline):
            # The current task's stamp is from its last enqueue; running
            # only drains its ring, pushing the true deadline later, so
            # the stale stamp under-preempts — never thrashes.
            return True
        return super().preempts_on_wake(woken, current, current_ran_ns)
