"""A red-black tree keyed by ``(key, seq)``.

The kernel's CFS keeps runnable tasks in a red-black tree ordered by
vruntime and always runs the leftmost node; this is a faithful (if compact)
reimplementation supporting exactly the operations CFS needs: insert,
remove-by-node, and leftmost lookup.  Ties on ``key`` are broken by a
monotonically increasing sequence number so insertion order is stable.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

RED = True
BLACK = False


class RBNode:
    """Tree node; ``value`` is the payload (a task)."""

    __slots__ = ("key", "seq", "value", "left", "right", "parent", "color")

    def __init__(self, key: float, seq: int, value: Any):
        self.key = key
        self.seq = seq
        self.value = value
        self.left: Optional[RBNode] = None
        self.right: Optional[RBNode] = None
        self.parent: Optional[RBNode] = None
        self.color = RED

    def _less(self, other: "RBNode") -> bool:
        if self.key != other.key:
            return self.key < other.key
        return self.seq < other.seq


class RBTree:
    """Red-black tree with O(log n) insert/remove and O(1) leftmost."""

    def __init__(self) -> None:
        self.root: Optional[RBNode] = None
        self._leftmost: Optional[RBNode] = None
        self._size = 0
        self._seq = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def insert(self, key: float, value: Any) -> RBNode:
        """Insert ``value`` under ``key``; returns the node for later removal."""
        self._seq += 1
        node = RBNode(key, self._seq, value)
        # BST insert
        parent = None
        cur = self.root
        is_left_path = True
        while cur is not None:
            parent = cur
            if node._less(cur):
                cur = cur.left
            else:
                cur = cur.right
                is_left_path = False
        node.parent = parent
        if parent is None:
            self.root = node
        elif node._less(parent):
            parent.left = node
        else:
            parent.right = node
        if is_left_path:
            self._leftmost = node
        self._size += 1
        self._insert_fixup(node)
        return node

    def min_node(self) -> Optional[RBNode]:
        """Leftmost (minimum) node, or None when empty."""
        return self._leftmost

    def min_key(self) -> Optional[float]:
        return self._leftmost.key if self._leftmost is not None else None

    def remove(self, node: RBNode) -> None:
        """Remove ``node`` (must currently be in the tree)."""
        if self._leftmost is node:
            self._leftmost = self._successor(node)
        self._delete(node)
        self._size -= 1

    def pop_min(self) -> Optional[Any]:
        """Remove and return the payload of the leftmost node."""
        node = self._leftmost
        if node is None:
            return None
        self.remove(node)
        return node.value

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order (key, value) iterator — used by tests and invariants."""
        stack = []
        cur = self.root
        while stack or cur is not None:
            while cur is not None:
                stack.append(cur)
                cur = cur.left
            cur = stack.pop()
            yield cur.key, cur.value
            cur = cur.right

    # ------------------------------------------------------------------
    # Internals: rotations and fixups (CLRS)
    # ------------------------------------------------------------------
    def _successor(self, node: RBNode) -> Optional[RBNode]:
        if node.right is not None:
            cur = node.right
            while cur.left is not None:
                cur = cur.left
            return cur
        cur = node
        parent = node.parent
        while parent is not None and cur is parent.right:
            cur = parent
            parent = parent.parent
        return parent

    def _rotate_left(self, x: RBNode) -> None:
        y = x.right
        assert y is not None
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: RBNode) -> None:
        y = x.left
        assert y is not None
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: RBNode) -> None:
        while z.parent is not None and z.parent.color is RED:
            gp = z.parent.parent
            assert gp is not None  # red parent always has a parent
            if z.parent is gp.left:
                uncle = gp.right
                if uncle is not None and uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_right(gp)
            else:
                uncle = gp.left
                if uncle is not None and uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_left(gp)
        assert self.root is not None
        self.root.color = BLACK

    def _transplant(self, u: RBNode, v: Optional[RBNode]) -> None:
        if u.parent is None:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        if v is not None:
            v.parent = u.parent

    def _delete(self, z: RBNode) -> None:
        y = z
        y_original_color = y.color
        x: Optional[RBNode]
        x_parent: Optional[RBNode]
        if z.left is None:
            x = z.right
            x_parent = z.parent
            self._transplant(z, z.right)
        elif z.right is None:
            x = z.left
            x_parent = z.parent
            self._transplant(z, z.left)
        else:
            y = z.right
            while y.left is not None:
                y = y.left
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x_parent = y
            else:
                x_parent = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color is BLACK:
            self._delete_fixup(x, x_parent)
        z.parent = z.left = z.right = None

    def _delete_fixup(self, x: Optional[RBNode], x_parent: Optional[RBNode]) -> None:
        while x is not self.root and (x is None or x.color is BLACK):
            if x_parent is None:
                break
            if x is x_parent.left:
                w = x_parent.right
                if w is not None and w.color is RED:
                    w.color = BLACK
                    x_parent.color = RED
                    self._rotate_left(x_parent)
                    w = x_parent.right
                if w is None:
                    x = x_parent
                    x_parent = x.parent
                    continue
                w_left_black = w.left is None or w.left.color is BLACK
                w_right_black = w.right is None or w.right.color is BLACK
                if w_left_black and w_right_black:
                    w.color = RED
                    x = x_parent
                    x_parent = x.parent
                else:
                    if w_right_black:
                        if w.left is not None:
                            w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x_parent.right
                    assert w is not None
                    w.color = x_parent.color
                    x_parent.color = BLACK
                    if w.right is not None:
                        w.right.color = BLACK
                    self._rotate_left(x_parent)
                    x = self.root
                    x_parent = None
            else:
                w = x_parent.left
                if w is not None and w.color is RED:
                    w.color = BLACK
                    x_parent.color = RED
                    self._rotate_right(x_parent)
                    w = x_parent.left
                if w is None:
                    x = x_parent
                    x_parent = x.parent
                    continue
                w_left_black = w.left is None or w.left.color is BLACK
                w_right_black = w.right is None or w.right.color is BLACK
                if w_left_black and w_right_black:
                    w.color = RED
                    x = x_parent
                    x_parent = x.parent
                else:
                    if w_left_black:
                        if w.right is not None:
                            w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x_parent.left
                    assert w is not None
                    w.color = x_parent.color
                    x_parent.color = BLACK
                    if w.left is not None:
                        w.left.color = BLACK
                    self._rotate_right(x_parent)
                    x = self.root
                    x_parent = None
        if x is not None:
            x.color = BLACK
