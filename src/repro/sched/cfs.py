"""The Completely Fair Scheduler model (SCHED_NORMAL and SCHED_BATCH).

Faithful to the kernel mechanics the paper leans on (§2.2):

* every task carries a monotonically increasing **virtual runtime**; the
  runqueue is a red-black tree ordered by vruntime and the leftmost task
  runs next;
* vruntime accrues as ``wall_time * NICE_0_WEIGHT / task.weight`` — this is
  precisely how cgroup cpu.shares written by NFVnice's Monitor steer the
  kernel without any kernel change;
* the time slice is not fixed: a scheduling period of
  ``max(sched_latency, nr_running * min_granularity)`` is split between
  runnable tasks in proportion to weight;
* a waking task preempts the current one when its vruntime lags by more
  than the wakeup granularity (``SCHED_NORMAL`` only — ``SCHED_BATCH``
  disables wakeup preemption, which is why it context-switches orders of
  magnitude less, Table 2).
"""

from __future__ import annotations

from typing import Optional

from repro.sched.base import CoreTask, Scheduler
from repro.sched.rbtree import RBTree
from repro.sim.clock import MSEC, USEC

#: The weight of a nice-0 task; cgroup cpu.shares defaults to this.
NICE_0_WEIGHT = 1024


class CFSScheduler(Scheduler):
    """SCHED_NORMAL: fine-grained fairness with wakeup preemption."""

    name = "NORMAL"

    def __init__(
        self,
        sched_latency_ns: int = 6 * MSEC,
        min_granularity_ns: int = 750 * USEC,
        wakeup_granularity_ns: int = 1 * MSEC,
        wakeup_preemption: bool = True,
    ):
        self.sched_latency_ns = int(sched_latency_ns)
        self.min_granularity_ns = int(min_granularity_ns)
        self.wakeup_granularity_ns = int(wakeup_granularity_ns)
        self.wakeup_preemption = wakeup_preemption
        self._tree = RBTree()
        self._ready_weight = 0
        self.min_vruntime = 0.0

    # ------------------------------------------------------------------
    # Runqueue membership
    # ------------------------------------------------------------------
    def enqueue(self, task: CoreTask, now_ns: int, wakeup: bool) -> None:
        if task.sched_node is not None:
            raise RuntimeError(f"{task.name} already enqueued")
        if wakeup:
            # Sleeper fairness: a task waking from a long block is placed at
            # most half a latency period behind min_vruntime, so it gets a
            # modest boost without starving everyone else
            # (GENTLE_FAIR_SLEEPERS).
            floor = self.min_vruntime - self.sched_latency_ns / 2.0
            if task.vruntime < floor:
                task.vruntime = floor
        task.sched_node = self._tree.insert(task.vruntime, task)
        self._ready_weight += task.weight

    def dequeue(self, task: CoreTask, now_ns: int) -> None:
        if task.sched_node is None:
            return
        self._tree.remove(task.sched_node)
        task.sched_node = None
        self._ready_weight -= task.weight

    def pick_next(self, now_ns: int) -> Optional[CoreTask]:
        task = self._tree.pop_min()
        if task is None:
            return None
        task.sched_node = None
        self._ready_weight -= task.weight
        self._advance_min_vruntime(task.vruntime)
        return task

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------
    def time_slice(self, task: CoreTask, now_ns: int) -> float:
        """The kernel's ``sched_slice()``: weight share of the period."""
        nr_running = len(self._tree) + 1  # queued plus the task dispatching
        period = max(self.sched_latency_ns, nr_running * self.min_granularity_ns)
        total_weight = self._ready_weight + task.weight
        slice_ns = period * task.weight / total_weight
        return max(slice_ns, self.min_granularity_ns)

    def charge(self, task: CoreTask, delta_ns: float) -> None:
        task.vruntime += delta_ns * NICE_0_WEIGHT / task.weight
        self._advance_min_vruntime(task.vruntime)

    def _advance_min_vruntime(self, running_vruntime: float) -> None:
        candidate = running_vruntime
        left = self._tree.min_key()
        if left is not None and left < candidate:
            candidate = left
        if candidate > self.min_vruntime:
            self.min_vruntime = candidate

    def on_weight_change(self, task: CoreTask, old: int, new: int) -> None:
        """Keep the aggregate ready weight in sync with cgroup writes
        that land while the task is enqueued."""
        if task.sched_node is not None:
            self._ready_weight += new - old

    # ------------------------------------------------------------------
    # Wakeup preemption
    # ------------------------------------------------------------------
    def preempts_on_wake(self, woken: CoreTask, current: CoreTask,
                         current_ran_ns: float) -> bool:
        if not self.wakeup_preemption:
            return False
        # The runner's vruntime is charged lazily at segment end; project it.
        projected = current.vruntime + current_ran_ns * NICE_0_WEIGHT / current.weight
        # wakeup_granularity is wall time; convert to the woken task's
        # virtual time, as the kernel's wakeup_gran() does.
        gran_virtual = self.wakeup_granularity_ns * NICE_0_WEIGHT / woken.weight
        return projected - woken.vruntime > gran_virtual

    @property
    def nr_ready(self) -> int:
        return len(self._tree)


class CFSBatchScheduler(CFSScheduler):
    """SCHED_BATCH: CFS fairness with wakeup preemption off and a coarser
    quantum — fewer timer interrupts, longer runs, far fewer involuntary
    context switches (paper §2.2, Tables 1-2)."""

    name = "BATCH"

    def __init__(
        self,
        sched_latency_ns: int = 6 * MSEC,
        min_granularity_ns: int = 1500 * USEC,
    ):
        super().__init__(
            sched_latency_ns=sched_latency_ns,
            min_granularity_ns=min_granularity_ns,
            wakeup_granularity_ns=0,
            wakeup_preemption=False,
        )
