"""Cooperative user-space scheduling — the L-threads alternative (§5).

The paper's related work weighs DPDK's L-thread-style cooperative
user-space scheduling and rejects it for two documented reasons:

  a) "they invariably require the threads to cooperate, i.e., each thread
     must voluntarily yield ... without which progress of the threads
     cannot be guaranteed";
  b) "as there is no specific scheduling policy (it is just FIFO based),
     all the L-threads share the same priority ... and thus lack the
     ability to perform selective prioritization."

:class:`CooperativeScheduler` models exactly that: a FIFO runqueue, an
unbounded quantum (no preemption whatsoever — not even on wakeup), and no
weight accounting.  Well-behaved NFs that yield between batches work fine;
a single misbehaving NF that never yields starves the whole core, and
cgroup weights written by the Monitor have no effect — the two failure
modes the comparison experiment demonstrates.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

from repro.sched.base import CoreTask, Scheduler


class CooperativeScheduler(Scheduler):
    """FIFO run-to-yield scheduling with no preemption and no priorities."""

    name = "COOP"

    def __init__(self) -> None:
        self._queue: Deque[CoreTask] = deque()

    def enqueue(self, task: CoreTask, now_ns: int, wakeup: bool) -> None:
        if task.sched_node is not None:
            raise RuntimeError(f"{task.name} already enqueued")
        task.sched_node = True
        self._queue.append(task)

    def dequeue(self, task: CoreTask, now_ns: int) -> None:
        if task.sched_node is None:
            return
        self._queue.remove(task)
        task.sched_node = None

    def pick_next(self, now_ns: int) -> Optional[CoreTask]:
        if not self._queue:
            return None
        task = self._queue.popleft()
        task.sched_node = None
        return task

    def time_slice(self, task: CoreTask, now_ns: int) -> float:
        # No timer interrupt exists: the task runs until it yields.
        return math.inf

    def charge(self, task: CoreTask, delta_ns: float) -> None:
        # No virtual-time or priority accounting of any kind.
        return None

    @property
    def nr_ready(self) -> int:
        return len(self._queue)
