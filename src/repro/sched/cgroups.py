"""The cgroup cpu.shares control surface.

NFVnice "leverages cgroups, a standard user space primitive provided by the
operating system to manipulate process scheduling" (§3).  The Monitor thread
writes computed shares through the cgroup *virtual filesystem*; the paper
measures that write at ~5 µs, which is why weight updates are batched onto a
10 ms period instead of being done on the data path (§3.5).

This model keeps both the mechanism (weights consumed by the CFS vruntime
scaling) and the cost accounting (number of sysfs writes and the time they
would have burned).
"""

from __future__ import annotations

from typing import Dict

from repro.sched.base import CoreTask
from repro.sim.clock import USEC

#: Measured cost of one write to the cgroup sysfs (paper §4.3.8).
SYSFS_WRITE_NS = 5 * USEC

#: Kernel bounds on cpu.shares.
MIN_SHARES = 2
MAX_SHARES = 262_144


class CgroupController:
    """Applies cpu.shares to tasks and accounts the sysfs writes."""

    def __init__(self, sysfs_write_ns: int = SYSFS_WRITE_NS):
        self.sysfs_write_ns = int(sysfs_write_ns)
        self.writes = 0
        self.write_time_ns = 0
        self._shares: Dict[str, int] = {}

    def set_shares(self, task: CoreTask, shares: float) -> int:
        """Write ``cpu.shares`` for ``task``; returns the clamped value.

        Writes are skipped when the value is unchanged — re-writing an
        identical weight costs a syscall for nothing, so the Monitor avoids
        it and so do we.
        """
        value = int(round(shares))
        value = max(MIN_SHARES, min(MAX_SHARES, value))
        if self._shares.get(task.name) == value:
            return value
        self._shares[task.name] = value
        self.writes += 1
        self.write_time_ns += self.sysfs_write_ns
        task.weight = value
        return value

    def get_shares(self, task: CoreTask) -> int:
        return self._shares.get(task.name, task.weight)
