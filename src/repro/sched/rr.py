"""SCHED_RR: the real-time round-robin policy.

The paper evaluates RR with 1 ms and 100 ms time slices.  RR "simply cycles
through processes ... but does not attempt to offer any concept of fairness"
(§2.2): the quantum is fixed, weights are ignored, and a waking task never
preempts the current one.  Tasks that yield early (out of packets) simply
give up the remainder of their quantum — which is why RR approximates rate
proportionality for homogeneous NFs but lets heavyweight NFs hog the CPU for
heterogeneous ones.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sched.base import CoreTask, Scheduler
from repro.sim.clock import MSEC


class RRScheduler(Scheduler):
    """Fixed-quantum round robin over a FIFO runqueue."""

    def __init__(self, quantum_ns: int = 100 * MSEC):
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        self.quantum_ns = int(quantum_ns)
        self._queue: Deque[CoreTask] = deque()
        self.name = f"RR({self._label()})"

    def _label(self) -> str:
        if self.quantum_ns % MSEC == 0:
            return f"{self.quantum_ns // MSEC}ms"
        return f"{self.quantum_ns}ns"

    def enqueue(self, task: CoreTask, now_ns: int, wakeup: bool) -> None:
        if task.sched_node is not None:
            raise RuntimeError(f"{task.name} already enqueued")
        task.sched_node = True  # membership marker
        self._queue.append(task)

    def dequeue(self, task: CoreTask, now_ns: int) -> None:
        if task.sched_node is None:
            return
        self._queue.remove(task)
        task.sched_node = None

    def pick_next(self, now_ns: int) -> Optional[CoreTask]:
        if not self._queue:
            return None
        task = self._queue.popleft()
        task.sched_node = None
        return task

    def time_slice(self, task: CoreTask, now_ns: int) -> float:
        return self.quantum_ns

    def charge(self, task: CoreTask, delta_ns: float) -> None:
        # RR keeps no virtual-time accounting.
        return None

    @property
    def nr_ready(self) -> int:
        return len(self._queue)
