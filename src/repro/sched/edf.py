"""Earliest-deadline-first scheduling over per-flow SLO budgets.

NFVnice's cgroup-weight tuning optimises *rate* fairness; an SLO says
something about *latency*: every packet must clear its chain within a
per-flow budget (*Scheduling Network Function Chains Under Sub-Millisecond
Latency SLOs*).  The EDF policy orders NFs by the earliest projected
completion deadline of the packet at the head of their Rx ring:

* a packet's deadline is ``origin_ns + slo_ns`` — ``origin_ns`` is stamped
  once at NIC arrival and carried through every hop, so a downstream NF
  **inherits** the end-to-end deadline of the traffic it is holding
  (deadline inheritance across the chain);
* the per-flow budget comes from the SLO class declared on the
  ``Scenario`` (``Flow.slo_ns``); flows without a declared class fall
  back to ``default_slo_ns``;
* a task with an empty ring (or one that is not an NF at all) is queued
  at ``now + default_slo_ns`` — FIFO aging, which also gives the
  no-starvation argument: deadlines are fixed at enqueue time while every
  later arrival's origin (hence deadline) only grows, so a waiting task's
  key eventually becomes the minimum.

The policy asks tasks for their deadline through an *optional* duck-typed
hook — ``task.deadline_ns(now_ns, default_slo_ns)`` returning an absolute
deadline or ``None`` — so plain :class:`~repro.sched.base.CoreTask`
subclasses (housekeeping threads, test tasks) schedule under EDF without
changes.

Unlike CFS there is no virtual-time fairness here: ``vruntime`` is kept
as a monotone mirror of wall runtime purely so traces and invariants read
consistently, and the policy intentionally exposes no ``min_vruntime``
(the sanitizer skips its CFS-specific monotonicity check).
"""

from __future__ import annotations

from typing import Optional

from repro.sched.base import CoreTask, Scheduler
from repro.sched.rbtree import RBTree
from repro.sim.clock import MSEC


def task_deadline(task: CoreTask, now_ns: int, default_slo_ns: int) -> int:
    """Absolute deadline used as the runqueue key for ``task``.

    Tasks exposing ``deadline_ns(now_ns, default_slo_ns)`` (NF processes)
    are asked; everything else — and an NF whose hook returns ``None``
    because its ring is empty — ages FIFO at ``now + default_slo_ns``.
    """
    hook = getattr(task, "deadline_ns", None)
    if hook is not None:
        deadline = hook(now_ns, default_slo_ns)
        if deadline is not None:
            return int(deadline)
    return now_ns + default_slo_ns


class EDFScheduler(Scheduler):
    """SCHED_DEADLINE-flavoured EDF over head-of-ring packet deadlines."""

    name = "EDF"

    def __init__(
        self,
        default_slo_ns: int = 10 * MSEC,
        quantum_ns: int = 1 * MSEC,
        wakeup_preemption: bool = True,
    ):
        if default_slo_ns <= 0:
            raise ValueError("default_slo_ns must be positive")
        if quantum_ns <= 0:
            raise ValueError("quantum_ns must be positive")
        self.default_slo_ns = int(default_slo_ns)
        self.quantum_ns = int(quantum_ns)
        self.wakeup_preemption = wakeup_preemption
        self._tree = RBTree()

    # ------------------------------------------------------------------
    # Runqueue membership
    # ------------------------------------------------------------------
    def enqueue(self, task: CoreTask, now_ns: int, wakeup: bool) -> None:
        if task.sched_node is not None:
            raise RuntimeError(f"{task.name} already enqueued")
        # Recomputed on every enqueue — including the requeue after an
        # exhausted quantum — so the key tracks the ring head as it drains.
        deadline = task_deadline(task, now_ns, self.default_slo_ns)
        task.edf_deadline_ns = deadline
        task.sched_node = self._tree.insert(deadline, task)

    def dequeue(self, task: CoreTask, now_ns: int) -> None:
        if task.sched_node is None:
            return
        self._tree.remove(task.sched_node)
        task.sched_node = None

    def pick_next(self, now_ns: int) -> Optional[CoreTask]:
        task = self._tree.pop_min()
        if task is None:
            return None
        task.sched_node = None
        return task

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------
    def time_slice(self, task: CoreTask, now_ns: int) -> float:
        return self.quantum_ns

    def charge(self, task: CoreTask, delta_ns: float) -> None:
        # No virtual-time fairness under EDF; vruntime mirrors wall
        # runtime so per-task monotonicity invariants hold unchanged.
        task.vruntime += delta_ns

    # ------------------------------------------------------------------
    # Wakeup preemption
    # ------------------------------------------------------------------
    def preempts_on_wake(self, woken: CoreTask, current: CoreTask,
                         current_ran_ns: float) -> bool:
        if not self.wakeup_preemption:
            return False
        woken_deadline = getattr(woken, "edf_deadline_ns", None)
        current_deadline = getattr(current, "edf_deadline_ns", None)
        if woken_deadline is None or current_deadline is None:
            return False
        # The current task's key was fixed when it was last enqueued;
        # running can only push its true deadline later (it drains its
        # ring), so comparing against the stale key errs on the side of
        # not preempting — thrash-free by construction.
        return woken_deadline < current_deadline

    @property
    def nr_ready(self) -> int:
        return len(self._tree)
