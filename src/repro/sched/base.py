"""Scheduler and task interfaces shared by all policies.

A :class:`CoreTask` is anything a :class:`~repro.sched.core.Core` can run —
in this reproduction, NF processes.  The core asks a task two things:

* ``estimate_run_ns(now)`` — how long it would run before *voluntarily*
  blocking, given its current input queue.  ``inf`` models a misbehaving NF
  that never yields (paper §2.1).
* ``execute(now, granted_ns)`` — perform up to ``granted_ns`` of work,
  mutate queues, and report why the run ended.

Estimates must be **pessimistic-exact**: work available can only grow while
a task runs (arrivals enqueue, nothing else dequeues), and cost sampling is
buffered so the cycles charged at ``execute`` equal the cycles foreseen at
``estimate`` for the same packets.  The core relies on this to plan run-end
events without rollback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TaskState(enum.Enum):
    """Lifecycle of a schedulable task."""

    BLOCKED = "blocked"   # waiting on the manager's semaphore / Tx space / I/O
    READY = "ready"       # in a runqueue
    RUNNING = "running"   # current on some core


class ExecOutcome(enum.Enum):
    """Why a granted run ended (drives context-switch classification)."""

    USED_ALL = "used_all"        # consumed the grant, still has work (involuntary)
    RAN_OUT = "ran_out"          # input queue empty -> blocks on semaphore
    TX_BLOCKED = "tx_blocked"    # output ring full -> local backpressure block
    IO_BLOCKED = "io_blocked"    # both I/O double-buffers full -> blocks
    FLAG_YIELD = "flag_yield"    # NF Manager's relinquish flag -> yields


#: Outcomes that are voluntary yields (the task blocks of its own accord).
VOLUNTARY_OUTCOMES = frozenset(
    {ExecOutcome.RAN_OUT, ExecOutcome.TX_BLOCKED, ExecOutcome.IO_BLOCKED,
     ExecOutcome.FLAG_YIELD}
)


@dataclass
class ExecResult:
    """Result of :meth:`CoreTask.execute`."""

    used_ns: float
    outcome: ExecOutcome


@dataclass
class TaskStats:
    """Per-task accounting mirroring ``pidstat``/``perf sched`` columns."""

    voluntary_switches: int = 0      # cswch/s numerator
    involuntary_switches: int = 0    # nvcswch/s numerator
    runtime_ns: float = 0.0          # total CPU time consumed
    sched_delay_ns: float = 0.0      # sum of ready->running waits
    sched_delay_count: int = 0
    wakeups: int = 0

    @property
    def avg_sched_delay_ns(self) -> float:
        if self.sched_delay_count == 0:
            return 0.0
        return self.sched_delay_ns / self.sched_delay_count


class CoreTask:
    """Base class for schedulable entities.

    ``weight`` is the cgroup cpu.shares value (1024 = nice 0); CFS scales
    vruntime accrual by ``1024 / weight`` so heavier tasks accrue slower and
    therefore run longer — exactly the knob NFVnice's Monitor turns.
    """

    def __init__(self, name: str, weight: int = 1024):
        self.name = name
        self._weight = int(weight)
        self.state = TaskState.BLOCKED
        self.vruntime = 0.0
        self.stats = TaskStats()
        self.core: Optional["Core"] = None  # set by Core.add_task
        self.last_ready_ns: int = 0
        # Policy bookkeeping slot (e.g. CFS rbtree node); owned by the policy.
        self.sched_node = None

    # -- cgroup weight -------------------------------------------------
    @property
    def weight(self) -> int:
        return self._weight

    @weight.setter
    def weight(self, value: int) -> None:
        if value < 1:
            raise ValueError(f"weight must be >= 1, got {value!r}")
        old = self._weight
        self._weight = int(value)
        # A cgroup write can land while the task sits in a runqueue; the
        # policy must re-account any aggregate weight bookkeeping.
        if self.core is not None and old != self._weight:
            self.core.scheduler.on_weight_change(self, old, self._weight)

    # -- work interface (implemented by NF processes) -------------------
    def estimate_run_ns(self, now_ns: int) -> float:
        """Time until this task would voluntarily block, from ``now_ns``."""
        raise NotImplementedError

    def execute(self, now_ns: int, granted_ns: float) -> ExecResult:
        """Run for up to ``granted_ns``; mutate state; say why the run ended."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"


class Scheduler:
    """Policy interface: which READY task runs next and for how long."""

    #: Human-readable policy name (used in reports).
    name = "base"

    def enqueue(self, task: CoreTask, now_ns: int, wakeup: bool) -> None:
        """Add a READY task.  ``wakeup`` distinguishes wake from requeue."""
        raise NotImplementedError

    def dequeue(self, task: CoreTask, now_ns: int) -> None:
        """Remove a task that is leaving the READY state."""
        raise NotImplementedError

    def pick_next(self, now_ns: int) -> Optional[CoreTask]:
        """Pop the task to run now, or None if the runqueue is empty."""
        raise NotImplementedError

    def time_slice(self, task: CoreTask, now_ns: int) -> float:
        """Budget (ns) granted to ``task`` for this dispatch."""
        raise NotImplementedError

    def charge(self, task: CoreTask, delta_ns: float) -> None:
        """Account ``delta_ns`` of CPU consumed by the (running) task."""
        raise NotImplementedError

    def preempts_on_wake(self, woken: CoreTask, current: CoreTask,
                         current_ran_ns: float) -> bool:
        """Should ``woken`` preempt ``current`` immediately?"""
        return False

    def on_weight_change(self, task: CoreTask, old: int, new: int) -> None:
        """A queued task's cgroup weight was rewritten (default: no-op)."""
        return None

    @property
    def nr_ready(self) -> int:
        """Number of tasks currently queued (excluding the running one)."""
        raise NotImplementedError
