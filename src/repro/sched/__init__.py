"""Models of the Linux CPU schedulers the paper evaluates.

NFVnice deliberately does **not** replace the kernel scheduler — it tunes
whichever scheduler is in use through cgroup weights and voluntary yields.
Reproducing that claim requires faithful scheduler models to tune:

* :mod:`~repro.sched.cfs` — the Completely Fair Scheduler: per-task virtual
  runtime scaled by cgroup weight, a red-black-tree runqueue ordered by
  vruntime, ``sched_latency``-derived time slices, and wakeup preemption.
  ``SCHED_BATCH`` is the same engine with wakeup preemption disabled and a
  coarser quantum.
* :mod:`~repro.sched.rr` — ``SCHED_RR`` with a fixed quantum (the paper uses
  1 ms and 100 ms variants).
* :mod:`~repro.sched.edf` / :mod:`~repro.sched.deadline` — the SLO-aware
  family: earliest-deadline-first over head-of-ring packet deadlines, and
  a deadline-cognizant CFS variant whose cpu.shares are steered by the
  Monitor's :class:`~repro.core.monitor.SLOGovernor`.
* :mod:`~repro.sched.core` — a simulated CPU core: dispatches tasks picked
  by the policy, charges runtime and context-switch costs, and accounts
  voluntary/involuntary switches, scheduling delay and idle time.
* :mod:`~repro.sched.cgroups` — the cpu.shares control interface NFVnice
  writes through the cgroup virtual filesystem.
"""

from repro.sched.base import CoreTask, ExecOutcome, ExecResult, Scheduler, TaskState
from repro.sched.cfs import CFSBatchScheduler, CFSScheduler
from repro.sched.cgroups import CgroupController
from repro.sched.cooperative import CooperativeScheduler
from repro.sched.core import Core
from repro.sched.deadline import DeadlineCFSScheduler, project_slo_miss
from repro.sched.edf import EDFScheduler
from repro.sched.rr import RRScheduler

__all__ = [
    "CoreTask",
    "ExecOutcome",
    "ExecResult",
    "Scheduler",
    "TaskState",
    "CFSScheduler",
    "CFSBatchScheduler",
    "RRScheduler",
    "CooperativeScheduler",
    "EDFScheduler",
    "DeadlineCFSScheduler",
    "project_slo_miss",
    "Core",
    "CgroupController",
]


def make_scheduler(name: str) -> Scheduler:
    """Factory for the scheduler configurations used across the evaluation.

    Accepted names: ``NORMAL``, ``BATCH``, ``RR`` / ``RR_1MS``, ``RR_100MS``,
    ``COOP``, ``EDF``, ``DEADLINE`` (case-insensitive).
    """
    from repro.sim.clock import MSEC

    key = name.strip().upper()
    if key == "NORMAL":
        return CFSScheduler()
    if key == "BATCH":
        return CFSBatchScheduler()
    if key == "EDF":
        return EDFScheduler()
    if key in ("DEADLINE", "DEADLINE_CFS", "DL"):
        return DeadlineCFSScheduler()
    if key in ("RR", "RR_1MS", "RR(1MS)"):
        return RRScheduler(quantum_ns=MSEC)
    if key in ("RR_100MS", "RR(100MS)"):
        return RRScheduler(quantum_ns=100 * MSEC)
    if key in ("COOP", "COOPERATIVE", "LTHREAD"):
        return CooperativeScheduler()
    raise ValueError(f"unknown scheduler {name!r}")
