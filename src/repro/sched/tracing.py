"""Scheduler event tracing — the simulator's ``perf sched record``.

Attach a :class:`SchedTracer` to a core and every wakeup, dispatch and
switch-out is recorded with its timestamp and reason.  The paper debugs
scheduling behaviour with exactly this kind of trace (Table 4 is built
from ``perf sched``); the tracer makes the reproduction's scheduling
decisions equally inspectable:

    tracer = SchedTracer()
    core.tracer = tracer
    ...run...
    print(tracer.render_timeline(t0, t1, bucket_ns=1_000_000))
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Event kinds recorded by the tracer.
WAKE = "wake"
DISPATCH = "dispatch"
SWITCH_OUT = "switch_out"


@dataclass
class SchedEvent:
    """One scheduler event."""

    time_ns: int
    core_id: int
    kind: str            # WAKE / DISPATCH / SWITCH_OUT
    task: str
    detail: str = ""     # for SWITCH_OUT: the ExecOutcome value


class SchedTracer:
    """Records scheduler events; renders summaries and ASCII timelines."""

    def __init__(self, max_events: int = 1_000_000):
        self.max_events = int(max_events)
        self.events: List[SchedEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Recording (called by Core)
    # ------------------------------------------------------------------
    def record(self, time_ns: int, core_id: int, kind: str, task: str,
               detail: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(SchedEvent(int(time_ns), core_id, kind, task,
                                      detail))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def counts(self) -> Dict[Tuple[str, str], int]:
        """(task, kind) -> number of events."""
        out: Dict[Tuple[str, str], int] = defaultdict(int)
        for ev in self.events:
            out[(ev.task, ev.kind)] += 1
        return dict(out)

    def runs(self, core_id: Optional[int] = None) -> List[Tuple[str, int, int, str]]:
        """Dispatch-to-switch-out intervals: (task, start, end, reason).

        The final, still-open run (if any) is omitted.  A malformed pair —
        a DISPATCH answered by a SWITCH_OUT naming a *different* task, or
        two DISPATCHes back to back — closes the open run at the stray
        event's timestamp with reason ``"mismatch:<other task>"`` instead
        of silently discarding the on-CPU time.
        """
        out: List[Tuple[str, int, int, str]] = []
        open_run: Dict[int, Tuple[str, int]] = {}
        for ev in self.events:
            if core_id is not None and ev.core_id != core_id:
                continue
            if ev.kind == DISPATCH:
                if ev.core_id in open_run:
                    task, start = open_run[ev.core_id]
                    out.append((task, start, ev.time_ns,
                                f"mismatch:{ev.task}"))
                open_run[ev.core_id] = (ev.task, ev.time_ns)
            elif ev.kind == SWITCH_OUT and ev.core_id in open_run:
                task, start = open_run.pop(ev.core_id)
                if task == ev.task:
                    out.append((task, start, ev.time_ns, ev.detail))
                else:
                    out.append((task, start, ev.time_ns,
                                f"mismatch:{ev.task}"))
        return out

    def mismatched_runs(self, core_id: Optional[int] = None) -> int:
        """How many runs were closed by a mismatched event (trace bugs)."""
        return sum(1 for _t, _s, _e, reason in self.runs(core_id)
                   if reason.startswith("mismatch:"))

    def runtime_by_task(self, core_id: Optional[int] = None) -> Dict[str, int]:
        """Total traced on-CPU time per task (ns)."""
        out: Dict[str, int] = defaultdict(int)
        for task, start, end, _reason in self.runs(core_id):
            out[task] += end - start
        return dict(out)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_timeline(self, t0_ns: int, t1_ns: int,
                        bucket_ns: int = 1_000_000,
                        core_id: int = 0) -> str:
        """An ASCII Gantt: one row per task, one column per time bucket.

        A cell shows ``#`` when the task ran for most of the bucket, ``+``
        when it ran at all, ``.`` otherwise.
        """
        if t1_ns <= t0_ns or bucket_ns <= 0:
            raise ValueError("need t1 > t0 and a positive bucket")
        n_buckets = (t1_ns - t0_ns + bucket_ns - 1) // bucket_ns
        per_task: Dict[str, List[int]] = {}
        for task, start, end, _reason in self.runs(core_id):
            if end <= t0_ns or start >= t1_ns:
                continue
            row = per_task.setdefault(task, [0] * n_buckets)
            lo = max(start, t0_ns)
            hi = min(end, t1_ns)
            b = (lo - t0_ns) // bucket_ns
            while lo < hi:
                bucket_end = t0_ns + (b + 1) * bucket_ns
                row[b] += min(hi, bucket_end) - lo
                lo = min(hi, bucket_end)
                b += 1
        lines = []
        width = max((len(t) for t in per_task), default=4)
        for task in sorted(per_task):
            cells = []
            for filled in per_task[task]:
                if 2 * filled >= bucket_ns:
                    cells.append("#")
                elif filled > 0:
                    cells.append("+")
                else:
                    cells.append(".")
            lines.append(f"{task.rjust(width)} |{''.join(cells)}|")
        if self.dropped:
            lines.append(f"({self.dropped} events dropped at the "
                         f"{self.max_events}-event tracer cap)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
