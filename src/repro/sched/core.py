"""A simulated CPU core.

The core glues a scheduling policy to the event loop:

* ``wake(task)`` — the NF Manager's Wakeup thread posts the semaphore of a
  blocked NF (paper §3.2 "Activating NFs"); the task enters the runqueue
  and may preempt the current task per policy.
* dispatch — the policy picks a task and grants it a time slice; the core
  plans a *run segment* up to ``min(remaining slice, task's own estimate of
  when it will block)`` and schedules its end as an event.  At segment end
  the task's ``execute`` performs the work (mutating queues); if it still
  has work and budget, a new segment continues the same dispatch, which is
  how newly arrived packets are absorbed without event invalidation.
* ``interrupt_current`` — wakeup preemption or the NFVnice relinquish flag
  cuts the running segment short; the partial work completed so far is
  executed and charged.

Context-switch classification matches ``pidstat``: a task that blocks of
its own accord (out of packets, Tx ring full, I/O buffers full, relinquish
flag) takes a *voluntary* switch; a task that exhausts its slice while
others wait, or is preempted by a wakeup, takes a *non-voluntary* switch.
Each actual task-to-task switch also burns a configurable overhead
(direct cost plus cache disturbance) during which no task work happens —
the overhead CFS NORMAL pays 65 000 times a second in Table 2.

Wall-time accounting is **exact in integer nanoseconds**: every instant
of a core's life belongs to exactly one of ``busy_ns`` / ``overhead_ns``
/ ``idle_ns``, partitioned at event boundaries (which are integers by
construction — ``EventLoop.call_at`` rounds up).  The invariant
``busy_ns + overhead_ns + idle_ns == now - epoch`` holds exactly and is
enforced by the runtime sanitizer (:mod:`repro.check.sanitizer`).  A
*spurious wake* — a dispatch of a task whose ``estimate_run_ns`` is 0,
so it blocks again without consuming any simulated time — charges
nothing: no wall time elapsed, so neither overhead nor busy time may
accrue (and the previously running task stays "last on CPU", so no
switch cost is imputed to a switch that never progressed).  Task-level
``runtime_ns`` remains fractional: per-packet cycle costs convert to
non-integer nanoseconds and feed vruntime, where exactness in the cycle
domain matters more than alignment to event boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.sched.base import (
    CoreTask,
    ExecOutcome,
    Scheduler,
    TaskState,
)
from repro.sim.engine import EventHandle, EventLoop

#: Below this many nanoseconds of remaining slice we treat the budget as
#: exhausted instead of scheduling sub-nanosecond segments.
_MIN_BUDGET_NS = 1


@dataclass
class CoreStats:
    """Aggregate core-level accounting (exact integer nanoseconds)."""

    busy_ns: int = 0
    idle_ns: int = 0
    overhead_ns: int = 0
    dispatches: int = 0

    def utilization(self, horizon_ns: float) -> float:
        """Fraction of the horizon spent doing task work or switching."""
        if horizon_ns <= 0:
            return 0.0
        return (self.busy_ns + self.overhead_ns) / horizon_ns


class Core:
    """One CPU core running :class:`~repro.sched.base.CoreTask` instances."""

    def __init__(
        self,
        loop: EventLoop,
        scheduler: Scheduler,
        core_id: int = 0,
        ctx_switch_ns: float = 1_500.0,
        max_segment_ns: float = float("inf"),
        socket: int = 0,
    ):
        self.loop = loop
        self.scheduler = scheduler
        self.core_id = core_id
        #: NUMA socket this core belongs to.
        self.socket = int(socket)
        #: Context-switch cost in whole nanoseconds: overhead delays the
        #: first run segment, so it must land on an event-time boundary.
        self.ctx_switch_ns = int(ctx_switch_ns)
        #: Upper bound on one uninterrupted run segment.  The platform sets
        #: this to the Tx thread poll period so an NF's output is produced
        #: in sub-ring-size chunks interleaved with the manager's ferrying,
        #: as on real hardware, instead of one burst at segment end.
        #: ``inf`` (the default) means unbounded.
        self.max_segment_ns = (
            max_segment_ns if max_segment_ns == float("inf")
            else int(max_segment_ns)
        )
        self.tasks: List[CoreTask] = []
        self.stats = CoreStats()
        #: Optional :class:`repro.obs.bus.EventBus` all scheduler events are
        #: published to.  ``None`` (the default) costs one branch per event.
        self.bus = None
        self._tracer = None
        #: Optional :class:`repro.obs.causality.CausalityTracer` — told of
        #: every dispatch so relinquish-release → resume delays close.
        self.causality = None

        #: A failed core dispatches nothing and refuses wakeups until
        #: :meth:`repair` (fault injection: the paper's schedulers assume
        #: cores never vanish; the chaos layer makes them vanish).
        self.failed = False

        self.current: Optional[CoreTask] = None
        self._last_task: Optional[CoreTask] = None
        self._segment_start: int = 0
        self._segment_plan: float = 0.0
        self._budget_left: float = 0.0
        self._charged_this_run: float = 0.0
        self._run_end: Optional[EventHandle] = None
        #: When the current dispatch started (wall partition anchor) and
        #: how much of it is context-switch overhead still unaccounted.
        self._dispatch_start: int = 0
        self._overhead_pending: int = 0
        #: First instant this core existed — accounting covers [epoch, now].
        self.epoch_ns: int = loop.now
        self._idle_since: Optional[int] = loop.now  # a core starts idle

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_bus(self, bus: Any) -> None:
        """Use ``bus`` for scheduler events (platform-wide attachment).

        Subscribers of a previously attached (or tracer-private) bus are
        carried over so a hand-attached tracer keeps receiving events.
        """
        if bus is self.bus:
            return
        if self.bus is not None and bus is not None:
            bus.adopt_subscribers(self.bus)
        self.bus = bus

    @property
    def tracer(self) -> Any:
        """Back-compat: a :class:`~repro.sched.tracing.SchedTracer` fed from
        the event bus.  Assigning a tracer subscribes it; the old
        ``core.tracer = SchedTracer()`` idiom keeps working unchanged."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Any) -> None:
        self._tracer = tracer
        if tracer is None:
            return
        if self.bus is None:
            from repro.obs.bus import EventBus

            # Dispatch-only bus: the tracer keeps its own bounded store.
            self.bus = EventBus(self.loop, record=False)
        core_id = self.core_id

        def forward(ev: Any, tracer: Any = tracer,
                    core_id: int = core_id) -> None:
            if ev.args.get("core") != core_id:
                return
            kind = ev.kind
            if kind == "sched.wake":
                tracer.record(ev.time_ns, core_id, "wake", ev.source)
            elif kind == "sched.dispatch":
                tracer.record(ev.time_ns, core_id, "dispatch", ev.source)
            elif kind == "sched.switch_out":
                tracer.record(ev.time_ns, core_id, "switch_out", ev.source,
                              ev.args.get("detail", ""))

        self.bus.subscribe(forward)

    # ------------------------------------------------------------------
    # Task membership and wakeups
    # ------------------------------------------------------------------
    def add_task(self, task: CoreTask) -> None:
        """Register a task; it starts BLOCKED until first woken."""
        if task.core is not None:
            raise ValueError(f"{task.name} already placed on core {task.core.core_id}")
        task.core = self
        self.tasks.append(task)

    def wake(self, task: CoreTask) -> bool:
        """Make a BLOCKED task runnable (semaphore post).  No-op otherwise."""
        if self.failed or task.state is not TaskState.BLOCKED:
            return False
        now = self.loop.now
        task.state = TaskState.READY
        task.last_ready_ns = now
        task.stats.wakeups += 1
        if self.bus is not None and self.bus.active:
            self.bus.publish("sched.wake", task.name, core=self.core_id)
        self.scheduler.enqueue(task, now, wakeup=True)
        if self.current is None:
            self._dispatch()
        elif self.scheduler.preempts_on_wake(
            task, self.current, self._elapsed_in_run(now)
        ):
            self.interrupt_current(voluntary=False)
        return True

    def block_ready(self, task: CoreTask) -> bool:
        """Pull a READY (queued, not running) task back to BLOCKED.

        Used by backpressure to keep a throttled NF off the CPU until its
        downstream drains.  Returns False unless the task was READY.
        """
        if task.state is not TaskState.READY:
            return False
        self.scheduler.dequeue(task, self.loop.now)
        task.state = TaskState.BLOCKED
        return True

    # ------------------------------------------------------------------
    # Fault teardown (crash / core failure)
    # ------------------------------------------------------------------
    def deschedule(self, task: CoreTask) -> bool:
        """Forcibly pull ``task`` off the CPU / out of the runqueue.

        Unlike :meth:`interrupt_current`, no partial work is executed:
        this models a SIGKILL mid-quantum — cycles already burned stay
        charged (they were consumed at segment granularity), but the
        in-flight batch never completes.  The task remains a member of
        the core so a recovery policy can revive it with :meth:`wake`.
        Returns True if the task was RUNNING or READY.
        """
        if self.current is task:
            if self._run_end is not None:
                self._run_end.cancel()
                self._run_end = None
            self._close_run_span(self.loop.now)
            self.current = None
            task.state = TaskState.BLOCKED
            task.stats.involuntary_switches += 1
            if self.bus is not None and self.bus.active:
                self.bus.publish("sched.switch_out", task.name,
                                 core=self.core_id, detail="killed")
            self._dispatch()
            return True
        if task.state is TaskState.READY:
            self.scheduler.dequeue(task, self.loop.now)
            task.state = TaskState.BLOCKED
            return True
        return False

    def fail(self) -> None:
        """Take the whole core offline: every task is descheduled mid-
        quantum and no dispatch or wakeup succeeds until :meth:`repair`."""
        if self.failed:
            return
        self.failed = True           # blocks re-dispatch during teardown
        for task in self.tasks:
            self.deschedule(task)

    def repair(self) -> None:
        """Bring a failed core back; blocked tasks are picked up by the
        Wakeup subsystem's next scan (or an explicit notify)."""
        self.failed = False

    # ------------------------------------------------------------------
    # Interrupting the running task
    # ------------------------------------------------------------------
    def interrupt_current(self, voluntary: bool) -> None:
        """End the current run segment now.

        ``voluntary=True`` models the relinquish flag (the NF yields at the
        next batch boundary and blocks on its semaphore); ``voluntary=False``
        models wakeup preemption (the task returns to the runqueue).
        """
        task = self.current
        if task is None:
            return
        now = self.loop.now
        if self._run_end is not None:
            self._run_end.cancel()
            self._run_end = None
        elapsed = min(max(0.0, now - self._segment_start), self._segment_plan)
        outcome = ExecOutcome.FLAG_YIELD if voluntary else ExecOutcome.USED_ALL
        if elapsed > 0:
            result = task.execute(now, elapsed)
            self._charge(task, min(result.used_ns, elapsed))
            self._budget_left -= elapsed
            if result.outcome is not ExecOutcome.USED_ALL:
                # It was about to block anyway; honor the task's own reason.
                outcome = result.outcome
        self._switch_out(outcome)

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self.failed:
            if self._idle_since is None:
                self._idle_since = self.loop.now
            return
        now = self.loop.now
        task = self.scheduler.pick_next(now)
        if task is None:
            if self._idle_since is None:
                self._idle_since = now
            return
        if self._idle_since is not None:
            self.stats.idle_ns += now - self._idle_since
            self._idle_since = None

        task.state = TaskState.RUNNING
        task.stats.sched_delay_ns += now - task.last_ready_ns
        task.stats.sched_delay_count += 1
        if self.bus is not None and self.bus.active:
            self.bus.publish("sched.dispatch", task.name, core=self.core_id)
        if self.causality is not None:
            # Cheap when no resume is pending: early-returns on an empty
            # pending map inside the tracer.
            self.causality.on_dispatch(task.name, now)

        self.current = task
        self._charged_this_run = 0.0
        self._budget_left = self.scheduler.time_slice(task, now)
        self.stats.dispatches += 1
        self._dispatch_start = now

        estimate = task.estimate_run_ns(now)
        if estimate <= 0:
            # Spurious wake: the task blocks again without performing any
            # work and without consuming any simulated time, so no
            # context-switch overhead may be charged (charging it with
            # zero elapsed wall time would overshoot the horizon) and the
            # previous task remains "last on CPU".
            self._overhead_pending = 0
            self._switch_out(ExecOutcome.RAN_OUT)
            return

        overhead = 0
        if self._last_task is not None and self._last_task is not task:
            overhead = self.ctx_switch_ns
        self._last_task = task
        self._overhead_pending = overhead
        self._begin_segment(now + overhead, estimate)

    def _begin_segment(self, start_ns: int, estimate: Optional[float] = None) -> None:
        task = self.current
        assert task is not None
        if estimate is None:
            estimate = task.estimate_run_ns(self.loop.now)
            if estimate <= 0:
                # Went out of work mid-dispatch (e.g. output space vanished
                # between segments): block again.
                self._switch_out(ExecOutcome.RAN_OUT)
                return
        plan = min(estimate, self._budget_left, self.max_segment_ns)
        self._segment_start = start_ns
        self._segment_plan = plan
        self._run_end = self.loop.call_at(start_ns + plan, self._on_segment_end)

    def _on_segment_end(self) -> None:
        self._run_end = None
        task = self.current
        assert task is not None
        now = self.loop.now
        work = self._segment_plan
        result = task.execute(now, work)
        self._charge(task, min(result.used_ns, work))
        self._budget_left -= work

        if result.outcome is not ExecOutcome.USED_ALL:
            self._switch_out(result.outcome)
            return
        if self._budget_left >= _MIN_BUDGET_NS:
            self._begin_segment(now)
            return
        if self.scheduler.nr_ready == 0:
            # Nobody else wants the CPU: the kernel re-picks the same task
            # with a fresh slice and no context switch occurs.
            self._budget_left = self.scheduler.time_slice(task, now)
            self._begin_segment(now)
            return
        self._switch_out(ExecOutcome.USED_ALL)

    def _switch_out(self, outcome: ExecOutcome) -> None:
        task = self.current
        assert task is not None
        now = self.loop.now
        self._close_run_span(now)
        self.current = None
        if self.bus is not None and self.bus.active:
            self.bus.publish("sched.switch_out", task.name,
                             core=self.core_id, detail=outcome.value)
        if outcome is ExecOutcome.USED_ALL:
            task.stats.involuntary_switches += 1
            task.state = TaskState.READY
            task.last_ready_ns = now
            self.scheduler.enqueue(task, now, wakeup=False)
        else:
            task.stats.voluntary_switches += 1
            task.state = TaskState.BLOCKED
        self._dispatch()

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _close_run_span(self, now: int) -> None:
        """Account the wall-time span of the current dispatch.

        The span ``[_dispatch_start, now]`` is split exactly between
        ``overhead_ns`` (up to the pending context-switch cost — clamped,
        so a preemption *during* the switch window never over-charges) and
        ``busy_ns`` (the rest).  Idempotent: the anchor advances to ``now``
        so closing twice charges nothing extra.
        """
        span = now - self._dispatch_start
        if span <= 0:
            return
        oh = span if span < self._overhead_pending else self._overhead_pending
        self.stats.overhead_ns += oh
        self.stats.busy_ns += span - oh
        self._overhead_pending -= oh
        self._dispatch_start = now

    def _charge(self, task: CoreTask, used_ns: float) -> None:
        # Core-level busy_ns is charged by _close_run_span from integer
        # event-time spans; here only the task-level (fractional) runtime
        # and the policy's vruntime accounting accrue.
        if used_ns <= 0:
            return
        task.stats.runtime_ns += used_ns
        self.scheduler.charge(task, used_ns)
        self._charged_this_run += used_ns

    def _elapsed_in_run(self, now: int) -> float:
        segment_elapsed = min(
            max(0.0, now - self._segment_start), self._segment_plan
        )
        return self._charged_this_run + segment_elapsed

    def finalize(self) -> None:
        """Close the accounting partition at the end of a run (horizon).

        Any in-flight run segment's wall time up to *now* is charged
        (its end event lies beyond the horizon and never fires); any open
        idle stretch is closed.  After this,
        ``busy_ns + overhead_ns + idle_ns == now - epoch_ns`` exactly.
        """
        if self.current is not None:
            self._close_run_span(self.loop.now)
        if self._idle_since is not None:
            self.stats.idle_ns += self.loop.now - self._idle_since
            self._idle_since = self.loop.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cur = self.current.name if self.current else "idle"
        return (
            f"Core({self.core_id}, {self.scheduler.name}, "
            f"running={cur}, tasks={len(self.tasks)})"
        )
