"""Parallel experiment campaign runner.

Fans independent scenario runs — whole experiments, and the
per-configuration cases *inside* sweep experiments — across worker
processes with deterministic per-task seeding, per-task timeouts with
retry-once semantics, and crash isolation.  Aggregation is ordered by
task enumeration, so a parallel campaign's digests and artifacts are
bit-identical to a serial one.  See ``docs/campaigns.md``.
"""

from repro.runner.baseline import (
    check_campaign,
    load_baseline,
    write_baseline,
)
from repro.runner.campaign import (
    CampaignResult,
    ExperimentReport,
    run_campaign,
)
from repro.runner.digest import canonical_json, combine_digests, digest_of
from repro.runner.pool import TaskOutcome, run_tasks
from repro.runner.tasks import TaskSpec, derive_task_seed, enumerate_tasks

__all__ = [
    "CampaignResult",
    "ExperimentReport",
    "TaskOutcome",
    "TaskSpec",
    "canonical_json",
    "check_campaign",
    "combine_digests",
    "derive_task_seed",
    "digest_of",
    "enumerate_tasks",
    "load_baseline",
    "run_campaign",
    "run_tasks",
    "write_baseline",
]
