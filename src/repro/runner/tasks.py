"""Campaign task model and enumeration.

A :class:`TaskSpec` is one unit of work a worker process can execute
independently: import ``module``, call ``fn(**kwargs)``, serialise the
result.  Experiments contribute tasks in one of two ways:

* **sweep experiments** (fig07, fig09, fig10, fig11, fig12, fig16, tab05)
  expose ``campaign_cases(duration_s)`` — every cell of their
  configuration grid becomes its own task, so a single experiment's sweep
  fans out across workers;
* every other experiment contributes a single task running its ``main``.

Seeding: each case carries its RNG seed explicitly in ``kwargs`` (the
same seed its module's serial ``run_grid`` would use), so a task's result
is a pure function of its spec.  A non-zero campaign seed derives a new
per-task seed from ``(experiment, case label, campaign seed)`` via CRC-32
— deterministic, stable across processes and Python versions, and
independent for every task.
"""

from __future__ import annotations

import importlib
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class TaskSpec:
    """A picklable description of one unit of campaign work."""

    experiment: str            # experiment id ("fig11")
    label: str                 # stable case label ("Low-Med-High|NORMAL|Default")
    module: str                # import path of the experiment module
    fn: str                    # module-level callable to invoke
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Grid key for reassembly by ``render_cases`` (None for main tasks).
    key: Any = None
    #: Simulated seconds this task covers, when known.
    sim_seconds: Optional[float] = None

    @property
    def task_id(self) -> str:
        return f"{self.experiment}:{self.label}"

    def to_wire(self) -> Dict[str, Any]:
        """The portable subset a worker needs (no grid key)."""
        return {
            "experiment": self.experiment,
            "label": self.label,
            "module": self.module,
            "fn": self.fn,
            "kwargs": self.kwargs,
        }


def derive_task_seed(campaign_seed: int, experiment: str, label: str,
                     base_seed: int) -> int:
    """Per-task seed: the module's own seed when ``campaign_seed`` is 0
    (bit-identical to the serial experiment), a stable mix otherwise."""
    if campaign_seed == 0:
        return base_seed
    tag = zlib.crc32(f"{experiment}|{label}|{campaign_seed}".encode("utf-8"))
    return (base_seed ^ tag) & 0x7FFFFFFF


def enumerate_tasks(experiment: str, module_path: str,
                    duration_s: Optional[float] = None,
                    campaign_seed: int = 0) -> List[TaskSpec]:
    """All tasks for one experiment, in canonical (enumeration) order."""
    module = importlib.import_module(module_path)
    if hasattr(module, "campaign_cases") and hasattr(module, "render_cases"):
        cases = (module.campaign_cases(duration_s=duration_s)
                 if duration_s is not None else module.campaign_cases())
        specs: List[TaskSpec] = []
        for case in cases:
            kwargs = dict(case.kwargs)
            if "seed" in kwargs:
                kwargs["seed"] = derive_task_seed(
                    campaign_seed, experiment, case.label, kwargs["seed"])
            specs.append(TaskSpec(
                experiment=experiment,
                label=case.label,
                module=module_path,
                fn=case.fn,
                kwargs=kwargs,
                key=case.key,
                sim_seconds=kwargs.get("duration_s"),
            ))
        return specs
    kwargs = {"duration_s": duration_s} if duration_s is not None else {}
    return [TaskSpec(experiment=experiment, label="main", module=module_path,
                     fn="main", kwargs=kwargs)]


def is_case_based(module_path: str) -> bool:
    module = importlib.import_module(module_path)
    return hasattr(module, "campaign_cases") and hasattr(module, "render_cases")
