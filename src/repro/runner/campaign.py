"""Campaign orchestration: many experiments, one worker pool.

A campaign enumerates every selected experiment into tasks (per-sweep-cell
where the module supports it, whole-``main`` otherwise), fans the *global*
task list across the pool — so a wide sweep like fig11's 48 cells keeps
all workers busy even while a single-task experiment runs — and then
aggregates per experiment in enumeration order:

* case experiments get their artifact re-rendered from the collected
  ``{key: ScenarioResult}`` grid, exactly as their serial ``main`` would;
* the per-experiment digest chains the per-task result digests in task
  order, so it is bit-identical for any worker count.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.digest import (
    combine_digests,
    digest_of,
    ensure_digest_safe,
)
from repro.runner.pool import TaskOutcome, run_tasks
from repro.runner.tasks import TaskSpec, enumerate_tasks


@dataclass
class ExperimentReport:
    """Aggregated outcome of one experiment inside a campaign."""

    id: str
    status: str                       # "ok" | "failed"
    digest: Optional[str]             # None when any task failed
    artifact: Optional[str]           # rendered table(s), when status ok
    tasks: List[TaskOutcome] = field(default_factory=list)
    task_wall_s: float = 0.0          # sum of in-worker execution times
    sim_seconds: Optional[float] = None
    #: Merged flow-latency telemetry across the experiment's cases
    #: (``{"flow_latency": raw mergeable dict}``); folded in task
    #: enumeration order, so — like the digest — it is bit-identical for
    #: any worker count.  Empty when no case carried telemetry.
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def sim_time_throughput(self) -> Optional[float]:
        """Simulated seconds computed per wall second of worker time."""
        if self.sim_seconds is None or self.task_wall_s <= 0:
            return None
        return self.sim_seconds / self.task_wall_s

    @property
    def failures(self) -> List[str]:
        return [
            f"{o.spec.task_id}: {o.status} after {o.attempts} attempt(s)"
            + (f" — {o.error.strip().splitlines()[-1]}" if o.error else "")
            for o in self.tasks if not o.ok
        ]


@dataclass
class CampaignResult:
    experiments: Dict[str, ExperimentReport]
    workers: int
    duration_s: Optional[float]
    seed: int
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.experiments.values())


def experiment_registry() -> Dict[str, str]:
    """experiment id -> module path (the CLI's experiment index)."""
    from repro.cli import EXPERIMENTS

    return {name: module for name, (module, _desc) in EXPERIMENTS.items()}


def run_campaign(
    ids: Sequence[str],
    workers: int = 1,
    duration_s: Optional[float] = None,
    seed: int = 0,
    task_timeout_s: float = 600.0,
    start_method: Optional[str] = None,
    on_task_done: Optional[Callable[[TaskOutcome], None]] = None,
) -> CampaignResult:
    """Run ``ids`` (campaign order preserved) over ``workers`` processes."""
    registry = experiment_registry()
    unknown = [i for i in ids if i not in registry]
    if unknown:
        raise ValueError(f"unknown experiment id(s): {', '.join(unknown)}")
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate experiment ids in campaign")

    t0 = time.perf_counter()
    specs: List[TaskSpec] = []
    per_experiment: Dict[str, List[int]] = {}
    for exp_id in ids:
        tasks = enumerate_tasks(exp_id, registry[exp_id],
                                duration_s=duration_s, campaign_seed=seed)
        per_experiment[exp_id] = list(
            range(len(specs), len(specs) + len(tasks)))
        specs.extend(tasks)

    outcomes = run_tasks(specs, workers=workers, timeout_s=task_timeout_s,
                         start_method=start_method, on_done=on_task_done)

    reports: Dict[str, ExperimentReport] = {}
    for exp_id in ids:
        exp_outcomes = [outcomes[i] for i in per_experiment[exp_id]]
        reports[exp_id] = _aggregate(exp_id, registry[exp_id], exp_outcomes)
    return CampaignResult(
        experiments=reports,
        workers=workers,
        duration_s=duration_s,
        seed=seed,
        elapsed_s=time.perf_counter() - t0,
    )


def _aggregate(exp_id: str, module_path: str,
               outcomes: List[TaskOutcome]) -> ExperimentReport:
    task_wall_s = sum(o.wall_s for o in outcomes)
    sims = [o.spec.sim_seconds for o in outcomes]
    sim_seconds = (sum(s for s in sims if s is not None)
                   if any(s is not None for s in sims) else None)
    if not all(o.ok for o in outcomes):
        return ExperimentReport(
            id=exp_id, status="failed", digest=None, artifact=None,
            tasks=outcomes, task_wall_s=task_wall_s, sim_seconds=sim_seconds,
        )

    digest = combine_digests(
        f"{o.spec.label}:{digest_of(ensure_digest_safe(o.payload['value']))}"
        for o in outcomes
    )
    if len(outcomes) == 1 and outcomes[0].spec.fn == "main":
        artifact = outcomes[0].payload["value"]
    else:
        from repro.analysis.export import result_from_dict

        module = importlib.import_module(module_path)
        results = {}
        for o in outcomes:
            result = result_from_dict(o.payload["value"])
            # Digest-invisible telemetry rides next to "value"; reattach
            # it so render_cases prints the same SLO/attribution tables a
            # serial run would.
            extra = o.payload.get("telemetry")
            if extra:
                result.flow_latency = extra.get("flow_latency", {})
                result.causality = extra.get("causality", {})
            results[o.spec.key] = result
        artifact = module.render_cases(results)
    telemetry: Dict[str, object] = {}
    latency_dicts = [
        (o.payload.get("telemetry") or {}).get("flow_latency") or {}
        for o in outcomes
    ]
    if any(latency_dicts):
        from repro.obs.latency import merge_latency_dicts

        # Enumeration order: merging is a left fold, so the merged
        # histograms (float `total` included) are worker-count invariant.
        telemetry["flow_latency"] = merge_latency_dicts(latency_dicts)
    return ExperimentReport(
        id=exp_id, status="ok", digest=digest, artifact=artifact,
        tasks=outcomes, task_wall_s=task_wall_s, sim_seconds=sim_seconds,
        telemetry=telemetry,
    )
