"""A crash-isolated process pool for campaign tasks.

Each task runs in its own worker process (fork where the platform has it,
spawn otherwise), up to ``workers`` concurrently.  Unlike
``concurrent.futures.ProcessPoolExecutor`` — where one dying worker breaks
the whole pool — a worker here owns exactly one task attempt, so a crash,
hang or unpicklable explosion costs that attempt and nothing else.

Failure semantics: every task gets at most two attempts (retry-once).  An
attempt fails by raising (the worker reports an ``error`` payload), by
exceeding the per-task timeout (the parent terminates it), or by dying
without publishing a result (crash).  The second failure marks the task
failed and the campaign carries on.

Results are returned **in task order** regardless of completion order, so
downstream aggregation is bit-identical to a serial run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.runner.tasks import TaskSpec
from repro.runner.worker import child_entry

#: Parent-side reap interval; tasks take >= milliseconds, so 10 ms of
#: polling granularity is invisible in campaign wall time.
_POLL_S = 0.01


@dataclass
class TaskOutcome:
    """What happened to one task across its (up to two) attempts."""

    spec: TaskSpec
    status: str                      # "ok" | "error" | "timeout" | "crashed"
    payload: Optional[dict] = None   # worker payload when status == "ok"
    wall_s: float = 0.0              # in-worker execution time (last attempt)
    attempts: int = 0
    error: Optional[str] = None
    statuses: List[str] = field(default_factory=list)  # per-attempt history

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def run_tasks(
    specs: List[TaskSpec],
    workers: int = 1,
    timeout_s: float = 600.0,
    start_method: Optional[str] = None,
    on_done: Optional[Callable[[TaskOutcome], None]] = None,
) -> List[TaskOutcome]:
    """Run ``specs`` across ``workers`` processes; results in spec order."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    ctx = multiprocessing.get_context(start_method or default_start_method())
    outcomes: List[Optional[TaskOutcome]] = [None] * len(specs)
    history: Dict[int, List[str]] = {i: [] for i in range(len(specs))}
    queue = deque((i, 1) for i in range(len(specs)))  # (index, attempt#)
    # proc -> (index, attempt, out_path, deadline)
    running: Dict[multiprocessing.process.BaseProcess, Tuple] = {}

    def finish(index: int, attempt: int, status: str, payload: Optional[dict],
               error: Optional[str]) -> None:
        history[index].append(status)
        if status != "ok" and attempt == 1:
            queue.append((index, 2))    # retry-once
            return
        outcomes[index] = TaskOutcome(
            spec=specs[index],
            status=status,
            payload=payload if status == "ok" else None,
            wall_s=(payload or {}).get("wall_s", 0.0),
            attempts=attempt,
            error=error,
            statuses=list(history[index]),
        )
        if on_done is not None:
            on_done(outcomes[index])

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmpdir:
        while queue or running:
            while queue and len(running) < workers:
                index, attempt = queue.popleft()
                out_path = os.path.join(tmpdir, f"task-{index}-{attempt}.json")
                proc = ctx.Process(
                    target=child_entry,
                    args=(specs[index].to_wire(), out_path),
                    daemon=True,
                )
                proc.start()
                running[proc] = (index, attempt, out_path,
                                 time.monotonic() + timeout_s)
            if not running:
                continue
            time.sleep(_POLL_S)
            now = time.monotonic()
            for proc in list(running):
                index, attempt, out_path, deadline = running[proc]
                if proc.is_alive():
                    if now < deadline:
                        continue
                    # The worker publishes its payload atomically before
                    # exiting, so a result that landed right at the deadline
                    # is a finished task whose process just hasn't been
                    # reaped yet — honour it rather than burning the retry.
                    status, payload, error = _read_result(out_path, None)
                    proc.terminate()
                    proc.join(5.0)
                    if proc.is_alive():    # pragma: no cover - stuck in kernel
                        proc.kill()
                        proc.join()
                    del running[proc]
                    if status == "crashed":    # nothing published: real timeout
                        finish(index, attempt, "timeout", None,
                               f"exceeded {timeout_s:g}s task timeout")
                    else:
                        finish(index, attempt, status, payload, error)
                    continue
                proc.join()
                del running[proc]
                status, payload, error = _read_result(out_path, proc.exitcode)
                finish(index, attempt, status, payload, error)
    assert all(o is not None for o in outcomes)
    return outcomes  # type: ignore[return-value]


def _read_result(out_path: str, exitcode: Optional[int]
                 ) -> Tuple[str, Optional[dict], Optional[str]]:
    try:
        with open(out_path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return ("crashed", None,
                f"worker died without a result (exit code {exitcode})")
    if payload.get("kind") == "error":
        return "error", None, payload.get("error", "unknown task error")
    return "ok", payload, None
