"""Campaign regression baselines.

The baseline file (``BENCH_campaign.json`` by convention) persists, per
experiment: the canonical result digest, the summed in-worker wall time,
the simulated seconds covered, and the derived simulated-time throughput.
``--check`` compares a fresh campaign against it:

* **digest drift** — any changed digest fails the check outright: the
  simulator is deterministic, so a drifted digest means behaviour changed;
* **wall-clock regression** — an experiment whose summed worker wall time
  exceeds baseline by more than ``max_regression`` (default 15 %) fails.
  Summed *per-task* wall time is used (not campaign elapsed time) so the
  measure is comparable across different ``--workers`` values.

Writing (the default, without ``--check``) merges into an existing file:
experiments not part of the current campaign keep their entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.runner.campaign import CampaignResult

SCHEMA_VERSION = 1


def baseline_entry(report) -> Dict:
    return {
        "digest": report.digest,
        "task_wall_s": round(report.task_wall_s, 6),
        "sim_seconds": report.sim_seconds,
        "sim_time_throughput": (
            round(report.sim_time_throughput, 6)
            if report.sim_time_throughput is not None else None),
        "tasks": len(report.tasks),
    }


def load_baseline(path: Union[str, Path]) -> Dict:
    with open(path) as fh:
        data = json.load(fh)
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {SCHEMA_VERSION})")
    return data


def write_baseline(path: Union[str, Path],
                   campaign: CampaignResult) -> Path:
    """Merge the campaign's successful experiments into the baseline."""
    path = Path(path)
    if path.exists():
        data = load_baseline(path)
    else:
        data = {"version": SCHEMA_VERSION, "experiments": {}}
    for exp_id, report in campaign.experiments.items():
        if report.ok:
            data["experiments"][exp_id] = baseline_entry(report)
    data["experiments"] = dict(sorted(data["experiments"].items()))
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_campaign(baseline: Dict, campaign: CampaignResult,
                   max_regression: float = 0.15) -> List[str]:
    """Problems found comparing ``campaign`` to ``baseline`` (empty = pass)."""
    problems: List[str] = []
    entries = baseline.get("experiments", {})
    for exp_id, report in campaign.experiments.items():
        if not report.ok:
            problems.append(
                f"{exp_id}: campaign run failed "
                f"({'; '.join(report.failures)})")
            continue
        entry = entries.get(exp_id)
        if entry is None:
            problems.append(
                f"{exp_id}: no baseline entry — run without --check to "
                f"record one")
            continue
        if entry["digest"] != report.digest:
            problems.append(
                f"{exp_id}: result digest drift "
                f"(baseline {entry['digest'][:12]}…, "
                f"got {report.digest[:12]}…)")
        base_wall = entry.get("task_wall_s") or 0.0
        if base_wall > 0 and report.task_wall_s > base_wall * (1 + max_regression):
            problems.append(
                f"{exp_id}: wall-clock regression "
                f"({report.task_wall_s:.2f}s vs baseline {base_wall:.2f}s, "
                f"> {100 * max_regression:.0f}% over)")
    return problems
