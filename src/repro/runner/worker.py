"""Worker-side task execution.

``run_task_wire`` is pure (spec in, payload dict out) and is also used
in-process by tests; ``child_entry`` wraps it for a worker subprocess,
writing the payload as JSON to a result file the parent reads back after
the process exits.  Files (not pipes) carry results so a worker that is
killed mid-write can never deadlock the parent, and a partially written
file is never observed — the write goes to a temp name and is atomically
renamed into place.

Any exception inside the task is caught and reported as an ``error``
payload; the worker still exits 0.  Only a hard crash (segfault, kill,
``os._exit``) leaves no result file, which the parent treats as a crashed
task — crash isolation means a dying worker fails its task, never the
campaign.
"""

from __future__ import annotations

import importlib
import json
import os
import time
import traceback
from typing import Any, Dict


def run_task_wire(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one wire-format task spec; never raises."""
    t0 = time.perf_counter()
    try:
        module = importlib.import_module(spec["module"])
        fn = getattr(module, spec["fn"])
        value = fn(**spec["kwargs"])
        payload = _encode_result(value)
    except Exception:
        payload = {"kind": "error", "error": traceback.format_exc()}
    payload["wall_s"] = time.perf_counter() - t0
    return payload


def _encode_result(value: Any) -> Dict[str, Any]:
    from repro.experiments.common import ScenarioResult

    if isinstance(value, ScenarioResult):
        from repro.analysis.export import result_to_dict

        payload: Dict[str, Any] = {
            "kind": "scenario", "value": result_to_dict(value),
        }
        # Telemetry travels in a sibling key: the campaign digest hashes
        # only payload["value"], so enabling telemetry cannot perturb it.
        if value.flow_latency or value.causality:
            payload["telemetry"] = {
                "flow_latency": value.flow_latency,
                "causality": value.causality,
            }
        return payload
    if isinstance(value, str):
        return {"kind": "text", "value": value}
    return {
        "kind": "error",
        "error": f"task returned unsupported type {type(value).__name__}; "
                 f"expected ScenarioResult or str",
    }


def child_entry(spec: Dict[str, Any], out_path: str) -> None:
    """Subprocess target: run the task, atomically publish the payload."""
    payload = run_task_wire(spec)
    tmp_path = out_path + ".tmp"
    with open(tmp_path, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp_path, out_path)
