"""Canonical result digests.

A digest is a SHA-256 over a *canonical* JSON encoding (sorted keys, no
whitespace) of a task's result payload.  Canonicalisation makes the digest
independent of dict insertion order, process identity and
``PYTHONHASHSEED`` — two runs produce the same digest if and only if they
produced bit-identical results, which is what the campaign runner's
``--check`` mode and the determinism tests assert.

Floats serialise through ``repr`` (shortest round-trip form), so any
difference in the 64-bit value changes the digest: this is an exact-match
scheme, not a tolerance scheme, by design — the simulator is fully
deterministic and drift of even one ULP means behaviour changed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

#: Digest-safety contract marker, verified by ``repro check --deep``
#: (SIM603) against :data:`repro.check.registry.MARKED_MODULES`.
__digest_safety__ = "digest-checked: canonicalises and hashes payloads"

#: Top-level payload keys that must never appear in a digested value —
#: mirrors ``repro.check.registry.DIGEST_INVISIBLE_FIELDS`` (kept
#: literal here so the hot path never imports the analyzer).
_INVISIBLE_KEYS = frozenset({"loop_stats", "flow_latency", "causality",
                             "slo", "telemetry"})


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding of a JSON-compatible value."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def ensure_digest_safe(value: Any) -> Any:
    """Runtime backstop for the static digest-taint pass (SIM601).

    Rejects a payload whose top level carries a digest-invisible
    telemetry key: hashing one would make campaign digests depend on
    telemetry settings.  Returns ``value`` unchanged so it can wrap a
    digest call inline.
    """
    if isinstance(value, dict):
        leaked = sorted(_INVISIBLE_KEYS.intersection(value))
        if leaked:
            raise ValueError(
                f"digest payload contains digest-invisible key(s) "
                f"{leaked}; telemetry must stay out of the digest "
                f"(see docs/static-analysis.md, rule SIM601)")
    return value


def digest_of(value: Any) -> str:
    """SHA-256 hex digest of ``value``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def combine_digests(parts: Iterable[str]) -> str:
    """Order-sensitive digest of per-task digests (one per line)."""
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
