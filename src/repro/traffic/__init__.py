"""Traffic generation: MoonGen/Pktgen-style load and an iperf-like TCP.

* :mod:`~repro.traffic.flows` — flow specifications (rate, packet size,
  on/off interval, CBR or Poisson arrivals).
* :mod:`~repro.traffic.generator` — drives specs into the NIC at line
  rate or any configured rate.
* :mod:`~repro.traffic.tcp` — a rate-based TCP congestion-control model
  (slow start + AIMD, loss and ECN feedback) sufficient to reproduce the
  §4.3.4 performance-isolation dynamics.
"""

from repro.traffic.flows import FlowSpec
from repro.traffic.generator import TrafficGenerator
from repro.traffic.tcp import TCPFlow

__all__ = ["FlowSpec", "TrafficGenerator", "TCPFlow"]
