"""The traffic generator: MoonGen/Pktgen stand-in (paper §4.1).

"Moongen and Pktgen are configured to generate 64 byte packets at line
rate (10Gbps), and vary the number of flows as needed for each
experiment."  The generator ticks on a fixed period, computes each active
flow's packet budget for the tick, and offers it to the NIC.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.platform.nic import NIC, line_rate_pps
from repro.platform.packet import Flow
from repro.traffic.flows import FlowSpec
from repro.sim.clock import USEC
from repro.sim.engine import EventHandle, EventLoop


class TrafficGenerator:
    """Offers packets from a set of :class:`FlowSpec` into one NIC."""

    def __init__(
        self,
        loop: EventLoop,
        nic: NIC,
        tick_ns: int = 100 * USEC,
        rng: Optional[np.random.Generator] = None,
    ):
        self.loop = loop
        self.nic = nic
        self.tick_ns = int(tick_ns)
        self.rng = rng
        self.specs: List[FlowSpec] = []
        self.offered_total = 0
        self._tick_handle: Optional[EventHandle] = None
        self._rng_batch = True  # single RNG-consuming spec on self.rng?

    def add(self, spec: FlowSpec) -> FlowSpec:
        self.specs.append(spec)
        # Batched draws are only stream-exact when a single spec consumes
        # the shared RNG; Poisson and every arrival-model pattern draw
        # from it, CBR does not.
        self._rng_batch = (
            sum(1 for s in self.specs
                if s.pattern == "poisson" or s.model is not None) <= 1
        )
        return spec

    def add_flow(self, flow: Flow, rate_pps: float, **kwargs) -> FlowSpec:
        """Convenience: wrap a flow in a spec and register it."""
        return self.add(FlowSpec(flow, rate_pps, **kwargs))

    def add_line_rate_flows(self, flows: List[Flow], link_bps: float = 10e9,
                            **kwargs) -> List[FlowSpec]:
        """Split line rate evenly across ``flows`` (the MoonGen setup)."""
        if not flows:
            return []
        per_flow = line_rate_pps(flows[0].pkt_size, link_bps) / len(flows)
        return [self.add_flow(flow, per_flow, **kwargs) for flow in flows]

    def start(self) -> None:
        if self._tick_handle is None:
            self._tick_handle = self.loop.call_every(self.tick_ns, self.tick)

    def stop(self) -> None:
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    # ------------------------------------------------------------------
    def tick(self) -> None:
        now = self.loop.now
        tick_ns = self.tick_ns
        rng = self.rng
        # Poisson batching is only stream-exact when a single spec owns the
        # RNG (maintained by add()).
        rng_batch = self._rng_batch
        receive = self.nic.receive
        offered = 0
        for spec in self.specs:
            # spec.active(now) inlined — this loop runs every 100 µs for
            # every flow of the run.
            if now < spec.start_ns:
                continue
            stop = spec.stop_ns
            if stop is not None and now >= stop:
                continue
            n = spec.next_count(tick_ns, rng, rng_batch)
            if n <= 0:
                continue
            spec.flow.stats.offered += n
            offered += n
            receive(spec.flow, n, now)
        self.offered_total += offered
