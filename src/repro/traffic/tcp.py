"""A rate-based TCP congestion-control model (iperf3 stand-in, §4.3.4).

The Figure 13 experiment needs the *dynamics* of a responsive flow: slow
start, additive increase, and a multiplicative decrease at most once per
RTT when the path reports loss or ECN CE marks.  The model runs one tick
per RTT:

* it reads the flow's cumulative loss (entry discards + queue drops) and
  CE-mark counters, which the platform maintains anyway;
* on fresh feedback it halves ``cwnd`` (and sets ``ssthresh``);
* otherwise it grows ``cwnd`` — doubling below ``ssthresh``, +1 above;
* the resulting rate ``cwnd / RTT`` is written into the generator's
  :class:`~repro.traffic.flows.FlowSpec`, closing the loop.
"""

from __future__ import annotations

from typing import Optional

from repro.platform.packet import Flow
from repro.sim.clock import MSEC, SEC
from repro.sim.engine import EventLoop
from repro.sim.process import PeriodicProcess
from repro.traffic.flows import FlowSpec


class TCPFlow:
    """AIMD rate control driving a :class:`FlowSpec`."""

    def __init__(
        self,
        loop: EventLoop,
        spec: FlowSpec,
        rtt_ns: int = 1 * MSEC,
        init_cwnd: float = 10.0,
        max_cwnd: float = 1000.0,
        ssthresh: Optional[float] = None,
    ):
        if spec.flow.protocol != "tcp":
            raise ValueError("TCPFlow requires a flow with protocol='tcp'")
        self.loop = loop
        self.spec = spec
        self.flow: Flow = spec.flow
        self.flow.tcp = self
        self.rtt_ns = int(rtt_ns)
        self.cwnd = float(init_cwnd)
        self.max_cwnd = float(max_cwnd)
        self.ssthresh = float(ssthresh) if ssthresh is not None else float(max_cwnd)
        self._last_lost = self.flow.stats.lost
        self._last_marks = self.flow.stats.ecn_marks
        self._pending_ecn = 0
        self.decreases = 0
        self._apply_rate()
        self._proc = PeriodicProcess(loop, self.rtt_ns, self.tick, "tcp-rtt")

    def start(self) -> None:
        self._proc.start()

    def stop(self) -> None:
        self._proc.stop()

    # ------------------------------------------------------------------
    def on_ecn_mark(self, count: int, now_ns: int) -> None:
        """CE marks echoed back by the receiver (counted next tick)."""
        self._pending_ecn += count

    def tick(self) -> None:
        lost = self.flow.stats.lost
        marks = self.flow.stats.ecn_marks
        fresh_loss = lost - self._last_lost
        fresh_marks = (marks - self._last_marks) + self._pending_ecn
        self._last_lost = lost
        self._last_marks = marks
        self._pending_ecn = 0

        if fresh_loss > 0 or fresh_marks > 0:
            # One multiplicative decrease per RTT, regardless of how many
            # packets were lost/marked in it (RFC 3168 / NewReno style).
            self.cwnd = max(1.0, self.cwnd / 2.0)
            self.ssthresh = self.cwnd
            self.decreases += 1
        elif self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd * 2.0, self.ssthresh, self.max_cwnd)
        else:
            self.cwnd = min(self.cwnd + 1.0, self.max_cwnd)
        self._apply_rate()

    def _apply_rate(self) -> None:
        self.spec.rate_pps = self.cwnd * SEC / self.rtt_ns

    @property
    def rate_bps(self) -> float:
        return self.spec.rate_pps * self.flow.pkt_size * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TCPFlow({self.flow.flow_id!r}, cwnd={self.cwnd:.1f}, "
            f"rate={self.rate_bps / 1e9:.2f}Gbps)"
        )
