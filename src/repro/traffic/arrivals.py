"""Heavy-tailed and bursty arrival models for the traffic generator.

The CBR/Poisson patterns in :mod:`repro.traffic.flows` model smooth
offered load; tail-latency work needs the opposite — traffic whose
short-term rate departs violently from its mean.  Three classic models:

* :class:`ParetoOnOff` — on/off source with Pareto(α) phase durations:
  heavy-tailed burst lengths (self-similar aggregate traffic à la
  Willinger et al.), emitting at a boosted rate while ON so the long-run
  average still equals ``rate_pps``.
* :class:`MMPP` — 2-state Markov-modulated Poisson process: a background
  and a surge intensity with exponential-ish (geometric per-tick) state
  holding times, normalised so the long-run mean is ``rate_pps``.
* :class:`FlashCrowd` — a deterministic rate envelope (baseline → linear
  ramp → peak hold → decay) over Poisson arrivals: the load spike every
  SLO story starts with.

Determinism contract (PR 4's vectorized-batch + RNG-rewind rules): a
model draws from the supplied RNG **strictly tick by tick** — drawing a
prefix of ``n`` ticks consumes exactly the draws of those ticks — and
exposes :meth:`snapshot`/:meth:`restore` capturing its internal state
exactly.  :class:`~repro.traffic.flows.FlowSpec` builds on those two
properties to serve counts from a precomputed batch and, on a mid-run
rate change, rewind both the RNG and the model to the batch start and
replay the consumed prefix at the old rate — so the emitted stream is
bit-identical to unbatched per-tick draws, mid-run rate changes
included.

Models never construct RNGs (simcheck SIM401); they only consume the
generator handed down from :class:`~repro.sim.rng.RngFactory`.
"""

from __future__ import annotations

from typing import Any, List, Tuple


class ArrivalModel:
    """Stateful per-tick arrival law (see module docstring contract)."""

    #: Pattern name used by :class:`~repro.traffic.flows.FlowSpec`.
    name = "model"

    def draw(self, rate_pps: float, dt_ns: int, n: int, rng) -> List[int]:
        """Arrival counts for the next ``n`` ticks of ``dt_ns`` each.

        Must consume ``rng`` strictly tick by tick, so that
        ``draw(r, dt, k, rng)`` consumes exactly the prefix of the draws
        ``draw(r, dt, n, rng)`` would have made, for any ``k <= n``.
        """
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Internal state, exact (restoring it replays identically)."""
        raise NotImplementedError

    def restore(self, state: Any) -> None:
        raise NotImplementedError


class ParetoOnOff(ArrivalModel):
    """On/off bursts with Pareto-distributed phase durations.

    While ON the source emits CBR at ``rate_pps * (mean_on + mean_off) /
    mean_on`` (so the long-run average equals ``rate_pps``); while OFF it
    is silent.  Phase durations (in ticks) are Pareto(α) with the given
    means via inverse-transform sampling — one uniform draw per phase
    flip, which keeps RNG consumption strictly sequential.  ``alpha <= 2``
    gives the infinite-variance burst lengths of self-similar traffic.
    """

    name = "pareto_onoff"

    def __init__(self, alpha: float = 1.5, mean_on_s: float = 0.005,
                 mean_off_s: float = 0.015):
        if alpha <= 1.0:
            raise ValueError("alpha must be > 1 (finite mean)")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("phase means must be positive")
        self.alpha = float(alpha)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self.burst_factor = (mean_on_s + mean_off_s) / mean_on_s
        self._on = False
        self._left = 0       # ticks remaining in the current phase
        self._carry = 0.0    # fractional packets carried while ON

    def _phase_ticks(self, mean_s: float, dt_ns: int, rng) -> int:
        mean_ticks = mean_s * 1e9 / dt_ns
        # Pareto with mean m: scale xm = m * (alpha-1) / alpha.
        xm = mean_ticks * (self.alpha - 1.0) / self.alpha
        u = rng.random()
        d = xm * (1.0 - u) ** (-1.0 / self.alpha)
        return max(1, int(d))

    def draw(self, rate_pps: float, dt_ns: int, n: int, rng) -> List[int]:
        burst_pps = rate_pps * self.burst_factor
        expected = burst_pps * dt_ns / 1e9
        counts: List[int] = []
        append = counts.append
        for _ in range(n):
            if self._left <= 0:
                self._on = not self._on
                mean_s = self.mean_on_s if self._on else self.mean_off_s
                self._left = self._phase_ticks(mean_s, dt_ns, rng)
            self._left -= 1
            if self._on:
                c = self._carry + expected
                k = int(c)
                self._carry = c - k
                append(k)
            else:
                append(0)
        return counts

    def snapshot(self) -> Tuple[bool, int, float]:
        return (self._on, self._left, self._carry)

    def restore(self, state: Tuple[bool, int, float]) -> None:
        self._on, self._left, self._carry = state


class MMPP(ArrivalModel):
    """2-state Markov-modulated Poisson process.

    Each tick the chain may switch state (geometric holding times with
    the given means — the discrete skeleton of an exponential sojourn),
    then draws Poisson arrivals at ``rate_pps`` scaled by the state's
    intensity factor.  Factors are normalised so the stationary mean rate
    equals ``rate_pps``.  Exactly two RNG draws per tick (one uniform,
    one Poisson), so prefix replay is trivially exact.
    """

    name = "mmpp"

    def __init__(self, low_factor: float = 0.2, high_factor: float = 3.0,
                 mean_low_s: float = 0.01, mean_high_s: float = 0.0025):
        if low_factor < 0 or high_factor <= 0:
            raise ValueError("intensity factors must be non-negative")
        if mean_low_s <= 0 or mean_high_s <= 0:
            raise ValueError("state means must be positive")
        # Stationary probabilities are proportional to the holding means.
        span = mean_low_s + mean_high_s
        mean_factor = (low_factor * mean_low_s
                       + high_factor * mean_high_s) / span
        if mean_factor <= 0:
            raise ValueError("degenerate MMPP: zero mean intensity")
        self.low_factor = low_factor / mean_factor
        self.high_factor = high_factor / mean_factor
        self.mean_low_s = float(mean_low_s)
        self.mean_high_s = float(mean_high_s)
        self._high = False

    def draw(self, rate_pps: float, dt_ns: int, n: int, rng) -> List[int]:
        counts: List[int] = []
        append = counts.append
        for _ in range(n):
            mean_s = self.mean_high_s if self._high else self.mean_low_s
            p_switch = dt_ns / (mean_s * 1e9)
            if rng.random() < p_switch:
                self._high = not self._high
            factor = self.high_factor if self._high else self.low_factor
            lam = rate_pps * factor * dt_ns / 1e9
            append(int(rng.poisson(lam)))
        return counts

    def snapshot(self) -> bool:
        return self._high

    def restore(self, state: bool) -> None:
        self._high = state


class FlashCrowd(ArrivalModel):
    """Poisson arrivals under a deterministic flash-crowd envelope.

    The intensity multiplier is 1 until ``start_s``, ramps linearly to
    ``peak_factor`` over ``ramp_s``, holds for ``hold_s``, decays back to
    1 over ``decay_s`` (default: ``ramp_s``), then stays at baseline.
    Time is the model's own tick counter — independent of absolute
    simulation time, so the envelope is identical wherever the flow
    starts.  One Poisson draw per tick.
    """

    name = "flash_crowd"

    def __init__(self, start_s: float = 0.01, ramp_s: float = 0.01,
                 hold_s: float = 0.02, peak_factor: float = 5.0,
                 decay_s: float = None):
        if peak_factor < 1.0:
            raise ValueError("peak_factor must be >= 1")
        if start_s < 0 or ramp_s < 0 or hold_s < 0:
            raise ValueError("envelope times must be non-negative")
        self.start_s = float(start_s)
        self.ramp_s = float(ramp_s)
        self.hold_s = float(hold_s)
        self.peak_factor = float(peak_factor)
        self.decay_s = float(ramp_s if decay_s is None else decay_s)
        self._tick = 0

    def factor_at(self, t_s: float) -> float:
        """The envelope multiplier at model time ``t_s``."""
        t = t_s - self.start_s
        if t < 0:
            return 1.0
        if t < self.ramp_s:
            return 1.0 + (self.peak_factor - 1.0) * t / self.ramp_s
        t -= self.ramp_s
        if t < self.hold_s:
            return self.peak_factor
        t -= self.hold_s
        if t < self.decay_s:
            return self.peak_factor - (
                (self.peak_factor - 1.0) * t / self.decay_s)
        return 1.0

    def draw(self, rate_pps: float, dt_ns: int, n: int, rng) -> List[int]:
        counts: List[int] = []
        append = counts.append
        for _ in range(n):
            t_s = self._tick * dt_ns / 1e9
            lam = rate_pps * self.factor_at(t_s) * dt_ns / 1e9
            append(int(rng.poisson(lam)))
            self._tick += 1
        return counts

    def snapshot(self) -> int:
        return self._tick

    def restore(self, state: int) -> None:
        self._tick = state


#: Pattern name -> model class, the names FlowSpec accepts directly.
ARRIVAL_MODELS = {
    ParetoOnOff.name: ParetoOnOff,
    MMPP.name: MMPP,
    FlashCrowd.name: FlashCrowd,
}


def make_arrival_model(pattern: str, **params) -> ArrivalModel:
    """Instantiate an arrival model by pattern name."""
    cls = ARRIVAL_MODELS.get(pattern)
    if cls is None:
        known = ", ".join(sorted(ARRIVAL_MODELS))
        raise ValueError(
            f"unknown arrival pattern {pattern!r} (models: {known})")
    return cls(**params)
