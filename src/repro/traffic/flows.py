"""Flow specifications for the traffic generator."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.platform.packet import Flow
from repro.traffic.arrivals import ArrivalModel, make_arrival_model


class FlowSpec:
    """How one flow is offered to the NIC.

    ``rate_pps`` is read every generator tick, so a congestion-control
    model (or a scripted experiment such as Figure 15a's cost step) can
    change it mid-run.  ``start_ns``/``stop_ns`` bound the active interval
    (Figure 13 turns its UDP flows on at t=15 s and off at t=40 s).

    ``pattern`` is ``"cbr"``, ``"poisson"``, or any name registered in
    :data:`repro.traffic.arrivals.ARRIVAL_MODELS` (``"pareto_onoff"``,
    ``"mmpp"``, ``"flash_crowd"``) — constructed with ``model_params``.
    A pre-built :class:`~repro.traffic.arrivals.ArrivalModel` instance
    can be passed via ``model`` instead.
    """

    def __init__(
        self,
        flow: Flow,
        rate_pps: float,
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
        pattern: str = "cbr",
        model: Optional[ArrivalModel] = None,
        model_params: Optional[dict] = None,
    ):
        if rate_pps < 0:
            raise ValueError("rate must be non-negative")
        if model is not None:
            if model_params:
                raise ValueError(
                    "model_params only applies when the model is built "
                    "from a pattern name")
            pattern = model.name
        elif pattern not in ("cbr", "poisson"):
            # Raises for genuinely unknown patterns.
            model = make_arrival_model(pattern, **(model_params or {}))
        elif model_params:
            raise ValueError(
                f"pattern {pattern!r} takes no model_params")
        self.flow = flow
        self.rate_pps = float(rate_pps)
        self.start_ns = int(start_ns)
        self.stop_ns = None if stop_ns is None else int(stop_ns)
        self.pattern = pattern
        self.model = model
        self._carry = 0.0  # fractional packets carried between ticks
        # Precomputed per-tick counts (see next_count).  The batch is a
        # pure function of (_carry, rate, dt) for CBR, or a block of RNG
        # draws for Poisson/model specs; _batch_rate detects mid-run rate
        # changes.
        self._batch: Optional[List[int]] = None
        self._batch_pos = 0
        self._batch_rate = -1.0
        self._batch_carry0 = 0.0   # CBR carry at the batch's first tick
        self._batch_state = None   # RNG state before the batch's draws
        self._model_state: Any = None  # model snapshot at the batch start

    def active(self, now_ns: int) -> bool:
        if now_ns < self.start_ns:
            return False
        if self.stop_ns is not None and now_ns >= self.stop_ns:
            return False
        return True

    #: Ticks of arrivals precomputed per batch refill.
    _BATCH_TICKS = 256

    def packets_this_tick(self, dt_ns: int, rng=None) -> int:
        """Packets to emit for a tick of ``dt_ns`` (CBR keeps a fractional
        carry so long-run rates are exact; Poisson draws from the RNG)."""
        if self.model is not None:
            if rng is None:
                raise ValueError(f"{self.pattern} arrivals need an RNG")
            return self.model.draw(self.rate_pps, dt_ns, 1, rng)[0]
        expected = self.rate_pps * dt_ns / 1e9
        if self.pattern == "poisson":
            if rng is None:
                raise ValueError("poisson arrivals need an RNG")
            return int(rng.poisson(expected))
        self._carry += expected
        n = int(self._carry)
        self._carry -= n
        return n

    def next_count(self, dt_ns: int, rng=None, rng_batch: bool = False) -> int:
        """Batched equivalent of :meth:`packets_this_tick`.

        Serves per-tick arrival counts from a precomputed block, refilling
        ``_BATCH_TICKS`` at a time.  The emitted count sequence is
        bit-identical to calling :meth:`packets_this_tick` every tick:

        * CBR counts come from the exact iterative carry recurrence (the
          float additions happen in the same order, just ahead of time);
          a mid-run ``rate_pps`` change replays the recurrence up to the
          consumed position to recover the true carry before rebatching.
        * Poisson counts are one vectorized ``rng.poisson(lam, size=B)``
          call — numpy consumes the bit stream per-value, so the draws
          match ``B`` scalar calls.  Only enabled when the caller
          guarantees this spec is the *only* consumer of ``rng``
          (``rng_batch=True``); a rate change rewinds the generator to the
          batch start and re-draws exactly the consumed prefix so the
          stream position stays where scalar draws would have left it.
        """
        batch = self._batch
        pos = self._batch_pos
        if (
            batch is None
            or pos >= len(batch)
            or self.rate_pps != self._batch_rate
        ):
            return self._refill(dt_ns, rng, rng_batch)
        self._batch_pos = pos + 1
        return batch[pos]

    def _refill(self, dt_ns: int, rng, rng_batch: bool) -> int:
        if self.model is not None:
            return self._refill_model(dt_ns, rng, rng_batch)
        pos = self._batch_pos
        stale = self._batch is not None and pos < len(self._batch)
        if self.pattern == "cbr":
            if stale:
                # Rate changed mid-batch: recover the carry at `pos` by
                # replaying the old recurrence (exact — same float ops).
                c = self._batch_carry0
                e = self._batch_rate * dt_ns / 1e9
                for _ in range(pos):
                    c += e
                    c -= int(c)
                self._carry = c
            expected = self.rate_pps * dt_ns / 1e9
            c = self._carry
            self._batch_carry0 = c
            counts = []
            append = counts.append
            for _ in range(self._BATCH_TICKS):
                c += expected
                n = int(c)
                c -= n
                append(n)
            self._carry = c
        else:
            if rng is None:
                raise ValueError("poisson arrivals need an RNG")
            if not rng_batch:
                # Shared RNG: batching would interleave the stream
                # differently than scalar draws; stay scalar.
                self._batch = None
                self._batch_rate = self.rate_pps
                return int(rng.poisson(self.rate_pps * dt_ns / 1e9))
            if stale:
                # Rewind to the batch start and burn exactly the draws a
                # scalar caller would have made, so the stream position
                # (and every future draw) matches the unbatched run.
                rng.bit_generator.state = self._batch_state
                old_lam = self._batch_rate * dt_ns / 1e9
                if pos:
                    rng.poisson(old_lam, size=pos)
            self._batch_state = rng.bit_generator.state
            lam = self.rate_pps * dt_ns / 1e9
            counts = [int(v) for v in
                      rng.poisson(lam, size=self._BATCH_TICKS)]
        self._batch = counts
        self._batch_rate = self.rate_pps
        self._batch_pos = 1
        return counts[0]

    def _refill_model(self, dt_ns: int, rng, rng_batch: bool) -> int:
        """Batch refill for :class:`~repro.traffic.arrivals.ArrivalModel`
        specs — the Poisson rewind protocol extended with the model's own
        state: on a stale batch both the RNG *and* the model rewind to
        the batch start, then replay exactly the consumed prefix at the
        old rate, so the emitted stream (and every future RNG draw)
        matches per-tick scalar draws bit for bit."""
        if rng is None:
            raise ValueError(f"{self.pattern} arrivals need an RNG")
        model = self.model
        if not rng_batch:
            # Shared RNG: batching would interleave the stream
            # differently than scalar draws; stay scalar.
            self._batch = None
            self._batch_rate = self.rate_pps
            return model.draw(self.rate_pps, dt_ns, 1, rng)[0]
        pos = self._batch_pos
        stale = self._batch is not None and pos < len(self._batch)
        if stale:
            rng.bit_generator.state = self._batch_state
            model.restore(self._model_state)
            if pos:
                model.draw(self._batch_rate, dt_ns, pos, rng)
        self._batch_state = rng.bit_generator.state
        self._model_state = model.snapshot()
        counts = model.draw(self.rate_pps, dt_ns, self._BATCH_TICKS, rng)
        self._batch = counts
        self._batch_rate = self.rate_pps
        self._batch_pos = 1
        return counts[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowSpec({self.flow.flow_id!r}, {self.rate_pps:g}pps, "
            f"{self.pattern})"
        )
