"""Flow specifications for the traffic generator."""

from __future__ import annotations

from typing import Optional

from repro.platform.packet import Flow


class FlowSpec:
    """How one flow is offered to the NIC.

    ``rate_pps`` is read every generator tick, so a congestion-control
    model (or a scripted experiment such as Figure 15a's cost step) can
    change it mid-run.  ``start_ns``/``stop_ns`` bound the active interval
    (Figure 13 turns its UDP flows on at t=15 s and off at t=40 s).
    """

    def __init__(
        self,
        flow: Flow,
        rate_pps: float,
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
        pattern: str = "cbr",
    ):
        if rate_pps < 0:
            raise ValueError("rate must be non-negative")
        if pattern not in ("cbr", "poisson"):
            raise ValueError(f"unknown arrival pattern {pattern!r}")
        self.flow = flow
        self.rate_pps = float(rate_pps)
        self.start_ns = int(start_ns)
        self.stop_ns = None if stop_ns is None else int(stop_ns)
        self.pattern = pattern
        self._carry = 0.0  # fractional packets carried between ticks

    def active(self, now_ns: int) -> bool:
        if now_ns < self.start_ns:
            return False
        if self.stop_ns is not None and now_ns >= self.stop_ns:
            return False
        return True

    def packets_this_tick(self, dt_ns: int, rng=None) -> int:
        """Packets to emit for a tick of ``dt_ns`` (CBR keeps a fractional
        carry so long-run rates are exact; Poisson draws from the RNG)."""
        expected = self.rate_pps * dt_ns / 1e9
        if self.pattern == "poisson":
            if rng is None:
                raise ValueError("poisson arrivals need an RNG")
            return int(rng.poisson(expected))
        self._carry += expected
        n = int(self._carry)
        self._carry -= n
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowSpec({self.flow.flow_id!r}, {self.rate_pps:g}pps, "
            f"{self.pattern})"
        )
