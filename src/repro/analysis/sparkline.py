"""ASCII sparklines for time series.

Terminal-friendly rendering of per-second series — enough to *see*
Figure 13's TCP collapse-and-recovery or 15a's share step without a
plotting stack.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metrics.timeseries import TimeSeries

#: Eight-level block ramp.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render ``values`` as one line of block characters.

    ``lo``/``hi`` pin the scale (default: data min/max), so multiple
    sparklines can share an axis.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else float(lo)
    hi = max(vals) if hi is None else float(hi)
    span = hi - lo
    if span <= 0:
        mid = _BLOCKS[len(_BLOCKS) // 2]
        return mid * len(vals)
    out = []
    top = len(_BLOCKS) - 1
    for v in vals:
        norm = (v - lo) / span
        idx = int(round(norm * top))
        out.append(_BLOCKS[max(0, min(top, idx))])
    return "".join(out)


def render_series(series: TimeSeries, label: str = "",
                  width: int = 60, unit: str = "") -> str:
    """A labelled sparkline with min/max annotations, resampled to
    ``width`` columns by bucket-averaging."""
    values = list(series.values)
    if not values:
        return f"{label}: (empty)"
    if len(values) > width:
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):max(int(i * bucket) + 1,
                                           int((i + 1) * bucket))])
            / max(1, len(values[int(i * bucket):max(int(i * bucket) + 1,
                                                    int((i + 1) * bucket))]))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    line = sparkline(values, lo, hi)
    prefix = f"{label}: " if label else ""
    return f"{prefix}[{line}] min={lo:.3g}{unit} max={hi:.3g}{unit}"
