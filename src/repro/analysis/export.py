"""Serialising scenario results.

``ScenarioResult`` is a tree of dataclasses plus time series; these
helpers flatten it to JSON-compatible dicts so that experiment outputs
can be archived next to the code revision that produced them and diffed
run-over-run (the reproduction's equivalent of keeping the testbed's raw
measurement logs).
"""

from __future__ import annotations

#: Digest-safety contract marker, verified by ``repro check --deep``
#: (SIM603) against ``repro.check.registry.MARKED_MODULES``.
__digest_safety__ = "digest-checked: serialises the digest payload"

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.check.sanitizer import SanitizerViolation
from repro.experiments.common import ChainSummary, NFSummary, ScenarioResult
from repro.metrics.timeseries import TimeSeries


def result_to_dict(result: ScenarioResult,
                   include_series: bool = True,
                   include_telemetry: bool = False) -> Dict[str, Any]:
    """Flatten a :class:`ScenarioResult` into JSON-compatible data.

    ``flow_latency`` and ``causality`` (like ``loop_stats``) are excluded
    by default: the default output feeds the campaign digests, which must
    be bit-identical with telemetry enabled or disabled.  Pass
    ``include_telemetry=True`` to archive them alongside the result.
    """
    out: Dict[str, Any] = {
        "scheduler": result.scheduler,
        "features": result.features,
        "duration_s": result.duration_s,
        "sched_trace_dropped": result.sched_trace_dropped,
        "total_throughput_pps": result.total_throughput_pps,
        "total_wasted_pps": result.total_wasted_pps,
        "total_entry_discard_pps": result.total_entry_discard_pps,
        "chains": {name: dataclasses.asdict(c)
                   for name, c in result.chains.items()},
        "nfs": {name: dataclasses.asdict(n)
                for name, n in result.nfs.items()},
        "core_utilization": {str(k): v
                             for k, v in result.core_utilization.items()},
        "resilience": result.resilience,
        # Always present (empty on clean or unsanitized runs) so that a
        # sanitize-clean run digests identically to a normal run.
        "sanitizer_violations": [v.to_dict()
                                 for v in result.sanitizer_violations],
    }
    if include_series:
        out["series"] = {
            name: {"times": list(ts.times), "values": list(ts.values)}
            for name, ts in result.series.items()
        }
    if include_telemetry:
        out["flow_latency"] = result.flow_latency
        out["causality"] = result.causality
    return out


def save_result(result: ScenarioResult, path: Union[str, Path],
                include_series: bool = True) -> Path:
    """Write a result as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(result_to_dict(result, include_series), fh, indent=2)
    return path


def load_result_dict(path: Union[str, Path]) -> Dict[str, Any]:
    """Read back a saved result (as a plain dict — sufficient for
    comparisons and plotting; the live object graph is not recreated)."""
    with open(path) as fh:
        return json.load(fh)


def series_from_dict(data: Dict[str, Any], name: str = "") -> TimeSeries:
    """Rebuild a :class:`TimeSeries` from its exported form."""
    ts = TimeSeries(name)
    for t, v in zip(data["times"], data["values"]):
        ts.append(int(t), float(v))
    return ts


def result_from_dict(data: Dict[str, Any]) -> ScenarioResult:
    """Rebuild a live :class:`ScenarioResult` from its exported form.

    Inverse of :func:`result_to_dict`: ``result_from_dict(result_to_dict(r))``
    compares equal field-by-field (time series included when exported).
    """
    chains = {
        name: ChainSummary(**{**c, "tput_series": tuple(c["tput_series"])})
        for name, c in data.get("chains", {}).items()
    }
    nfs = {name: NFSummary(**n) for name, n in data.get("nfs", {}).items()}
    series = {
        name: series_from_dict(s, name)
        for name, s in data.get("series", {}).items()
    }
    return ScenarioResult(
        scheduler=data["scheduler"],
        features=data["features"],
        duration_s=data["duration_s"],
        total_throughput_pps=data["total_throughput_pps"],
        total_wasted_pps=data["total_wasted_pps"],
        total_entry_discard_pps=data["total_entry_discard_pps"],
        chains=chains,
        nfs=nfs,
        core_utilization={int(k): v
                          for k, v in data.get("core_utilization", {}).items()},
        series=series,
        sched_trace_dropped=int(data.get("sched_trace_dropped", 0)),
        resilience=data.get("resilience", {}),
        sanitizer_violations=[
            SanitizerViolation.from_dict(v)
            for v in data.get("sanitizer_violations", [])
        ],
        flow_latency=data.get("flow_latency", {}),
        causality=data.get("causality", {}),
    )


def load_result(path: Union[str, Path]) -> ScenarioResult:
    """Read a saved result back as a live :class:`ScenarioResult`."""
    return result_from_dict(load_result_dict(path))
