"""Result analysis helpers.

* :mod:`~repro.analysis.export` — serialise :class:`ScenarioResult` to
  JSON-compatible dicts and back, so experiment outputs can be archived
  and diffed across code versions.
* :mod:`~repro.analysis.compare` — side-by-side comparison tables
  (speedups, deltas) between two results.
* :mod:`~repro.analysis.sparkline` — compact ASCII rendering of time
  series for terminal reports (Figure 13's Gbps-over-time, 15a's shares).
"""

from repro.analysis.compare import compare_results
from repro.analysis.export import (
    load_result,
    load_result_dict,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.analysis.sparkline import sparkline, render_series

__all__ = [
    "compare_results",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "load_result_dict",
    "sparkline",
    "render_series",
]
