"""Side-by-side result comparison.

The evaluation constantly contrasts a Default run with an NFVnice run of
the same topology; :func:`compare_results` renders that contrast as one
table with speedup factors.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ScenarioResult
from repro.metrics.report import render_table


def _ratio(new: float, old: float) -> str:
    if old == 0:
        return "inf" if new > 0 else "1.0x"
    return f"{new / old:.2f}x"


def compare_results(baseline: ScenarioResult, candidate: ScenarioResult,
                    baseline_label: str = "baseline",
                    candidate_label: str = "candidate") -> str:
    """A table contrasting two runs of the same topology."""
    rows: List[list] = [
        [
            "total throughput (pps)",
            baseline.total_throughput_pps,
            candidate.total_throughput_pps,
            _ratio(candidate.total_throughput_pps,
                   baseline.total_throughput_pps),
        ],
        [
            "wasted drops (pps)",
            baseline.total_wasted_pps,
            candidate.total_wasted_pps,
            _ratio(candidate.total_wasted_pps, baseline.total_wasted_pps),
        ],
        [
            "entry discards (pps)",
            baseline.total_entry_discard_pps,
            candidate.total_entry_discard_pps,
            _ratio(candidate.total_entry_discard_pps,
                   baseline.total_entry_discard_pps),
        ],
    ]
    for name in sorted(set(baseline.chains) & set(candidate.chains)):
        b, c = baseline.chain(name), candidate.chain(name)
        rows.append([
            f"chain {name} (pps)",
            b.throughput_pps,
            c.throughput_pps,
            _ratio(c.throughput_pps, b.throughput_pps),
        ])
        rows.append([
            f"chain {name} p50 latency (us)",
            b.latency_p50_us,
            c.latency_p50_us,
            _ratio(c.latency_p50_us, b.latency_p50_us),
        ])
    for name in sorted(set(baseline.nfs) & set(candidate.nfs)):
        b_nf, c_nf = baseline.nf(name), candidate.nf(name)
        rows.append([
            f"NF {name} cpu share",
            round(b_nf.cpu_share, 3),
            round(c_nf.cpu_share, 3),
            _ratio(c_nf.cpu_share, b_nf.cpu_share),
        ])
    return render_table(
        ["metric", baseline_label, candidate_label, "ratio"],
        rows,
        title=f"{candidate_label} vs {baseline_label} "
              f"({baseline.scheduler} scheduler)",
    )
