"""Network-function building blocks.

* :mod:`~repro.nfs.cost_models` — per-packet CPU cost models (fixed and
  stochastic), with the buffered-draw property the core's run planner
  relies on.
* :mod:`~repro.nfs.catalog` — ready-made NFs matching the classes the
  paper measures: forwarders at hundreds of cycles, DPI/encryption at
  thousands, plus logging NFs that exercise the I/O path and a
  misbehaving NF that never yields.
"""

from repro.nfs.cost_models import (
    ChoiceCost,
    CostModel,
    ExponentialCost,
    FixedCost,
    NormalCost,
    UniformCost,
)
from repro.nfs.catalog import (
    make_bridge,
    make_dpi,
    make_encryptor,
    make_firewall,
    make_logger,
    make_misbehaving,
    make_monitor,
    make_nf,
)

__all__ = [
    "CostModel",
    "FixedCost",
    "ChoiceCost",
    "NormalCost",
    "UniformCost",
    "ExponentialCost",
    "make_nf",
    "make_bridge",
    "make_monitor",
    "make_firewall",
    "make_dpi",
    "make_encryptor",
    "make_logger",
    "make_misbehaving",
]
