"""A catalog of ready-made network functions.

The paper motivates NFVnice with the diversity of real middleboxes: "some
NFs have per-core throughput in the order of million packets per second,
e.g., switches; others have throughputs as low as a few kilo pps, e.g.,
encryption engines" (§2.1).  The factory functions below instantiate
:class:`~repro.core.nf.NFProcess` with representative cost models; the
cycle figures are the ones the evaluation uses where it names them.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.nf import NFProcess
from repro.nfs.cost_models import ExponentialCost, FixedCost
from repro.platform.config import PlatformConfig
from repro.platform.packet import Flow


def make_nf(
    name: str,
    cycles_per_packet: float,
    config: Optional[PlatformConfig] = None,
    **kwargs,
) -> NFProcess:
    """A generic fixed-cost NF — the building block of most experiments."""
    return NFProcess(name, FixedCost(cycles_per_packet), config=config, **kwargs)


def make_bridge(name: str = "bridge",
                config: Optional[PlatformConfig] = None, **kwargs) -> NFProcess:
    """An L2 bridge: the cheapest NF class (~120 cycles/packet)."""
    return make_nf(name, 120, config, **kwargs)


def make_monitor(name: str = "monitor",
                 config: Optional[PlatformConfig] = None, **kwargs) -> NFProcess:
    """A flow monitor: header inspection plus counters (~270 cycles)."""
    return make_nf(name, 270, config, **kwargs)


def make_firewall(name: str = "firewall",
                  config: Optional[PlatformConfig] = None, **kwargs) -> NFProcess:
    """A rule-matching firewall (~550 cycles/packet)."""
    return make_nf(name, 550, config, **kwargs)


def make_dpi(name: str = "dpi",
             config: Optional[PlatformConfig] = None, **kwargs) -> NFProcess:
    """Deep packet inspection: payload scanning (~2200 cycles/packet)."""
    return make_nf(name, 2200, config, **kwargs)


def make_encryptor(name: str = "encrypt",
                   config: Optional[PlatformConfig] = None, **kwargs) -> NFProcess:
    """An encryption engine: the heaviest class (~4500 cycles/packet)."""
    return make_nf(name, 4500, config, **kwargs)


def make_logger(
    name: str,
    io,
    cycles_per_packet: float = 300,
    io_selector: Optional[Callable[[Flow], bool]] = None,
    config: Optional[PlatformConfig] = None,
    **kwargs,
) -> NFProcess:
    """A packet logger: writes (selected) packets to disk (§4.3.5).

    ``io`` is a Sync/AsyncIOContext; ``io_selector`` restricts which flows
    are logged (default: all).
    """
    return NFProcess(
        name,
        FixedCost(cycles_per_packet),
        config=config,
        io=io,
        io_selector=io_selector,
        **kwargs,
    )


def make_misbehaving(name: str = "spinner",
                     config: Optional[PlatformConfig] = None, **kwargs) -> NFProcess:
    """An NF stuck in a loop that never yields (§2.1's malicious case)."""
    return NFProcess(name, FixedCost(1000), config=config, busy_loop=True,
                     **kwargs)


def make_dns_proxy(name: str = "dns-proxy",
                   config: Optional[PlatformConfig] = None,
                   rng=None, **kwargs) -> NFProcess:
    """A proxy with heavy-tailed cost: most packets are a cheap header
    match, some trigger an expensive lookup (§1's example)."""
    return NFProcess(name, ExponentialCost(800, rng=rng), config=config,
                     **kwargs)
