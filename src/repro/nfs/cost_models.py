"""Per-packet CPU cost models.

The paper's NFs span 50-10 000 cycles per packet, and §4.3.1 stresses NFs
whose *per-packet* cost varies (120/270/550 cycles drawn per packet).

Cost models expose a **buffered draw** discipline: ``peek_sum(n)`` reveals
the cost of the next ``n`` packets without consuming them, and
``consume_upto(budget, max_packets)`` consumes whole-packet costs in the
same order.  The core's run planner needs estimates that are exact for the
packets it later executes — pre-drawing into a buffer guarantees the cycles
foreseen equal the cycles charged.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sim.rng import fallback_generator

#: Draws appended to the prefix-sum buffer at a time.  This quantum is
#: load-bearing for reproducibility: the float grouping of the running
#: cumulative sum depends on where the ``np.cumsum`` chunks break, so
#: changing it would shift digest-checked results by ULPs.  Widening the
#: *RNG* batch happens one layer down (see ``_RAW_REFILL``), which leaves
#: the cumulative-sum chunking untouched.
_REFILL = 1024
#: Values pulled from the underlying RNG per call.  numpy's vectorized
#: samplers consume the bit stream per-value, so one size-8192 draw yields
#: the same values as eight size-1024 draws — pinned by
#: ``tests/test_perf_equivalence.py``.
_RAW_REFILL = 8192
#: Compact the consumed prefix when it exceeds this many entries.
_COMPACT = 65536


class CostModel:
    """Interface: cycles charged per packet, in packet order."""

    #: Long-run mean cycles per packet (used for reporting, not planning).
    mean_cycles: float = 0.0

    def peek_sum(self, n: int) -> float:
        """Total cycles of the next ``n`` packets (no consumption)."""
        raise NotImplementedError

    def consume_upto(self, budget_cycles: float, max_packets: int) -> Tuple[int, float]:
        """Consume whole packets while their cumulative cost fits the budget.

        Returns ``(packets, cycles_used)`` with ``packets <= max_packets``.
        """
        raise NotImplementedError

    def consume(self, n: int) -> float:
        """Unconditionally consume ``n`` packets; returns cycles used."""
        raise NotImplementedError


class FixedCost(CostModel):
    """Every packet costs exactly ``cycles`` — the common case, O(1)."""

    def __init__(self, cycles: float):
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles!r}")
        self.cycles = float(cycles)
        self.mean_cycles = self.cycles

    def peek_sum(self, n: int) -> float:
        return n * self.cycles

    def consume_upto(self, budget_cycles: float, max_packets: int) -> Tuple[int, float]:
        if max_packets <= 0 or budget_cycles < self.cycles:
            return 0, 0.0
        k = min(max_packets, int(budget_cycles // self.cycles))
        return k, k * self.cycles

    def consume(self, n: int) -> float:
        return n * self.cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedCost({self.cycles:g})"


class BufferedCost(CostModel):
    """Base for stochastic models: pre-draws costs into a prefix-sum buffer."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng if rng is not None else fallback_generator()
        self._cum = np.zeros(1)  # _cum[i] = total cost of first i buffered pkts
        self._pos = 0            # packets already consumed from the buffer
        self._raw = np.zeros(0)  # draw-ahead pool of un-summed RNG values
        self._raw_pos = 0

    def _draw_block(self, n: int) -> np.ndarray:
        """Produce ``n`` per-packet costs from the RNG (subclass duty)."""
        raise NotImplementedError

    def _draw(self, n: int) -> np.ndarray:
        """Serve ``n`` costs from the draw-ahead pool, refilling in bulk.

        Amortises the per-call overhead of the numpy samplers (argument
        checking, method dispatch) across ``_RAW_REFILL`` values while the
        value *stream* stays identical to drawing ``n`` at a time.
        """
        raw = self._raw
        pos = self._raw_pos
        avail = len(raw) - pos
        if avail >= n:
            self._raw_pos = pos + n
            return raw[pos:pos + n]
        need = n - avail
        block = self._draw_block(need if need > _RAW_REFILL else _RAW_REFILL)
        if avail == 0:
            self._raw = block
            self._raw_pos = need
            return block[:need]
        self._raw = block
        self._raw_pos = need
        return np.concatenate([raw[pos:], block[:need]])

    def _ensure(self, n: int) -> None:
        """Grow the buffer until ``n`` un-consumed draws are available."""
        have = len(self._cum) - 1 - self._pos
        if have >= n:
            return
        need = max(n - have, _REFILL)
        fresh = self._draw(need)
        fresh = np.maximum(fresh, 1.0)  # a packet always costs >= 1 cycle
        ext = self._cum[-1] + np.cumsum(fresh)
        self._cum = np.concatenate([self._cum, ext])
        if self._pos > _COMPACT:
            base = self._cum[self._pos]
            self._cum = self._cum[self._pos:] - base
            self._pos = 0

    def peek_sum(self, n: int) -> float:
        if n <= 0:
            return 0.0
        self._ensure(n)
        return float(self._cum[self._pos + n] - self._cum[self._pos])

    def consume_upto(self, budget_cycles: float, max_packets: int) -> Tuple[int, float]:
        if max_packets <= 0 or budget_cycles <= 0:
            return 0, 0.0
        self._ensure(max_packets)
        base = self._cum[self._pos]
        # Largest k <= max_packets with cum[pos+k]-base <= budget.
        hi = self._pos + max_packets
        k = int(
            np.searchsorted(self._cum[self._pos + 1: hi + 1], base + budget_cycles,
                            side="right")
        )
        if k == 0:
            return 0, 0.0
        used = float(self._cum[self._pos + k] - base)
        self._pos += k
        return k, used

    def consume(self, n: int) -> float:
        if n <= 0:
            return 0.0
        self._ensure(n)
        used = float(self._cum[self._pos + n] - self._cum[self._pos])
        self._pos += n
        return used


class ChoiceCost(BufferedCost):
    """Each packet's cost drawn from a discrete set (§4.3.1: 120/270/550)."""

    def __init__(self, values, probabilities=None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(rng)
        self.values = np.asarray(values, dtype=float)
        if np.any(self.values <= 0):
            raise ValueError("all cost values must be positive")
        if probabilities is None:
            self.probabilities = np.full(len(self.values), 1.0 / len(self.values))
        else:
            self.probabilities = np.asarray(probabilities, dtype=float)
            if len(self.probabilities) != len(self.values):
                raise ValueError("probabilities must match values")
            total = self.probabilities.sum()
            if not np.isclose(total, 1.0):
                raise ValueError(f"probabilities must sum to 1, got {total}")
        self.mean_cycles = float(np.dot(self.values, self.probabilities))

    def _draw_block(self, n: int) -> np.ndarray:
        return self._rng.choice(self.values, size=n, p=self.probabilities)


class NormalCost(BufferedCost):
    """Gaussian per-packet cost, truncated at 1 cycle."""

    def __init__(self, mean: float, std: float,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(rng)
        if mean <= 0 or std < 0:
            raise ValueError("mean must be positive and std non-negative")
        self.mean = float(mean)
        self.std = float(std)
        self.mean_cycles = self.mean

    def _draw_block(self, n: int) -> np.ndarray:
        return self._rng.normal(self.mean, self.std, size=n)


class UniformCost(BufferedCost):
    """Uniform per-packet cost in [low, high]."""

    def __init__(self, low: float, high: float,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(rng)
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self.low = float(low)
        self.high = float(high)
        self.mean_cycles = 0.5 * (self.low + self.high)

    def _draw_block(self, n: int) -> np.ndarray:
        return self._rng.uniform(self.low, self.high, size=n)


class ExponentialCost(BufferedCost):
    """Heavy-tailed cost — e.g. an NF where some packets trigger an
    expensive DNS lookup while most are a cheap header match (§1)."""

    def __init__(self, mean: float, rng: Optional[np.random.Generator] = None):
        super().__init__(rng)
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.mean = float(mean)
        self.mean_cycles = self.mean

    def _draw_block(self, n: int) -> np.ndarray:
        return self._rng.exponential(self.mean, size=n)


class ScaledCost(CostModel):
    """Multiplies an inner model's per-packet cost by a constant factor.

    The fault injector wraps an NF's cost model with this to impose a
    *slowdown* (a leaking NF, a cache-thrashing co-tenant, a thermally
    throttled core); unwrapping restores the original behaviour exactly
    because the inner model's buffered draws are untouched.
    """

    def __init__(self, inner: CostModel, factor: float):
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor!r}")
        self.inner = inner
        self.factor = float(factor)
        self.mean_cycles = inner.mean_cycles * self.factor
        # Cached fast path for the common fixed-cost inner model: the
        # whole consume_upto collapses to arithmetic, with the float
        # operations in the exact order of the delegated path
        # (budget/factor, floor-divide by cycles, k*cycles, then *factor).
        self._fixed_cycles = (
            inner.cycles if type(inner) is FixedCost else None
        )

    def peek_sum(self, n: int) -> float:
        if n <= 0:
            return 0.0
        c = self._fixed_cycles
        if c is not None:
            return (n * c) * self.factor
        return self.inner.peek_sum(n) * self.factor

    def consume_upto(self, budget_cycles: float, max_packets: int) -> Tuple[int, float]:
        if max_packets <= 0 or budget_cycles <= 0:
            return 0, 0.0
        c = self._fixed_cycles
        if c is not None:
            b = budget_cycles / self.factor
            if b < c:
                return 0, 0.0
            k = int(b // c)
            if k > max_packets:
                k = max_packets
            return k, (k * c) * self.factor
        k, used = self.inner.consume_upto(budget_cycles / self.factor,
                                          max_packets)
        return k, used * self.factor

    def consume(self, n: int) -> float:
        if n <= 0:
            return 0.0
        return self.inner.consume(n) * self.factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScaledCost({self.inner!r}, x{self.factor:g})"


class WithOverhead(CostModel):
    """Adds a fixed per-packet framework overhead to an inner model.

    Real OpenNetVM NFs pay ring dequeue/enqueue, descriptor handling and
    libnf bookkeeping on top of the NF's own packet-handler cost; the
    platform wraps each NF's cost model with this when
    ``PlatformConfig.nf_overhead_cycles`` is non-zero.
    """

    def __init__(self, inner: CostModel, overhead_cycles: float):
        if overhead_cycles < 0:
            raise ValueError("overhead must be non-negative")
        self.inner = inner
        self.overhead = float(overhead_cycles)
        self.mean_cycles = inner.mean_cycles + self.overhead

    def peek_sum(self, n: int) -> float:
        if n <= 0:
            return 0.0
        return self.inner.peek_sum(n) + n * self.overhead

    def consume_upto(self, budget_cycles: float, max_packets: int) -> Tuple[int, float]:
        if max_packets <= 0 or budget_cycles <= 0:
            return 0, 0.0
        # Largest k with inner.peek_sum(k) + k*overhead <= budget: binary
        # search on the monotone total (peek_sum is O(1) once buffered).
        lo, hi = 0, max_packets
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.peek_sum(mid) <= budget_cycles:
                lo = mid
            else:
                hi = mid - 1
        if lo == 0:
            return 0, 0.0
        used = self.inner.consume(lo) + lo * self.overhead
        return lo, used

    def consume(self, n: int) -> float:
        if n <= 0:
            return 0.0
        return self.inner.consume(n) + n * self.overhead

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WithOverhead({self.inner!r}, +{self.overhead:g})"
