"""Command-line interface: run any paper-artifact experiment.

Usage::

    python -m repro list
    python -m repro run fig07 --duration 2.0
    python -m repro run tab05
    python -m repro topology my_topology.json --duration 1.0

``run`` prints the same rows the paper's table/figure reports (each
experiment module's ``main``); ``topology`` builds a declarative JSON
topology (see :mod:`repro.platform.orchestrator`) and reports per-chain
throughput.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.metrics.report import render_table

#: experiment id -> (module path, description).  The id space mirrors
#: DESIGN.md's experiment index.
EXPERIMENTS: Dict[str, tuple] = {
    "fig01": ("repro.experiments.fig01_motivation",
              "Fig 1 + Tables 1-2: scheduler motivation study"),
    "fig07": ("repro.experiments.fig07_single_core_chain",
              "Fig 7 + Tables 3-4: 3-NF chain on one shared core"),
    "tab05": ("repro.experiments.tab05_multicore_chain",
              "Table 5: chain with one core per NF"),
    "fig09": ("repro.experiments.fig09_shared_chains",
              "Fig 9 + Table 6: two chains sharing NF instances"),
    "fig10": ("repro.experiments.fig10_variable_cost",
              "Fig 10: variable per-packet cost"),
    "fig11": ("repro.experiments.fig11_chain_permutations",
              "Fig 11: all orderings of the Low/Med/High chain"),
    "fig12": ("repro.experiments.fig12_workload_mix",
              "Fig 12: random per-flow NF orders"),
    "fig13": ("repro.experiments.fig13_isolation",
              "Fig 13: TCP vs UDP performance isolation"),
    "fig14": ("repro.experiments.fig14_io",
              "Fig 14: async vs sync NF disk I/O"),
    "fig15": ("repro.experiments.fig15_fairness",
              "Fig 15: dynamic tuning + fairness vs diversity"),
    "fig16": ("repro.experiments.fig16_chain_length",
              "Fig 16: chain lengths 1..10, SC and MC"),
    "tuning": ("repro.experiments.tuning_watermarks",
               "Sec 4.3.8: watermark tuning sweeps"),
    "ablations": ("repro.experiments.ablations",
                  "Ablations: selectivity, hysteresis, estimator, period"),
    "ecn": ("repro.experiments.ecn_extension",
            "ECN congestion-signalling extension"),
    "numa": ("repro.experiments.numa_placement",
             "NUMA-aware vs cross-socket chain placement"),
    "priority": ("repro.experiments.priority_differentiation",
                 "Sec 3.2: priority-weighted differentiated service"),
    "crosshost": ("repro.experiments.cross_host_ecn",
                  "Sec 3.3: cross-host chain with ECN signalling"),
    "coop": ("repro.experiments.cooperative_comparison",
             "Sec 5: cooperative (L-thread) scheduling comparison"),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [[name, desc] for name, (_mod, desc) in sorted(EXPERIMENTS.items())]
    print(render_table(["experiment", "reproduces"], rows,
                       title="available experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: python -m repro list", file=sys.stderr)
        return 2
    import importlib

    module_path, _desc = EXPERIMENTS[args.experiment]
    module = importlib.import_module(module_path)
    kwargs = {}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration

    if args.span_sample_rate < 1:
        print("--span-sample-rate must be a positive integer "
              f"(got {args.span_sample_rate})", file=sys.stderr)
        return 2
    session = None
    if args.trace is not None or args.metrics_out is not None:
        from repro.obs.session import (
            ObsSession, activate_session, deactivate_session,
        )
        session = ObsSession(
            trace_path=args.trace,
            metrics_path=args.metrics_out,
            span_sample_rate=args.span_sample_rate,
        )
        activate_session(session)
    try:
        print(module.main(**kwargs))
    finally:
        if session is not None:
            deactivate_session()
            summary = session.finalize()
            if summary:
                print(summary)
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.platform.orchestrator import load_topology

    topology = load_topology(args.path, seed=args.seed)
    topology.run(args.duration or 1.0)
    duration = args.duration or 1.0
    rows = []
    for chain in topology.manager.chains.values():
        rows.append([
            chain.name,
            round(chain.completed / duration / 1e6, 3),
            round(chain.wasted_drops / duration / 1e6, 3),
            round(chain.entry_discards / duration / 1e6, 3),
        ])
    print(render_table(
        ["chain", "tput Mpps", "wasted Mpps", "entry-drop Mpps"], rows,
        title=f"topology {args.path} ({duration:g}s simulated)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NFVnice (SIGCOMM 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments") \
        .set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment and print its "
                                     "paper-artifact table")
    run.add_argument("experiment", help="experiment id (see 'list')")
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds per case (experiment default "
                          "if omitted)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome/Perfetto trace-event JSON of "
                          "scheduler, ring, backpressure, ECN and wakeup "
                          "activity to PATH")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write Prometheus text-format metrics to PATH")
    run.add_argument("--span-sample-rate", type=int, default=64, metavar="N",
                     help="record one packet-lifecycle span per N packets "
                          "(with --trace/--metrics-out; default 64)")
    run.set_defaults(func=_cmd_run)

    topo = sub.add_parser("topology", help="run a declarative JSON topology")
    topo.add_argument("path", help="path to the topology JSON file")
    topo.add_argument("--duration", type=float, default=1.0)
    topo.add_argument("--seed", type=int, default=0)
    topo.set_defaults(func=_cmd_topology)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
