"""Command-line interface: run any paper-artifact experiment.

Usage::

    python -m repro list
    python -m repro run fig07 --duration 2.0
    python -m repro run tab05
    python -m repro campaign --workers 4 --baseline BENCH_campaign.json
    python -m repro campaign fig07 fig11 --workers 2 --baseline B.json --check
    python -m repro topology my_topology.json --duration 1.0

``run`` prints the same rows the paper's table/figure reports (each
experiment module's ``main``); ``campaign`` fans many experiments (and
the per-configuration cases inside their sweeps) across worker processes
and maintains a digest/wall-clock regression baseline (see
``docs/campaigns.md``); ``topology`` builds a declarative JSON topology
(see :mod:`repro.platform.orchestrator`) and reports per-chain
throughput.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro.metrics.report import render_table

#: experiment id -> (module path, description).  The id space mirrors
#: DESIGN.md's experiment index.
EXPERIMENTS: Dict[str, tuple] = {
    "fig01": ("repro.experiments.fig01_motivation",
              "Fig 1 + Tables 1-2: scheduler motivation study"),
    "fig07": ("repro.experiments.fig07_single_core_chain",
              "Fig 7 + Tables 3-4: 3-NF chain on one shared core"),
    "tab05": ("repro.experiments.tab05_multicore_chain",
              "Table 5: chain with one core per NF"),
    "fig09": ("repro.experiments.fig09_shared_chains",
              "Fig 9 + Table 6: two chains sharing NF instances"),
    "fig10": ("repro.experiments.fig10_variable_cost",
              "Fig 10: variable per-packet cost"),
    "fig11": ("repro.experiments.fig11_chain_permutations",
              "Fig 11: all orderings of the Low/Med/High chain"),
    "fig12": ("repro.experiments.fig12_workload_mix",
              "Fig 12: random per-flow NF orders"),
    "fig13": ("repro.experiments.fig13_isolation",
              "Fig 13: TCP vs UDP performance isolation"),
    "fig14": ("repro.experiments.fig14_io",
              "Fig 14: async vs sync NF disk I/O"),
    "fig15": ("repro.experiments.fig15_fairness",
              "Fig 15: dynamic tuning + fairness vs diversity"),
    "fig16": ("repro.experiments.fig16_chain_length",
              "Fig 16: chain lengths 1..10, SC and MC"),
    "tuning": ("repro.experiments.tuning_watermarks",
               "Sec 4.3.8: watermark tuning sweeps"),
    "ablations": ("repro.experiments.ablations",
                  "Ablations: selectivity, hysteresis, estimator, period"),
    "ecn": ("repro.experiments.ecn_extension",
            "ECN congestion-signalling extension"),
    "numa": ("repro.experiments.numa_placement",
             "NUMA-aware vs cross-socket chain placement"),
    "priority": ("repro.experiments.priority_differentiation",
                 "Sec 3.2: priority-weighted differentiated service"),
    "crosshost": ("repro.experiments.cross_host_ecn",
                  "Sec 3.3: cross-host chain with ECN signalling"),
    "coop": ("repro.experiments.cooperative_comparison",
             "Sec 5: cooperative (L-thread) scheduling comparison"),
    "chaos_recovery": ("repro.experiments.chaos_recovery",
                       "Chaos: fault kind x detection x recovery policy"),
    "slo_battery": ("repro.experiments.slo_battery",
                    "SLO battery: bursty/flash/mixed x NORMAL/EDF/DEADLINE"),
    "cluster_scaling": ("repro.experiments.cluster_scaling",
                        "Cluster: flash/mmpp x 2/4/8 hosts x auto/static "
                        "VNF scaling"),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [[name, desc] for name, (_mod, desc) in sorted(EXPERIMENTS.items())]
    print(render_table(["experiment", "reproduces"], rows,
                       title="available experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: python -m repro list", file=sys.stderr)
        return 2
    import importlib

    module_path, _desc = EXPERIMENTS[args.experiment]
    module = importlib.import_module(module_path)
    kwargs = {}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    if args.engine is not None:
        import os as _os

        from repro.sim.engine import ENGINE_ENV

        _os.environ[ENGINE_ENV] = args.engine

    if args.span_sample_rate < 1:
        print("--span-sample-rate must be a positive integer "
              f"(got {args.span_sample_rate})", file=sys.stderr)
        return 2
    if args.stream_interval_ms <= 0:
        print("--stream-interval-ms must be a positive number of "
              f"milliseconds (got {args.stream_interval_ms})",
              file=sys.stderr)
        return 2
    if args.stream_out is not None and not str(args.stream_out).strip():
        print("--stream-out needs a non-empty path", file=sys.stderr)
        return 2
    session = None
    if (args.trace is not None or args.metrics_out is not None
            or args.stream_out is not None):
        from repro.obs.session import (
            ObsSession, activate_session, deactivate_session,
        )
        from repro.sim.clock import MSEC

        session = ObsSession(
            trace_path=args.trace,
            metrics_path=args.metrics_out,
            span_sample_rate=args.span_sample_rate,
            stream_path=args.stream_out,
            stream_interval_ns=int(args.stream_interval_ms * MSEC),
        )
        activate_session(session)
    sanitizer = None
    if args.sanitize:
        from repro.check.sanitizer import Sanitizer, activate_sanitizer

        sanitizer = Sanitizer(per_tick=args.sanitize_tick)
        activate_sanitizer(sanitizer)
    plan_active = False
    if args.fault_plan is not None:
        from repro.faults.plan import FaultPlan, activate_plan

        try:
            plan = FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError, RuntimeError) as exc:
            print(f"cannot load fault plan: {exc}", file=sys.stderr)
            return 2
        activate_plan(plan)
        plan_active = True
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    try:
        if profiler is not None:
            profiler.enable()
            try:
                out = module.main(**kwargs)
            finally:
                profiler.disable()
            print(out)
        else:
            print(module.main(**kwargs))
    finally:
        if sanitizer is not None:
            from repro.check.sanitizer import deactivate_sanitizer

            deactivate_sanitizer()
        if plan_active:
            from repro.faults.plan import deactivate_plan

            deactivate_plan()
        if session is not None:
            deactivate_session()
            summary = session.finalize()
            if summary:
                print(summary)
    if sanitizer is not None:
        for violation in sanitizer.violations:
            print(violation.render(), file=sys.stderr)
        print(f"[sanitize] {sanitizer.runs} run(s), "
              f"{len(sanitizer.violations)} violation(s)")
        if sanitizer.violations:
            return 1
    if profiler is not None:
        import io as _io
        import os
        import pstats

        # Drop the profile next to whatever artifact the run produced
        # (metrics or trace output), falling back to the experiment id.
        base = args.metrics_out or args.trace
        if base:
            prof_path = os.path.splitext(base)[0] + ".pstats"
        else:
            prof_path = f"{args.experiment}.pstats"
        profiler.dump_stats(prof_path)
        buf = _io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats(args.profile_sort).print_stats(15)
        print(f"[profile] wrote {prof_path} "
              f"(load with pstats or snakeviz); hottest functions:")
        # Skip the pstats header lines; show just the table.
        lines = buf.getvalue().splitlines()
        try:
            start = next(i for i, ln in enumerate(lines)
                         if ln.lstrip().startswith("ncalls"))
            print("\n".join(lines[start:start + 16]))
        except StopIteration:  # pragma: no cover - pstats format change
            print(buf.getvalue())
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import os

    from repro.runner.baseline import (
        check_campaign, load_baseline, write_baseline,
    )
    from repro.runner.campaign import run_campaign

    ids = args.experiments or sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}; "
              f"try: python -m repro list", file=sys.stderr)
        return 2
    duplicates = sorted({i for i in ids if ids.count(i) > 1})
    if duplicates:
        print(f"duplicate experiment id(s): {', '.join(duplicates)}",
              file=sys.stderr)
        return 2
    if args.check and args.baseline is None:
        print("--check requires --baseline", file=sys.stderr)
        return 2
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    if workers < 1:
        print(f"--workers must be >= 1 (got {workers})", file=sys.stderr)
        return 2
    if args.engine is not None:
        from repro.sim.engine import ENGINE_ENV

        # Worker processes inherit the environment, so this one set()
        # covers serial and parallel execution alike.
        os.environ[ENGINE_ENV] = args.engine

    on_done = None
    if not args.quiet:
        def on_done(outcome):
            print(f"[campaign] {outcome.spec.task_id}: {outcome.status} "
                  f"({outcome.wall_s:.2f}s, attempt {outcome.attempts})",
                  file=sys.stderr)

    campaign = run_campaign(
        ids,
        workers=workers,
        duration_s=args.duration,
        seed=args.seed,
        task_timeout_s=args.task_timeout,
        on_task_done=on_done,
    )

    rows = []
    for exp_id, report in campaign.experiments.items():
        tput = report.sim_time_throughput
        rows.append([
            exp_id,
            len(report.tasks),
            round(report.task_wall_s, 2),
            round(tput, 2) if tput is not None else "-",
            report.digest[:12] if report.digest else "-",
            report.status,
        ])
    print(render_table(
        ["experiment", "tasks", "wall s", "sim s/s", "digest", "status"],
        rows,
        title=f"campaign: {len(ids)} experiments, "
              f"{workers} worker(s), {campaign.elapsed_s:.1f}s elapsed",
    ))
    for report in campaign.experiments.values():
        for failure in report.failures:
            print(f"[campaign] FAILED {failure}", file=sys.stderr)

    if args.artifacts is not None:
        os.makedirs(args.artifacts, exist_ok=True)
        for exp_id, report in campaign.experiments.items():
            if report.artifact is not None:
                path = os.path.join(args.artifacts, f"{exp_id}.txt")
                with open(path, "w") as fh:
                    fh.write(report.artifact + "\n")
        print(f"[campaign] artifacts written to {args.artifacts}",
              file=sys.stderr)

    rc = 0 if campaign.ok else 1
    if args.baseline is not None:
        if args.check:
            try:
                baseline = load_baseline(args.baseline)
            except (OSError, ValueError) as exc:
                print(f"[campaign] cannot load baseline: {exc}",
                      file=sys.stderr)
                return 1
            problems = check_campaign(baseline, campaign,
                                      max_regression=args.max_regression)
            for problem in problems:
                print(f"[campaign] CHECK FAILED {problem}", file=sys.stderr)
            if problems:
                rc = 1
            else:
                print(f"[campaign] check passed against {args.baseline}")
        else:
            write_baseline(args.baseline, campaign)
            print(f"[campaign] baseline written to {args.baseline}")
    return rc


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.stream import diff_telemetry, load_telemetry

    try:
        baseline = load_telemetry(args.baseline)
        candidate = load_telemetry(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot load telemetry: {exc}", file=sys.stderr)
        return 2
    if args.max_regression < 0:
        print(f"--max-regression must be >= 0 (got {args.max_regression})",
              file=sys.stderr)
        return 2
    report, regressions = diff_telemetry(
        baseline, candidate, max_regression=args.max_regression)
    print(report)
    return 1 if regressions else 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.simcheck import main as simcheck_main

    out = None
    if args.output is not None:
        out = open(args.output, "w", encoding="utf-8")
    try:
        return simcheck_main(
            args.paths or ["src"],
            as_json=args.json,
            out=out,
            deep=args.deep,
            fmt=args.format,
            baseline=args.check_baseline,
            update_baseline=args.update_baseline,
            explain_code=args.explain,
            jobs=args.jobs,
            cache=args.cache,
            no_cache=args.no_cache,
        )
    finally:
        if out is not None:
            out.close()


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.platform.orchestrator import load_topology

    topology = load_topology(args.path, seed=args.seed)
    if args.fault_plan is not None and topology.manager.faults is None:
        from repro.faults.plan import FaultPlan
        from repro.sim.rng import RngFactory

        try:
            plan = FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError, RuntimeError) as exc:
            print(f"cannot load fault plan: {exc}", file=sys.stderr)
            return 2
        topology.manager.attach_faults(
            plan, rng=RngFactory(args.seed).stream("faults"))
    topology.run(args.duration or 1.0)
    duration = args.duration or 1.0
    rows = []
    for chain in topology.manager.chains.values():
        rows.append([
            chain.name,
            round(chain.completed / duration / 1e6, 3),
            round(chain.wasted_drops / duration / 1e6, 3),
            round(chain.entry_discards / duration / 1e6, 3),
        ])
    print(render_table(
        ["chain", "tput Mpps", "wasted Mpps", "entry-drop Mpps"], rows,
        title=f"topology {args.path} ({duration:g}s simulated)",
    ))
    faults = topology.manager.faults
    if faults is not None:
        s = faults.summary(horizon_ns=int(duration * 1e9))
        print(f"[faults] injected={s['injected']} detected={s['detected']} "
              f"recovered={s['recovered']} gave_up={s['gave_up']} "
              f"lost={s['packets_lost']} requeued={s['packets_requeued']} "
              f"availability={s['availability']:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NFVnice (SIGCOMM 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments") \
        .set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one experiment and print its "
                                     "paper-artifact table")
    run.add_argument("experiment", help="experiment id (see 'list')")
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds per case (experiment default "
                          "if omitted)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome/Perfetto trace-event JSON of "
                          "scheduler, ring, backpressure, ECN and wakeup "
                          "activity to PATH")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write Prometheus text-format metrics to PATH")
    run.add_argument("--span-sample-rate", type=int, default=64, metavar="N",
                     help="record one packet-lifecycle span per N packets "
                          "(with --trace/--metrics-out; default 64)")
    run.add_argument("--stream-out", default=None, metavar="PATH",
                     help="stream periodic telemetry snapshots (gauges, "
                          "latency percentiles, backpressure attribution) "
                          "as JSONL to PATH while the run executes")
    run.add_argument("--stream-interval-ms", type=float, default=100.0,
                     metavar="N",
                     help="simulated milliseconds between streamed "
                          "snapshots (with --stream-out; default 100)")
    run.add_argument("--fault-plan", default=None, metavar="PATH",
                     help="inject faults from a JSON/YAML FaultPlan into "
                          "every scenario the experiment builds (see "
                          "docs/faults.md)")
    run.add_argument("--sanitize", action="store_true",
                     help="check runtime invariants (packet conservation, "
                          "exact core time accounting, vruntime "
                          "monotonicity, ring bounds); exit 1 on any "
                          "violation (see docs/static-analysis.md)")
    run.add_argument("--sanitize-tick", action="store_true",
                     help="with --sanitize: also sample the monotonicity/"
                          "occupancy checks every 1 ms of simulated time")
    run.add_argument("--profile", action="store_true",
                     help="run under cProfile; writes a .pstats dump next "
                          "to the --metrics-out/--trace file (or "
                          "<experiment>.pstats) and prints the hottest "
                          "functions")
    run.add_argument("--profile-sort", default="tottime",
                     choices=["tottime", "cumtime", "ncalls", "pcalls",
                              "filename", "name"],
                     metavar="KEY",
                     help="sort key for the --profile hot-function table "
                          "(tottime, cumtime, ncalls, pcalls, filename, "
                          "name; default tottime — use cumtime to see "
                          "wheel cascade cost inside run_until, see "
                          "docs/performance.md)")
    run.add_argument("--engine", default=None, choices=["heap", "wheel"],
                     help="event-loop engine for this run (sets "
                          "REPRO_ENGINE; default: REPRO_ENGINE or wheel)")
    run.set_defaults(func=_cmd_run)

    campaign = sub.add_parser(
        "campaign",
        help="run many experiments in parallel worker processes with a "
             "digest/wall-clock regression baseline")
    campaign.add_argument("experiments", nargs="*", metavar="experiment",
                          help="experiment ids (default: all)")
    campaign.add_argument("--workers", type=int, default=None,
                          help="worker processes (default: CPU count)")
    campaign.add_argument("--duration", type=float, default=None,
                          help="simulated seconds per case (experiment "
                               "defaults if omitted)")
    campaign.add_argument("--seed", type=int, default=0,
                          help="campaign seed; 0 (default) keeps each "
                               "case's own seed so results match the "
                               "serial experiments bit-for-bit")
    campaign.add_argument("--baseline", default=None, metavar="PATH",
                          help="baseline JSON (e.g. BENCH_campaign.json): "
                               "written/merged by default, compared with "
                               "--check")
    campaign.add_argument("--check", action="store_true",
                          help="fail on result-digest drift or wall-clock "
                               "regression against --baseline instead of "
                               "rewriting it")
    campaign.add_argument("--max-regression", type=float, default=0.15,
                          metavar="FRAC",
                          help="allowed fractional wall-clock growth per "
                               "experiment in --check mode (default 0.15)")
    campaign.add_argument("--task-timeout", type=float, default=600.0,
                          metavar="SEC",
                          help="per-task timeout; a timed-out task is "
                               "retried once (default 600)")
    campaign.add_argument("--artifacts", default=None, metavar="DIR",
                          help="also write each experiment's rendered "
                               "artifact to DIR/<id>.txt")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress per-task progress on stderr")
    campaign.add_argument("--engine", default=None,
                          choices=["heap", "wheel"],
                          help="event-loop engine for every worker (sets "
                               "REPRO_ENGINE; default: REPRO_ENGINE or "
                               "wheel). Digests are engine-independent "
                               "by contract, so a baseline recorded "
                               "under one engine checks under the other")
    campaign.set_defaults(func=_cmd_campaign)

    obs = sub.add_parser(
        "obs",
        help="telemetry utilities (compare two runs' streamed snapshots)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    diff = obs_sub.add_parser(
        "diff",
        help="compare two telemetry files (--stream-out JSONL or JSON "
             "reports) and flag percentile regressions")
    diff.add_argument("baseline", help="baseline telemetry file (run A)")
    diff.add_argument("candidate", help="candidate telemetry file (run B)")
    diff.add_argument("--max-regression", type=float, default=0.10,
                      metavar="FRAC",
                      help="allowed fractional percentile growth before a "
                           "row is flagged (default 0.10)")
    diff.set_defaults(func=_cmd_obs_diff)

    check = sub.add_parser(
        "check",
        help="lint for determinism/precision hazards (simcheck; see "
             "docs/static-analysis.md)")
    check.add_argument("paths", nargs="*", metavar="PATH",
                       help="files or directories to lint (default: src)")
    check.add_argument("--json", action="store_true",
                       help="machine-readable JSON report (same as "
                            "--format json)")
    check.add_argument("--deep", action="store_true",
                       help="also run the whole-program flow passes "
                            "(digest taint SIM6xx, lifted SIM101/SIM401 "
                            "as SIM611/SIM612, pool safety SIM7xx) over "
                            "the project call graph")
    check.add_argument("--format", default=None,
                       choices=["text", "json", "sarif"],
                       help="output format (sarif targets GitHub code "
                            "scanning)")
    check.add_argument("-o", "--output", default=None, metavar="PATH",
                       help="write the report to PATH instead of stdout")
    check.add_argument("--baseline", dest="check_baseline", default=None,
                       metavar="PATH",
                       help="suppress findings matching the committed "
                            "baseline (staged adoption); new findings "
                            "still fail")
    check.add_argument("--update-baseline", action="store_true",
                       help="rewrite --baseline from the current "
                            "findings and exit 0")
    check.add_argument("--explain", default=None, metavar="CODE",
                       help="print the documentation for one rule code "
                            "(e.g. SIM601) and exit")
    check.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for --deep per-file "
                            "parsing (default: min(cpus, 8))")
    check.add_argument("--cache", default=None, metavar="PATH",
                       help="incremental cache path for --deep "
                            "(default: .cache/simcheck.json)")
    check.add_argument("--no-cache", action="store_true",
                       help="disable the --deep incremental cache")
    check.set_defaults(func=_cmd_check)

    topo = sub.add_parser("topology", help="run a declarative JSON topology")
    topo.add_argument("path", help="path to the topology JSON file")
    topo.add_argument("--duration", type=float, default=1.0)
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--fault-plan", default=None, metavar="PATH",
                      help="inject faults from a JSON/YAML FaultPlan "
                           "(ignored if the topology has its own "
                           "'faults' section)")
    topo.set_defaults(func=_cmd_topology)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
