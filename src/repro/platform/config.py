"""Platform-wide configuration.

One dataclass gathers every tunable the paper mentions, with defaults set
to the paper's operating points: 4096-descriptor rings, 80 %/60 % water-
marks (§4.3.8 found HIGH=80 % and a margin of 20 to work best), 1000 Hz
monitoring, 10 ms cgroup weight updates, batches of 32 packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import CPU_FREQ_HZ, MSEC, USEC


@dataclass
class PlatformConfig:
    """Knobs for the NF Manager, rings, scheduling and NFVnice policies."""

    # --- rings (per NF) -------------------------------------------------
    ring_capacity: int = 4096
    high_watermark: float = 0.80   # §4.3.8: 80% worked "well"
    low_watermark: float = 0.60    # margin of 20 performed best

    # --- manager threads (dedicated cores, §3.1) -------------------------
    rx_poll_ns: int = 50 * USEC    # Rx thread poll period
    #: Per-Rx-thread delivery capacity: flow-table lookup plus descriptor
    #: copy bounds a single manager Rx thread to a few Mpps on real
    #: hardware.  ``num_rx_threads`` scales the budget ("the number of Rx,
    #: Tx and monitor threads are configurable", §3.1); None = unbounded.
    rx_thread_max_pps: float = 6_800_000.0
    num_rx_threads: int = 1
    #: Tx threads; NFs are partitioned round-robin across them, each thread
    #: ferrying its subset's output every ``tx_poll_ns`` with a phase offset.
    num_tx_threads: int = 1
    tx_poll_ns: int = 50 * USEC    # Tx thread poll period
    wakeup_scan_ns: int = 100 * USEC  # Wakeup thread scan period
    monitor_period_ns: int = 1 * MSEC  # load estimation, 1000 Hz (§1, §3.5)
    weight_update_ns: int = 10 * MSEC  # cgroup weight writes (§3.5)

    # --- NF execution -----------------------------------------------------
    nf_batch_size: int = 32        # libnf processes at most 32 pkts/batch (§3.2)
    #: Framework cost per packet (ring ops, descriptors, libnf bookkeeping)
    #: added on top of each NF's own packet-handler cost.
    nf_overhead_cycles: float = 100.0
    cpu_freq_hz: float = CPU_FREQ_HZ
    ctx_switch_ns: int = 1_500     # direct + cache cost per task switch

    # --- NUMA (§1: schedulers "have to be cognizant of NUMA concerns") ---
    #: Worker cores per socket; the testbed is a dual-socket 56-core box.
    cores_per_socket: int = 28
    #: Extra per-packet cycles an NF pays when its upstream hop lives on
    #: the other socket (remote-memory descriptor + payload access).
    numa_penalty_cycles: float = 150.0

    # --- backpressure (§3.3) ----------------------------------------------
    enable_backpressure: bool = True
    queuing_time_threshold_ns: int = 100 * USEC  # qtime gate in Fig 4
    #: When True, a throttled chain also evicts upstream NFs that have no
    #: other un-throttled chain to serve (the relinquish flag path).
    enable_relinquish: bool = True

    # --- cgroup weight policy (§3.2) ---------------------------------------
    enable_cgroups: bool = True
    #: EWMA smoothing for the 1 ms arrival-rate estimate.
    arrival_ewma_alpha: float = 0.10
    service_window_ns: int = 100 * MSEC  # median window for service time
    service_sample_period_ns: int = 1 * MSEC  # libnf sampling period
    warmup_discard_samples: int = 10   # §4.3.8: first 10 samples discarded
    #: "median" (the paper's robust choice, §3.5) or "mean" (ablation).
    service_estimator: str = "median"
    #: Selective per-chain throttling (Figure 5).  False = chain-agnostic
    #: ablation: a congested NF throttles every chain through it, including
    #: ones whose bottleneck is elsewhere.
    selective_chain_throttle: bool = True

    # --- ECN (§3.3) ---------------------------------------------------------
    enable_ecn: bool = False
    ecn_ewma_alpha: float = 0.02
    #: RED-style marking ramp on the EWMA queue length: no marks below
    #: ``ecn_min_fraction`` of capacity, all packets marked above
    #: ``ecn_max_fraction`` (RFC 3168 via [42]'s recommendation).
    ecn_min_fraction: float = 0.15
    ecn_max_fraction: float = 0.50

    # --- misc ---------------------------------------------------------------
    seed: int = 0

    def with_features(self, cgroups: bool, backpressure: bool,
                      ecn: bool = False) -> "PlatformConfig":
        """Copy of this config with the NFVnice feature toggles replaced.

        The evaluation compares Default / "Only cgroups" / "Only BKPR" /
        full NFVnice (§4.2); this is the switchboard for those variants.
        """
        import dataclasses

        return dataclasses.replace(
            self,
            enable_cgroups=cgroups,
            enable_backpressure=backpressure,
            enable_relinquish=backpressure and self.enable_relinquish,
            enable_ecn=ecn,
        )


#: The Default platform: stock OpenNetVM behaviour with no NFVnice policy.
def default_platform_config(**overrides) -> PlatformConfig:
    """A config with every NFVnice feature off (the paper's "Default")."""
    cfg = PlatformConfig(
        enable_backpressure=False,
        enable_cgroups=False,
        enable_ecn=False,
        enable_relinquish=False,
    )
    import dataclasses

    return dataclasses.replace(cfg, **overrides) if overrides else cfg
