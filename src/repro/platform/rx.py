"""The NF Manager's Rx thread (paper §3.1).

"When packets arrive to the NIC, Rx threads in the NF Manager take
advantage of DPDK's poll mode driver to deliver the packets into a shared
memory region ... The Rx thread does a lookup in the Flow Table to direct
the packet to the appropriate NF."

This is also where backpressure bites: arrivals for a throttled service
chain are discarded *before* the first NF spends any cycles on them —
the selective early discard that saves the wasted work (§3.3, Figure 5).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.platform.config import PlatformConfig
from repro.platform.flow_table import FlowTable
from repro.platform.nic import NIC
from repro.platform.wakeup import WakeupSubsystem
from repro.sched.base import TaskState
from repro.sim.engine import EventHandle, EventLoop

_BLOCKED = TaskState.BLOCKED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backpressure import BackpressureController
    from repro.core.ecn import ECNMarker


class RxThread:
    """Polls the NIC Rx ring and feeds first-hop NF rings."""

    def __init__(
        self,
        loop: EventLoop,
        nic: NIC,
        flow_table: FlowTable,
        wakeup: WakeupSubsystem,
        backpressure: Optional["BackpressureController"],
        config: Optional[PlatformConfig] = None,
        ecn: Optional["ECNMarker"] = None,
    ):
        self.loop = loop
        self.nic = nic
        self.flow_table = flow_table
        self.wakeup = wakeup
        self.backpressure = backpressure
        self.ecn = ecn
        self.config = config if config is not None else PlatformConfig()
        self.delivered = 0
        self.early_discards = 0
        self.unroutable = 0
        #: Optional observability hooks (wired by NFManager.start()).
        self.bus = None
        self.spans = None
        #: Optional :class:`repro.obs.causality.CausalityTracer` charged
        #: with every early discard's culprit attribution.
        self.causality = None
        cap = self.config.rx_thread_max_pps
        if cap is None:
            self._budget_per_poll = None
        else:
            self._budget_per_poll = (
                cap * self.config.num_rx_threads * self.config.rx_poll_ns / 1e9
            )
        self._budget_carry = 0.0
        self._poll_ns = int(self.config.rx_poll_ns)
        self._tick: Optional[EventHandle] = None

    def start(self) -> None:
        if self._tick is None:
            # Recurring handle re-armed in place by the loop — no per-poll
            # event allocation (EventLoop.call_every).
            self._tick = self.loop.call_every(self._poll_ns, self.poll)

    def stop(self) -> None:
        if self._tick is not None:
            self._tick.cancel()
            self._tick = None

    # ------------------------------------------------------------------
    def poll(self) -> None:
        """Drain the NIC ring, classify, early-discard or deliver."""
        now = self.loop.now
        shed = self.backpressure is not None
        ring = self.nic.rx_ring
        if self._budget_per_poll is None:
            budget = ring.capacity
        else:
            # The carry accrues every poll, packets or not, so a capped
            # thread's budget sequence is independent of arrival timing.
            self._budget_carry += self._budget_per_poll
            budget = int(self._budget_carry)
            self._budget_carry -= budget
        if not ring._count:
            return
        for seg in ring.dequeue(budget):
            flow = seg.flow
            chain = self.flow_table.lookup(flow)
            if chain is None:
                self.unroutable += seg.count
                continue
            if shed and chain.throttled:
                chain.entry_discards += seg.count
                flow.stats.entry_discards += seg.count
                self.early_discards += seg.count
                if self.causality is not None:
                    self.causality.on_entry_discard(
                        chain.name, flow.flow_id, seg.count)
                if self.bus is not None and self.bus.active:
                    self.bus.publish("rx.discard", chain.name,
                                     count=seg.count, flow=flow.flow_id)
                continue
            first = chain.nfs[0]
            span = None
            if self.spans is not None:
                span = self.spans.maybe_start(flow.flow_id, seg.count,
                                              seg.origin_ns)
                if span is not None:
                    # Hop 0: time spent waiting in the NIC Rx ring.
                    span.record_hop("rx", max(0, now - seg.enqueue_ns))
            accepted, _dropped, above_high = first.rx_ring.enqueue(
                flow, seg.count, now, origin_ns=seg.origin_ns, span=span
            )
            # Drops here waste nothing: no NF has touched these packets yet.
            if above_high and self.backpressure is not None:
                self.backpressure.mark_overloaded(first)
            if accepted:
                if self.ecn is not None and flow.responsive:
                    fraction = self.ecn.mark_fraction(first.rx_ring)
                    to_mark = int(round(accepted * fraction))
                    if to_mark:
                        self.ecn.mark(flow, to_mark, now)
                self.delivered += accepted
                if first.state is _BLOCKED:
                    self.wakeup.notify(first)
