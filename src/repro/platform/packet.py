"""Flows and packet segments.

Simulating multi-Mpps workloads packet-object-by-packet-object is not
feasible in Python, and not necessary: every mechanism in the paper —
queue lengths, watermarks, per-chain throttling, ECN marking, drops,
latency — operates on *runs of packets belonging to the same flow*.  Queues
therefore carry :class:`PacketSegment` records ``(flow, count,
enqueue_ns)``: FIFO order, exact counts and timestamps are preserved while
the cost per queue operation is amortised over the whole run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.chain import ServiceChain


class Flow:
    """A packet flow: five-tuple stand-in plus the chain it is steered to.

    ``responsive`` marks flows that react to congestion feedback (TCP);
    the ECN subsystem only marks, and the backpressure evaluation only
    credits rate adaptation to, responsive flows.
    """

    __slots__ = (
        "flow_id",
        "chain",
        "pkt_size",
        "protocol",
        "responsive",
        "tcp",
        "stats",
        "slo_ns",
    )

    def __init__(
        self,
        flow_id: str,
        pkt_size: int = 64,
        protocol: str = "udp",
        chain: Optional["ServiceChain"] = None,
        slo_ns: Optional[int] = None,
    ):
        if pkt_size <= 0:
            raise ValueError(f"pkt_size must be positive, got {pkt_size!r}")
        if slo_ns is not None and slo_ns <= 0:
            raise ValueError(f"slo_ns must be positive, got {slo_ns!r}")
        self.flow_id = flow_id
        self.chain = chain
        self.pkt_size = int(pkt_size)
        self.protocol = protocol
        self.responsive = protocol == "tcp"
        #: End-to-end sojourn budget (ns) from the flow's SLO class, or
        #: None when no class was declared.  Deadline-aware schedulers
        #: read it as ``origin_ns + slo_ns`` for the head-of-ring packet.
        self.slo_ns = slo_ns
        #: Set by :class:`repro.traffic.tcp.TCPFlow` when this flow is
        #: congestion controlled; receives loss/ECN feedback.
        self.tcp = None
        self.stats = FlowStats()

    def clone_shared(self) -> "Flow":
        """A per-host twin of this flow for multi-host chains (§3.3).

        ``chain`` is host-local (each host steers the flow into its own
        chain segment), but ``stats`` and the TCP model are shared so
        losses and ECN marks from *any* host feed the same sender.
        """
        twin = Flow(self.flow_id, pkt_size=self.pkt_size,
                    protocol=self.protocol, slo_ns=self.slo_ns)
        twin.stats = self.stats
        twin.tcp = self.tcp
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = self.chain.name if self.chain else None
        return f"Flow({self.flow_id!r}, {self.protocol}, chain={chain})"


class FlowStats:
    """Per-flow counters the isolation experiments report."""

    __slots__ = (
        "offered",
        "delivered",
        "entry_discards",
        "queue_drops",
        "ecn_marks",
    )

    def __init__(self) -> None:
        self.offered = 0         # packets the generator produced
        self.delivered = 0       # packets that completed their chain
        self.entry_discards = 0  # dropped at system entry by backpressure
        self.queue_drops = 0     # dropped at a full NF ring
        self.ecn_marks = 0       # packets CE-marked by the Tx threads

    @property
    def lost(self) -> int:
        return self.entry_discards + self.queue_drops


class PacketSegment:
    """A run of ``count`` back-to-back packets of one flow.

    ``enqueue_ns`` is stamped when the segment enters a queue and is used
    for queuing-time thresholds (backpressure) and latency accounting.
    ``origin_ns`` is stamped once, when the packets first arrive at the
    NIC, and is carried through every hop so chain completion can account
    true end-to-end latency.

    ``span`` carries an optional sampled :class:`repro.obs.spans.PacketSpan`
    tracking the segment's head packet; it rides along as rings move the
    segment through the chain.
    """

    __slots__ = ("flow", "count", "enqueue_ns", "origin_ns", "span")

    def __init__(self, flow: Flow, count: int, enqueue_ns: int = 0,
                 origin_ns: Optional[int] = None):
        if count <= 0:
            raise ValueError(f"segment count must be positive, got {count!r}")
        self.flow = flow
        self.count = int(count)
        self.enqueue_ns = int(enqueue_ns)
        self.origin_ns = int(enqueue_ns) if origin_ns is None else int(origin_ns)
        self.span = None

    def split(self, n: int) -> "PacketSegment":
        """Remove and return the first ``n`` packets as a new segment.

        The head packet — and therefore any attached span — moves with
        the returned segment.
        """
        if not 0 < n < self.count:
            raise ValueError(f"cannot split {n} of {self.count}")
        head = PacketSegment(self.flow, n, self.enqueue_ns, self.origin_ns)
        head.span = self.span
        self.span = None
        self.count -= n
        return head

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketSegment({self.flow.flow_id!r} x{self.count} "
            f"@{self.enqueue_ns})"
        )
