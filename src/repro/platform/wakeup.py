"""The Wakeup subsystem (paper §3.2 "Activating NFs", §3.5).

NFs sleep blocked on a semaphore shared with the manager; the Wakeup
subsystem decides which NFs to make runnable.  Its policy "considers the
number of packets pending in its queue, its priority relative to other
NFs, and knowledge of the queue lengths of downstream NFs in the same
chain" — concretely: an NF is woken only when it has packets, its output
ring has room, its I/O buffers are not exhausted, and backpressure has not
flagged it to stay off the CPU.

The control decision to apply backpressure is delegated here too (§3.5):
each scan first advances the backpressure state machine, then wakes every
eligible NF.  Data-path components additionally call :meth:`notify`
immediately after enqueueing so wake latency is not bounded by the scan
period.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.platform.config import PlatformConfig
from repro.sched.base import TaskState
from repro.sim.engine import EventHandle, EventLoop

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backpressure import BackpressureController
    from repro.core.nf import NFProcess


class WakeupSubsystem:
    """Semaphore posting with eligibility gating."""

    def __init__(
        self,
        loop: EventLoop,
        nfs: List["NFProcess"],
        backpressure: Optional["BackpressureController"],
        config: Optional[PlatformConfig] = None,
    ):
        self.loop = loop
        self.nfs = list(nfs)
        self.backpressure = backpressure
        self.config = config if config is not None else PlatformConfig()
        self.wakeups_posted = 0
        #: Optional :class:`repro.obs.bus.EventBus` (wired by the manager).
        self.bus = None
        self._scan_ns = int(self.config.wakeup_scan_ns)
        self._tick: Optional[EventHandle] = None

    def start(self) -> None:
        if self._tick is None:
            self._tick = self.loop.call_every(self._scan_ns, self.scan)

    def stop(self) -> None:
        if self._tick is not None:
            self._tick.cancel()
            self._tick = None

    # ------------------------------------------------------------------
    # Dynamic membership (NFs may register/retire after construction:
    # a restarted instance, a scaled-out replica).
    # ------------------------------------------------------------------
    def add_nf(self, nf: "NFProcess") -> None:
        """Include a late-registered NF in the periodic scan."""
        if nf not in self.nfs:
            self.nfs.append(nf)

    def remove_nf(self, nf: "NFProcess") -> None:
        """Retire an NF from the scan (no-op if absent)."""
        try:
            self.nfs.remove(nf)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def eligible(self, nf: "NFProcess") -> bool:
        """May this blocked NF usefully run right now?"""
        if nf.state is not TaskState.BLOCKED:
            return False
        if nf.failed or nf.hung or nf.rx_ring.sealed:
            # Crashed / wedged / ring gone: posting the semaphore cannot
            # help; the watchdog-and-recovery path owns this NF now.
            return False
        if nf.core is not None and nf.core.failed:
            return False
        if nf.relinquish:
            return False
        if nf.busy_loop:
            return True
        if nf.io is not None and nf.io.blocked:
            return False
        if nf.rx_ring._count == 0:
            return False
        tx = nf.tx_ring
        if tx._count >= tx.capacity:
            return False
        return True

    def notify(self, nf: "NFProcess") -> bool:
        """Fast-path wake attempt after an enqueue or a resource release."""
        # Cheap reject first: eligibility starts with the same state test,
        # so most data-path notifies (target already READY/RUNNING) return
        # here without the full eligibility walk.
        if nf.core is None or nf.state is not TaskState.BLOCKED:
            return False
        if not self.eligible(nf):
            return False
        if nf.core.wake(nf):
            self.wakeups_posted += 1
            if self.bus is not None and self.bus.active:
                self.bus.publish("wakeup.post", nf.name,
                                 queued=len(nf.rx_ring))
            return True
        return False

    def scan(self) -> None:
        """Periodic pass: advance backpressure, then wake whoever is ready."""
        if self.backpressure is not None:
            self.backpressure.evaluate(self.loop.now)
        notify = self.notify
        for nf in self.nfs:
            if nf.state is TaskState.BLOCKED:
                notify(nf)
