"""The manager's Flow Table.

"The Rx thread does a lookup in the Flow Table to direct the packet to the
appropriate NF" (§3.1).  Flows are installed by the Flow Rule Installer
(configuration files or an SDN controller in the paper; experiment setup
code here) and map to the service chain whose first NF receives the flow's
packets.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.platform.chain import ServiceChain
from repro.platform.packet import Flow


class FlowTable:
    """flow_id → :class:`ServiceChain` mapping."""

    def __init__(self) -> None:
        self._rules: Dict[str, ServiceChain] = {}
        self.lookups = 0
        self.misses = 0

    def install(self, flow: Flow, chain: ServiceChain) -> None:
        """Install (or replace) the rule steering ``flow`` into ``chain``.

        Also back-references the chain on the flow so queue accounting can
        classify segments by chain without a table lookup.
        """
        self._rules[flow.flow_id] = chain
        flow.chain = chain

    def remove(self, flow: Flow) -> None:
        self._rules.pop(flow.flow_id, None)
        flow.chain = None

    def lookup(self, flow: Flow) -> Optional[ServiceChain]:
        """Chain for ``flow``, or None (miss — the packet is dropped)."""
        self.lookups += 1
        chain = self._rules.get(flow.flow_id)
        if chain is None:
            self.misses += 1
        return chain

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[ServiceChain]:
        return iter(self._rules.values())

    def __contains__(self, flow: Flow) -> bool:
        return flow.flow_id in self._rules
