"""Declarative topology construction (the paper's Flow Rule Installer).

"Service chains can be configured during system startup using simple
configuration files or from an external orchestrator such as an SDN
controller" (§3.1).  :func:`build_topology` accepts exactly such a
description — a plain dict (or a JSON file via :func:`load_topology`) —
and assembles the platform: NFs with cost models and core pinning,
service chains, flows, and generator specs.

Example specification::

    {
      "scheduler": "BATCH",
      "nfs": [
        {"name": "fw",  "cycles": 550, "core": 0},
        {"name": "dpi", "cycles": 2200, "core": 0},
        {"name": "nat", "cost": {"kind": "choice",
                                 "values": [120, 270, 550]}, "core": 1}
      ],
      "chains": [
        {"name": "edge", "nfs": ["fw", "dpi", "nat"]}
      ],
      "flows": [
        {"id": "f0", "chain": "edge", "rate_pps": 2e6, "pkt_size": 64},
        {"id": "f1", "chain": "edge", "line_rate_fraction": 0.5,
         "protocol": "tcp", "start_s": 5.0}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.platform.config import PlatformConfig
from repro.platform.manager import NFManager
from repro.platform.nic import line_rate_pps
from repro.platform.packet import Flow
from repro.sim.clock import SEC
from repro.sim.engine import EventLoop
from repro.sim.rng import RngFactory
from repro.traffic.generator import TrafficGenerator


class TopologyError(ValueError):
    """A malformed topology specification."""


@dataclass
class Topology:
    """A fully constructed platform, ready to run."""

    loop: EventLoop
    manager: NFManager
    generator: TrafficGenerator
    flows: Dict[str, Flow] = field(default_factory=dict)

    def run(self, duration_s: float) -> None:
        self.manager.start()
        self.generator.start()
        self.loop.run_until(self.loop.now + int(duration_s * SEC))
        self.manager.finalize()


def _build_cost(spec: Dict[str, Any],
                rng: np.random.Generator):
    # Imported lazily: the nfs package's catalog depends on repro.core.nf,
    # which in turn imports repro.platform.
    from repro.nfs.cost_models import (
        ChoiceCost,
        ExponentialCost,
        FixedCost,
        NormalCost,
        UniformCost,
    )

    kind = spec.get("kind", "fixed")
    if kind == "fixed":
        return FixedCost(_require(spec, "cycles"))
    if kind == "choice":
        return ChoiceCost(_require(spec, "values"),
                          spec.get("probabilities"), rng=rng)
    if kind == "normal":
        return NormalCost(_require(spec, "mean"), _require(spec, "std"),
                          rng=rng)
    if kind == "uniform":
        return UniformCost(_require(spec, "low"), _require(spec, "high"),
                           rng=rng)
    if kind == "exponential":
        return ExponentialCost(_require(spec, "mean"), rng=rng)
    raise TopologyError(f"unknown cost kind {kind!r}")


def _require(spec: Dict[str, Any], key: str):
    if key not in spec:
        raise TopologyError(f"cost spec missing {key!r}: {spec!r}")
    return spec[key]


def build_topology(
    spec: Dict[str, Any],
    config: Optional[PlatformConfig] = None,
    seed: int = 0,
) -> Topology:
    """Assemble a platform from a declarative specification."""
    if not isinstance(spec, dict):
        raise TopologyError("topology spec must be a mapping")
    loop = EventLoop()
    rng_factory = RngFactory(seed)
    cfg = config if config is not None else PlatformConfig()
    manager = NFManager(loop, scheduler=spec.get("scheduler", "BATCH"),
                        config=cfg)
    generator = TrafficGenerator(loop, manager.nic,
                                 rng=rng_factory.stream("traffic"))
    topology = Topology(loop=loop, manager=manager, generator=generator)
    # Imported here: repro.core.nf itself depends on repro.platform.
    from repro.core.nf import NFProcess
    from repro.nfs.cost_models import FixedCost

    nf_specs = spec.get("nfs")
    if not nf_specs:
        raise TopologyError("topology needs at least one NF")
    for nf_spec in nf_specs:
        name = nf_spec.get("name")
        if not name:
            raise TopologyError(f"NF without a name: {nf_spec!r}")
        if "cycles" in nf_spec:
            cost = FixedCost(float(nf_spec["cycles"]))
        elif "cost" in nf_spec:
            cost = _build_cost(nf_spec["cost"],
                               rng_factory.stream(f"cost-{name}"))
        else:
            raise TopologyError(f"NF {name!r} needs 'cycles' or 'cost'")
        nf = NFProcess(
            name, cost, config=cfg,
            priority=float(nf_spec.get("priority", 1.0)),
            busy_loop=bool(nf_spec.get("busy_loop", False)),
        )
        manager.add_nf(nf, core_id=int(nf_spec.get("core", 0)))

    for chain_spec in spec.get("chains", []):
        name = chain_spec.get("name")
        members = chain_spec.get("nfs")
        if not name or not members:
            raise TopologyError(f"bad chain spec: {chain_spec!r}")
        try:
            nfs = [manager.nf_by_name(m) for m in members]
        except KeyError as exc:
            raise TopologyError(f"chain {name!r} references unknown NF "
                                f"{exc.args[0]!r}") from exc
        manager.add_chain(name, nfs)

    for flow_spec in spec.get("flows", []):
        flow_id = flow_spec.get("id")
        chain_name = flow_spec.get("chain")
        if not flow_id or chain_name not in manager.chains:
            raise TopologyError(f"bad flow spec: {flow_spec!r}")
        pkt_size = int(flow_spec.get("pkt_size", 64))
        flow = Flow(flow_id, pkt_size=pkt_size,
                    protocol=flow_spec.get("protocol", "udp"))
        manager.install_flow(flow, manager.chains[chain_name])
        if "rate_pps" in flow_spec:
            rate = float(flow_spec["rate_pps"])
        elif "line_rate_fraction" in flow_spec:
            rate = float(flow_spec["line_rate_fraction"]) * line_rate_pps(
                pkt_size, manager.nic.link_bps)
        else:
            raise TopologyError(
                f"flow {flow_id!r} needs 'rate_pps' or 'line_rate_fraction'")
        generator.add_flow(
            flow, rate,
            start_ns=int(float(flow_spec.get("start_s", 0.0)) * SEC),
            stop_ns=(int(float(flow_spec["stop_s"]) * SEC)
                     if "stop_s" in flow_spec else None),
            pattern=flow_spec.get("pattern", "cbr"),
        )
        topology.flows[flow_id] = flow

    faults_spec = spec.get("faults")
    if faults_spec is not None:
        from repro.faults.plan import FaultPlan

        try:
            plan = FaultPlan.from_dict(faults_spec)
        except (TypeError, ValueError) as exc:
            raise TopologyError(f"bad faults section: {exc}") from exc
        manager.attach_faults(plan, rng=rng_factory.stream("faults"))

    return topology


def load_topology(path: Union[str, Path],
                  config: Optional[PlatformConfig] = None,
                  seed: int = 0) -> Topology:
    """Build a topology from a JSON file."""
    with open(path) as fh:
        spec = json.load(fh)
    return build_topology(spec, config=config, seed=seed)
