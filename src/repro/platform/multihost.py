"""Multi-host service chains (paper §3.3).

"We also consider the fact that an NFVnice middlebox server might only be
one in a chain spread across several hosts.  To facilitate congestion
control across machines, the NF Manager will also mark the ECN bits in
TCP flows" — per-host backpressure cannot reach across the wire, so the
cross-host signal is ECN, which the TCP source reacts to end to end.

:class:`HostLink` wires two :class:`~repro.platform.manager.NFManager`
instances back to back: when a flow finishes its chain segment on the
upstream host, the link carries it (with propagation delay and a link-rate
cap) into the downstream host's NIC, where the flow's *next* chain segment
takes over.  ECN CE marks applied on either host accumulate on the shared
:class:`~repro.platform.packet.Flow`, so the sender sees congestion from
any hop.

The wire itself is a :class:`repro.cluster.fabric.FabricLink` — the same
serialisation/propagation model the N-host cluster topology
(:mod:`repro.cluster`) builds arbitrary link graphs from; ``HostLink``
adds the egress tap and the per-host flow-twin bookkeeping of the
pairwise §3.3 setup on top.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.fabric import FabricLink
from repro.platform.manager import NFManager
from repro.platform.packet import Flow, PacketSegment
from repro.sim.clock import USEC
from repro.sim.engine import EventLoop


class HostLink(FabricLink):
    """A point-to-point wire from one host's egress to another's ingress.

    Only flows explicitly mapped with :meth:`connect_flow` are carried;
    other egress traffic leaves the topology (it reached its destination).
    """

    def __init__(
        self,
        loop: EventLoop,
        upstream: NFManager,
        downstream: NFManager,
        latency_ns: int = 10 * USEC,
        link_bps: float = 10e9,
        queue_cap_pkts: Optional[int] = None,
        ecn_mark_pkts: Optional[int] = None,
    ):
        if upstream is downstream:
            raise ValueError("a host link needs two distinct hosts")
        super().__init__(
            loop,
            name=f"{upstream.nic.name}->{downstream.nic.name}",
            deliver=self._deliver,
            latency_ns=latency_ns,
            link_bps=link_bps,
            queue_cap_pkts=queue_cap_pkts,
            ecn_mark_pkts=ecn_mark_pkts,
        )
        self.upstream = upstream
        self.downstream = downstream
        #: upstream flow_id -> the downstream host's twin Flow object.
        self._carried_flows: Dict[str, Flow] = {}
        if upstream.nic.on_transmit is not None:
            raise ValueError("upstream NIC already has an egress tap")
        upstream.nic.on_transmit = self._on_egress

    # ------------------------------------------------------------------
    def connect_flow(self, upstream_flow: Flow,
                     downstream_flow: Optional[Flow] = None) -> Flow:
        """Carry ``upstream_flow`` across this link.

        Each host steers the flow with its own :class:`Flow` twin (the
        ``chain`` backref is host-local) while stats and the TCP model are
        shared.  Pass an existing twin or let the link clone one; install
        the returned twin into the downstream host's flow table.
        """
        twin = (downstream_flow if downstream_flow is not None
                else upstream_flow.clone_shared())
        self._carried_flows[upstream_flow.flow_id] = twin
        return twin

    # ------------------------------------------------------------------
    def _on_egress(self, segment: PacketSegment) -> None:
        flow = self._carried_flows.get(segment.flow.flow_id)
        if flow is None:
            return
        self.send(flow, segment.count, self.loop.now,
                  origin_ns=segment.origin_ns)

    def _deliver(self, flow: Flow, count: int, origin_ns: int) -> None:
        # Re-originates queueing accounting on the far host but keeps
        # the end-to-end origin stamp for whole-path latency.
        self.downstream.nic.rx_ring.enqueue(
            flow, count, self.loop.now, origin_ns=origin_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HostLink({self.upstream.nic.name} -> "
                f"{self.downstream.nic.name}, {self.latency_ns}ns)")


def connect_hosts(
    loop: EventLoop,
    upstream: NFManager,
    downstream: NFManager,
    latency_ns: int = 10 * USEC,
    link_bps: float = 10e9,
) -> HostLink:
    """Convenience wrapper for :class:`HostLink`."""
    return HostLink(loop, upstream, downstream, latency_ns=latency_ns,
                    link_bps=link_bps)
