"""The OpenNetVM-style NFV platform substrate (paper §3.1, Figure 2).

NFVnice is implemented on OpenNetVM: a DPDK-based platform where an NF
Manager owns the NIC, ferries packet descriptors through shared-memory
rings, and NFs run as separate processes.  This package models that
substrate:

* :mod:`~repro.platform.packet` — flows and the segment representation
  (runs of same-flow packets) that queues carry.
* :mod:`~repro.platform.ring` — bounded descriptor rings with watermark
  feedback on enqueue, the structure backpressure is built on.
* :mod:`~repro.platform.chain` — service chains (sequences of NFs), which
  may share NF instances (Figure 8) and may be defined per flow.
* :mod:`~repro.platform.flow_table` — flow → chain lookup used by the Rx
  thread.
* :mod:`~repro.platform.nic` — 10 GbE port model and line-rate arithmetic.
* :mod:`~repro.platform.rx` / :mod:`~repro.platform.tx` — the manager's
  polling threads that move descriptors NIC→NF and NF→NF/NIC.
* :mod:`~repro.platform.wakeup` — the wakeup subsystem that posts NF
  semaphores, gated by backpressure when NFVnice is enabled.
* :mod:`~repro.platform.manager` — the NF Manager that wires it together.
"""

from repro.platform.chain import ServiceChain
from repro.platform.config import PlatformConfig
from repro.platform.flow_table import FlowTable
from repro.platform.manager import NFManager
from repro.platform.multihost import HostLink, connect_hosts
from repro.platform.orchestrator import Topology, build_topology, load_topology
from repro.platform.nic import NIC, line_rate_pps
from repro.platform.packet import Flow, PacketSegment
from repro.platform.ring import PacketRing

__all__ = [
    "Flow",
    "PacketSegment",
    "PacketRing",
    "ServiceChain",
    "FlowTable",
    "NIC",
    "line_rate_pps",
    "NFManager",
    "PlatformConfig",
    "HostLink",
    "connect_hosts",
    "Topology",
    "build_topology",
    "load_topology",
]
