"""NIC model and line-rate arithmetic.

The testbed uses dual-port 10 Gbps NICs connected back-to-back (§4.1).
On the wire an Ethernet frame carries 20 bytes of overhead beyond the
frame itself (preamble, SFD, inter-frame gap), so 64-byte packets at
10 Gbps arrive at 14.88 Mpps — the line rate MoonGen and Pktgen generate.
"""

from __future__ import annotations


from repro.platform.packet import Flow, PacketSegment
from repro.platform.ring import PacketRing

#: Preamble (7) + SFD (1) + inter-frame gap (12) bytes per frame on the wire.
WIRE_OVERHEAD_BYTES = 20


def line_rate_pps(pkt_size: int, link_bps: float = 10e9) -> float:
    """Maximum packets/second of ``pkt_size``-byte frames on ``link_bps``."""
    if pkt_size <= 0:
        raise ValueError("pkt_size must be positive")
    wire_bits = (pkt_size + WIRE_OVERHEAD_BYTES) * 8
    return link_bps / wire_bits


class NIC:
    """A port: an Rx ring the generator fills and egress counters.

    The hardware Rx ring is larger than NF rings (DPDK default 8192
    descriptors here); when the manager's Rx thread cannot drain it in
    time, excess arrivals are dropped on the floor exactly as a real NIC
    drops on RX-ring exhaustion.
    """

    def __init__(self, link_bps: float = 10e9, rx_capacity: int = 8192,
                 name: str = "nic0"):
        self.name = name
        self.link_bps = float(link_bps)
        self.rx_ring = PacketRing(capacity=rx_capacity, name=f"{name}.rx")
        self.tx_packets = 0
        self.tx_bytes = 0
        #: Optional egress tap: called with each transmitted segment.  A
        #: HostLink uses this to carry packets to the next host of a
        #: multi-host service chain (§3.3).
        self.on_transmit = None

    def receive(self, flow: Flow, count: int, now_ns: int) -> int:
        """Packets arriving from the wire; returns how many were accepted."""
        accepted, _dropped, _hi = self.rx_ring.enqueue(flow, count, now_ns)
        return accepted

    def transmit(self, segment: PacketSegment) -> None:
        """Send a processed segment out the port."""
        self.tx_packets += segment.count
        self.tx_bytes += segment.count * segment.flow.pkt_size
        if self.on_transmit is not None:
            self.on_transmit(segment)

    @property
    def rx_dropped(self) -> int:
        """Packets lost to Rx-ring exhaustion (imissed in DPDK terms)."""
        return self.rx_ring.dropped_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NIC({self.name!r}, {self.link_bps / 1e9:g}Gbps)"
