"""The NF Manager: the top-level object that wires the platform together.

Mirrors Figure 2: a NIC, a Flow Table, Rx/Tx threads on dedicated cores,
the Wakeup subsystem, and — when NFVnice features are enabled — the
backpressure controller, ECN marker, cgroup controller and Monitor
thread.  NFs are placed on shared worker cores, each core running one of
the modelled kernel schedulers.

Typical use::

    mgr = NFManager(loop, scheduler="BATCH", config=PlatformConfig())
    nf1 = NFProcess("nf1", FixedCost(120), config=mgr.config)
    mgr.add_nf(nf1, core_id=0)
    ...
    chain = mgr.add_chain("chain-A", [nf1, nf2, nf3])
    flow = Flow("f1")
    mgr.install_flow(flow, chain)
    mgr.start()
    # feed mgr.nic via a traffic generator, then loop.run_until(...)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from typing import TYPE_CHECKING

from repro.platform.chain import ServiceChain
from repro.platform.config import PlatformConfig
from repro.platform.flow_table import FlowTable
from repro.platform.nic import NIC
from repro.platform.rx import RxThread
from repro.platform.tx import TxThread
from repro.platform.wakeup import WakeupSubsystem
from repro.sched import Core, make_scheduler
from repro.sched.base import Scheduler
from repro.sched.cgroups import CgroupController
from repro.sim.engine import EventLoop

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backpressure import BackpressureController
    from repro.core.ecn import ECNMarker
    from repro.core.monitor import MonitorThread
    from repro.core.nf import NFProcess

SchedulerSpec = Union[str, Callable[[], Scheduler]]


class NFManager:
    """Builds and runs an NFV platform instance."""

    def __init__(
        self,
        loop: EventLoop,
        scheduler: SchedulerSpec = "BATCH",
        config: Optional[PlatformConfig] = None,
        nic: Optional[NIC] = None,
    ):
        self.loop = loop
        self.config = config if config is not None else PlatformConfig()
        self._scheduler_spec = scheduler
        self.nic = nic if nic is not None else NIC()
        self.flow_table = FlowTable()
        self.chains: Dict[str, ServiceChain] = {}
        self.nfs: List["NFProcess"] = []
        self.cores: Dict[int, Core] = {}
        self._started = False

        # Observability (attach_observability() before start()).
        self.bus = None
        self.spans = None
        # Flow-level telemetry (attach_telemetry() before start()).
        self.latency = None
        self.causality = None

        # NFVnice subsystems (wired at start()).
        self.cgroups = CgroupController()
        self.backpressure: Optional["BackpressureController"] = None
        self.ecn: Optional["ECNMarker"] = None
        self.monitor: Optional["MonitorThread"] = None
        self.wakeup: Optional[WakeupSubsystem] = None
        self.rx_thread: Optional[RxThread] = None
        self.tx_threads: List[TxThread] = []

        # Fault injection (attach_faults() before start()).
        self.faults = None

        # SLO control loop (attach_slo_governor() before start()).
        self.slo_governor = None

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def _make_scheduler(self) -> Scheduler:
        if callable(self._scheduler_spec):
            return self._scheduler_spec()
        return make_scheduler(self._scheduler_spec)

    def core(self, core_id: int) -> Core:
        """The worker core ``core_id`` (created on first use)."""
        if core_id not in self.cores:
            core = Core(
                self.loop,
                self._make_scheduler(),
                core_id=core_id,
                ctx_switch_ns=self.config.ctx_switch_ns,
                max_segment_ns=self.config.tx_poll_ns,
                socket=core_id // max(1, self.config.cores_per_socket),
            )
            if self.bus is not None:
                core.attach_bus(self.bus)
            if self.causality is not None:
                core.causality = self.causality
            self.cores[core_id] = core
        return self.cores[core_id]

    def add_nf(self, nf: "NFProcess", core_id: int = 0) -> "NFProcess":
        """Place an NF on a worker core.

        Works both before and after :meth:`start`: a late-registered NF (a
        scaled-out replica, a replacement instance) is announced to the
        wakeup scan, the monitor and the least-loaded Tx thread so it
        becomes a first-class platform citizen on the next tick.

        Names must be unique: :meth:`nf_by_name` and the Monitor's per-NF
        bookkeeping key on them, so a duplicate would silently shadow the
        earlier instance.
        """
        for existing in self.nfs:
            if existing.name == nf.name:
                raise ValueError(f"duplicate NF name {nf.name!r}")
        self.core(core_id).add_task(nf)
        self.nfs.append(nf)
        if self.bus is not None:
            nf.rx_ring.bus = self.bus
            nf.tx_ring.bus = self.bus
        if self.latency is not None:
            nf.latency = self.latency
        if self._started:
            self._register_live_nf(nf)
        return nf

    def _register_live_nf(self, nf: "NFProcess") -> None:
        """Announce a post-start NF to every subsystem that scans a roster."""
        assert self.wakeup is not None
        self.wakeup.add_nf(nf)
        if self.monitor is not None:
            self.monitor.add_nf(nf)
        # Deterministic least-loaded Tx assignment: min roster size, ties
        # broken by thread order.
        tx = min(self.tx_threads, key=lambda t: len(t.nfs))
        tx.nfs.append(nf)
        if nf.io is not None and getattr(nf.io, "on_unblock", None) is None:
            nf.io.on_unblock = self._io_unblock_callback(nf)
        if self.faults is not None:
            self.faults.watch_nf(nf)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_observability(self, bus=None, spans=None,
                             latency=None, causality=None) -> None:
        """Attach an event bus and/or a span collector to the platform.

        Call before :meth:`start`.  ``bus`` (an
        :class:`repro.obs.bus.EventBus`) receives scheduler, ring,
        backpressure, ECN, wakeup and monitor events from every layer;
        ``spans`` (a :class:`repro.obs.spans.SpanCollector`) samples
        packet lifecycles at the Rx thread.  ``latency`` and ``causality``
        delegate to :meth:`attach_telemetry`.  With nothing attached the
        data path pays one ``is not None`` branch per publish site.
        """
        if self._started:
            raise RuntimeError("attach observability before start()")
        self.bus = bus
        self.spans = spans
        if latency is not None or causality is not None:
            self.attach_telemetry(latency=latency, causality=causality)
        if self.faults is not None:
            self.faults.bus = bus
        if bus is None:
            return
        for core in self.cores.values():
            core.attach_bus(bus)
        for nf in self.nfs:
            nf.rx_ring.bus = bus
            nf.tx_ring.bus = bus
        self.nic.rx_ring.bus = bus

    def attach_telemetry(self, latency=None, causality=None) -> None:
        """Attach flow-level telemetry trackers to the platform.

        Call before :meth:`start`.  ``latency`` (a
        :class:`repro.obs.latency.FlowLatencyTracker`) receives every
        chain completion and every per-hop batch; ``causality`` (a
        :class:`repro.obs.causality.CausalityTracer`) receives throttle
        transitions, entry discards, wasted drops, deliveries and
        dispatches.  Separate from :meth:`attach_observability` so a
        telemetry attach never clobbers a hand-attached bus.
        """
        if self._started:
            raise RuntimeError("attach telemetry before start()")
        if latency is not None:
            self.latency = latency
            for nf in self.nfs:
                nf.latency = latency
        if causality is not None:
            self.causality = causality
            for core in self.cores.values():
                core.causality = causality

    def attach_slo_governor(self, governor) -> None:
        """Attach an :class:`repro.core.monitor.SLOGovernor`.

        Call before :meth:`start`.  The governor is handed to the Monitor
        thread at start; it is inert when cgroups are disabled (there is
        no Monitor to evaluate it, and no shares to steer).
        """
        if self._started:
            raise RuntimeError("attach the SLO governor before start()")
        self.slo_governor = governor

    def migrate_nf(self, nf: "NFProcess", core_id: int) -> bool:
        """Chain-aware core reallocation: move ``nf`` onto ``core_id``.

        Models the orchestrator reassigning an NF process's CPU affinity:
        the NF is descheduled from its old core (a running NF loses its
        in-flight batch, exactly like the fault injector's teardown — the
        rings are untouched, so no packets are lost), re-homed, and woken
        on the new core so it resumes on the next dispatch there.
        Returns False when the NF is already on ``core_id``.
        """
        old_core = nf.core
        if old_core is not None and old_core.core_id == core_id:
            return False
        if old_core is not None:
            old_core.deschedule(nf)
            old_core.tasks.remove(nf)
            nf.core = None
        new_core = self.core(core_id)
        new_core.add_task(nf)
        if self._started and self.wakeup is not None:
            # Re-arm the NF on its new core if it has pending work.
            self.wakeup.notify(nf)
        return True

    def add_chain(self, name: str, nfs: Sequence["NFProcess"]) -> ServiceChain:
        """Define a service chain over already-added NFs."""
        if name in self.chains:
            raise ValueError(f"duplicate chain name {name!r}")
        for nf in nfs:
            if nf not in self.nfs:
                raise ValueError(f"{nf.name} was not added to the manager")
        chain = ServiceChain(name, nfs)
        self.chains[name] = chain
        return chain

    def install_flow(self, flow, chain: ServiceChain) -> None:
        """Steer ``flow`` into ``chain`` via the Flow Table."""
        self.flow_table.install(flow, chain)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def attach_faults(self, plan, policy=None, rng=None) -> None:
        """Attach a :class:`repro.faults.plan.FaultPlan` to this platform.

        Call before :meth:`start`.  Builds a
        :class:`repro.faults.injector.FaultInjector` whose onsets, watchdog
        and recovery policy are wired when the platform starts; ``policy``
        (a :class:`repro.faults.recovery.RecoveryPolicy` or registry name)
        and ``rng`` (a stochastic-onset stream) default to what the plan
        itself specifies.
        """
        if self._started:
            raise RuntimeError("attach faults before start()")
        from repro.faults.injector import FaultInjector

        self.faults = FaultInjector(self, plan, policy=policy, rng=rng)
        if self.bus is not None:
            self.faults.bus = self.bus

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Wire and start the manager threads; idempotent."""
        if self._started:
            return
        self._started = True
        from repro.core.backpressure import BackpressureController
        from repro.core.ecn import ECNMarker
        from repro.core.monitor import MonitorThread

        cfg = self.config
        if cfg.enable_backpressure:
            self.backpressure = BackpressureController(cfg)
        if cfg.enable_ecn:
            self.ecn = ECNMarker(cfg)
        self.wakeup = WakeupSubsystem(self.loop, self.nfs, self.backpressure, cfg)
        self.rx_thread = RxThread(
            self.loop, self.nic, self.flow_table, self.wakeup,
            self.backpressure, cfg, ecn=self.ecn,
        )
        if self.bus is not None:
            if self.backpressure is not None:
                self.backpressure.bus = self.bus
            if self.ecn is not None:
                self.ecn.bus = self.bus
            self.wakeup.bus = self.bus
            self.rx_thread.bus = self.bus
        if self.spans is not None:
            self.rx_thread.spans = self.spans
        if self.causality is not None:
            if self.backpressure is not None:
                self.backpressure.causality = self.causality
            self.rx_thread.causality = self.causality
        n_tx = max(1, cfg.num_tx_threads)
        partitions: List[List] = [self.nfs[i::n_tx] for i in range(n_tx)]
        self.tx_threads = [
            TxThread(self.loop, part, self.nic, self.wakeup,
                     self.backpressure, self.ecn, cfg)
            for part in partitions if part
        ]
        if not self.tx_threads:
            # No NFs yet is unusual but legal; keep one idle thread so the
            # attribute is populated.
            self.tx_threads = [TxThread(self.loop, [], self.nic, self.wakeup,
                                        self.backpressure, self.ecn, cfg)]
        if self.latency is not None or self.causality is not None:
            for tx in self.tx_threads:
                tx.latency = self.latency
                tx.causality = self.causality
        if cfg.enable_cgroups:
            self.monitor = MonitorThread(
                self.loop, self.nfs, self.cgroups, cfg, record_series=True
            )
            if self.bus is not None:
                self.monitor.bus = self.bus
            if self.slo_governor is not None:
                self.monitor.slo_governor = self.slo_governor
            self.monitor.start()
        self._apply_numa_penalties()
        # Hook I/O completions into the wakeup path so an NF blocked on
        # full double-buffers resumes as soon as a flush lands.
        for nf in self.nfs:
            if nf.io is not None and getattr(nf.io, "on_unblock", None) is None:
                nf.io.on_unblock = self._io_unblock_callback(nf)
        self.wakeup.start()
        self.rx_thread.start()
        stagger = cfg.tx_poll_ns // max(1, len(self.tx_threads))
        for i, tx in enumerate(self.tx_threads):
            tx.start(phase_ns=i * stagger)
        if self.faults is not None:
            self.faults.wire()

    def _apply_numa_penalties(self) -> None:
        """Charge cross-socket chain hops (paper §1's NUMA concern).

        An NF whose upstream hop in any chain lives on the other socket
        touches remote memory for every packet; its effective per-packet
        cost grows by ``numa_penalty_cycles``.  Placement-static: computed
        once from the chain topology at start-up.
        """
        penalty = self.config.numa_penalty_cycles
        if penalty <= 0:
            return
        from repro.nfs.cost_models import FixedCost, WithOverhead

        for nf in self.nfs:
            if nf.busy_loop or nf.core is None:
                continue
            remote = False
            for chain, position in nf.chain_positions.values():
                if position == 0:
                    continue
                upstream = chain.nfs[position - 1]
                if upstream.core is not None and \
                        upstream.core.socket != nf.core.socket:
                    remote = True
                    break
            if not remote:
                continue
            nf.numa_remote_input = True
            if isinstance(nf.cost_model, FixedCost):
                nf.cost_model = FixedCost(nf.cost_model.cycles + penalty)
            else:
                nf.cost_model = WithOverhead(nf.cost_model, penalty)

    def _io_unblock_callback(self, nf: "NFProcess"):
        def _cb() -> None:
            assert self.wakeup is not None
            self.wakeup.notify(nf)

        return _cb

    def run(self, duration_ns: int) -> None:
        """Run the platform for ``duration_ns`` of simulated time."""
        self.start()
        self.loop.run_until(self.loop.now + int(duration_ns))

    def finalize(self) -> None:
        """Close per-core idle accounting (call once, after the last run)."""
        for core in self.cores.values():
            core.finalize()

    # ------------------------------------------------------------------
    # Aggregate accounting
    # ------------------------------------------------------------------
    @property
    def tx_thread(self) -> Optional[TxThread]:
        """The first Tx thread (back-compat convenience)."""
        return self.tx_threads[0] if self.tx_threads else None

    @property
    def total_completed(self) -> int:
        """Packets that traversed their full chain and left the NIC."""
        return sum(chain.completed for chain in self.chains.values())

    @property
    def total_wasted_drops(self) -> int:
        """Packets dropped after at least one NF had processed them."""
        return sum(chain.wasted_drops for chain in self.chains.values())

    @property
    def total_entry_discards(self) -> int:
        """Packets shed by backpressure before any processing."""
        return sum(chain.entry_discards for chain in self.chains.values())

    def nf_by_name(self, name: str) -> "NFProcess":
        for nf in self.nfs:
            if nf.name == name:
                return nf
        raise KeyError(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NFManager(nfs={len(self.nfs)}, chains={len(self.chains)}, "
            f"cores={sorted(self.cores)})"
        )
