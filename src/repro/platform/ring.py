"""Bounded packet-descriptor rings with watermark feedback.

OpenNetVM connects the manager and NFs through fixed-size DPDK rings; the
Tx thread "enqueues a packet to a NF's Rx queue if the queue is below the
high watermark, while getting feedback about the queue's state in the
return value" (§3.5).  :meth:`PacketRing.enqueue` reproduces exactly that
contract: it accepts what fits, drops the excess, and reports whether the
ring is now above the high watermark.

The ring also maintains per-chain occupancy counts so the backpressure
subsystem can classify a congested queue by service chain in O(1) instead
of walking the queue (§3.3 "examines all packets in the NF's queue to
determine what service chain they are a part of").

Drops are accounted *per reason* so experiments can tell congestion from
failure: ``full`` (ring at capacity — the ordinary overload drop),
``sealed`` (a fault stalled the ring; nothing goes in or out), ``nf_dead``
(the manager declared the owning NF dead and sheds its arrivals while
recovery runs), and ``purged`` (a selective early-discard purge removed a
throttled chain's packets).  ``dropped_total`` stays the sum of all four.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.platform.packet import Flow, PacketSegment

#: The drop-reason taxonomy every ring accounts under.
DROP_REASONS = ("full", "sealed", "nf_dead", "purged")

#: Shared empty result for :meth:`PacketRing.drain` misses (never mutated).
_EMPTY_DEQUE: Deque[PacketSegment] = deque()


class PacketRing:
    """FIFO ring of :class:`PacketSegment` with a hard capacity."""

    def __init__(
        self,
        capacity: int = 4096,
        high_watermark: float = 0.80,
        low_watermark: float = 0.60,
        name: str = "",
        coalesce: bool = True,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={low_watermark}, high={high_watermark}"
            )
        self.name = name
        self.capacity = int(capacity)
        self.high_watermark = int(round(high_watermark * capacity))
        self.low_watermark = int(round(low_watermark * capacity))
        self._segments: Deque[PacketSegment] = deque()
        self._count = 0
        self._chain_counts: Dict[str, int] = {}
        #: Fault states (set by the fault injector / recovery machinery).
        #: A *sealed* ring is stalled: enqueues drop and dequeues return
        #: nothing, as if the shared-memory segment went away.  A *dead*
        #: ring sheds arrivals (the manager knows the owner NF is gone)
        #: but still lets a restarted instance drain what is queued.
        self.sealed = False
        self.dead = False
        # Counters
        self.enqueued_total = 0
        self.dropped_total = 0
        self.dequeued_total = 0
        #: Same-instant tail merging (see :meth:`enqueue`).  Off switch
        #: exists for the property tests that compare coalesced against
        #: uncoalesced behaviour; production rings always coalesce.
        self.coalesce = coalesce
        self.coalesce_hits = 0    # enqueues merged into the tail segment
        self.coalesce_misses = 0  # enqueues that appended a new segment
        #: Drops keyed by reason (see :data:`DROP_REASONS`); values sum to
        #: ``dropped_total``.
        self.drops_by_reason: Dict[str, int] = {}
        #: Optional :class:`repro.obs.bus.EventBus`; when attached the ring
        #: publishes enqueue/dequeue/drop events with its current depth.
        self.bus = None

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def free(self) -> int:
        return self.capacity - self._count

    @property
    def above_high(self) -> bool:
        return self._count >= self.high_watermark

    @property
    def below_low(self) -> bool:
        return self._count < self.low_watermark

    def occupancy(self) -> float:
        """Fill fraction in [0, 1]."""
        return self._count / self.capacity

    def head_wait_ns(self, now_ns: int) -> int:
        """Queuing time of the oldest packet (0 when empty)."""
        if not self._segments:
            return 0
        return max(0, int(now_ns) - self._segments[0].enqueue_ns)

    def chain_count(self, chain_name: str) -> int:
        """Packets currently queued that belong to ``chain_name``."""
        return self._chain_counts.get(chain_name, 0)

    def chains_present(self) -> List[str]:
        """Names of chains with at least one queued packet."""
        return [name for name, c in self._chain_counts.items() if c > 0]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def enqueue(self, flow: Flow, count: int, now_ns: int,
                origin_ns: Optional[int] = None,
                span=None) -> Tuple[int, int, bool]:
        """Append up to ``count`` packets of ``flow``.

        ``origin_ns`` carries the packets' first-arrival stamp through the
        chain (defaults to ``now_ns`` for fresh arrivals).  ``span``
        attaches a sampled packet span to the run's head packet.  Returns
        ``(accepted, dropped, above_high)`` — the watermark flag is
        evaluated *after* the enqueue, which is the feedback the Tx thread
        uses for overload detection.
        """
        cur = self._count
        if count <= 0:
            return 0, 0, cur >= self.high_watermark
        if self.sealed or self.dead:
            reason = "sealed" if self.sealed else "nf_dead"
            self.dropped_total += count
            self.drops_by_reason[reason] = (
                self.drops_by_reason.get(reason, 0) + count
            )
            flow.stats.queue_drops += count
            if self.bus is not None and self.bus.active:
                self.bus.publish("ring.drop", self.name, count=count,
                                 depth=cur, reason=reason)
            return 0, count, cur >= self.high_watermark
        now = int(now_ns)
        origin = now if origin_ns is None else int(origin_ns)
        free = self.capacity - cur
        if count <= free:
            accepted = count
            dropped = 0
        else:
            accepted = free
            dropped = count - free
        if accepted > 0:
            segments = self._segments
            tail = segments[-1] if segments else None
            if (
                span is None
                and tail is not None
                and self.coalesce
                and tail.flow is flow
                and tail.enqueue_ns == now
                and tail.origin_ns == origin
            ):
                # Merge back-to-back same-flow arrivals into one segment.
                tail.count += accepted
                self.coalesce_hits += 1
            else:
                # Bypass __init__: accepted > 0 here and now/origin are
                # already integers, so validation would be pure overhead
                # on the hottest allocation site in the simulator.
                seg = PacketSegment.__new__(PacketSegment)
                seg.flow = flow
                seg.count = accepted
                seg.enqueue_ns = now
                seg.origin_ns = origin
                seg.span = span
                segments.append(seg)
                self.coalesce_misses += 1
            cur += accepted
            self._count = cur
            self.enqueued_total += accepted
            chain = flow.chain
            if chain is not None:
                key = chain.name
                counts = self._chain_counts
                try:
                    counts[key] += accepted
                except KeyError:
                    counts[key] = accepted
        if dropped > 0:
            self.dropped_total += dropped
            self.drops_by_reason["full"] = (
                self.drops_by_reason.get("full", 0) + dropped
            )
            flow.stats.queue_drops += dropped
        if self.bus is not None and self.bus.active:
            if accepted > 0:
                self.bus.publish("ring.enqueue", self.name,
                                 count=accepted, depth=cur)
            if dropped > 0:
                self.bus.publish("ring.drop", self.name,
                                 count=dropped, depth=cur,
                                 reason="full")
        return accepted, dropped, cur >= self.high_watermark

    def enqueue_segment(self, segment: PacketSegment, now_ns: int) -> Tuple[int, int, bool]:
        """Enqueue an existing segment (re-stamps enqueue, keeps origin)."""
        return self.enqueue(segment.flow, segment.count, now_ns,
                            origin_ns=segment.origin_ns, span=segment.span)

    def dequeue(self, max_packets: int) -> List[PacketSegment]:
        """Remove up to ``max_packets`` from the head, preserving FIFO order.

        The returned segments keep their original ``enqueue_ns`` so the
        caller can account queuing latency.
        """
        if max_packets <= 0 or self.sealed:
            return []
        out: List[PacketSegment] = []
        remaining = max_packets
        segments = self._segments
        chain_counts = self._chain_counts
        taken_total = 0
        while remaining > 0 and segments:
            head = segments[0]
            n = head.count
            if n <= remaining:
                segments.popleft()
                taken = head
            else:
                taken = head.split(remaining)
                n = taken.count
            out.append(taken)
            remaining -= n
            taken_total += n
            chain = taken.flow.chain
            if chain is not None:
                chain_counts[chain.name] -= n
        if taken_total:
            self._count -= taken_total
            self.dequeued_total += taken_total
            if self.bus is not None and self.bus.active:
                self.bus.publish("ring.dequeue", self.name,
                                 count=taken_total, depth=self._count)
        return out

    def dequeue_batch(self, max_packets: int) -> List[Tuple]:
        """Like :meth:`dequeue` but yields ``(flow, count, enqueue_ns,
        origin_ns, span)`` tuples instead of segments.

        A partial take decrements the head segment in place — no
        :class:`PacketSegment` is allocated for the split-off run.  This is
        the NF execute path: batch-bounded dequeues chop large coalesced
        arrival segments dozens of times, and the segment objects would be
        torn apart immediately anyway.  Accounting and span movement are
        identical to ``dequeue`` + ``PacketSegment.split``.
        """
        if max_packets <= 0 or self.sealed:
            return []
        out: List[Tuple] = []
        remaining = max_packets
        segments = self._segments
        chain_counts = self._chain_counts
        taken_total = 0
        while remaining > 0 and segments:
            head = segments[0]
            n = head.count
            flow = head.flow
            if n <= remaining:
                segments.popleft()
                out.append((flow, n, head.enqueue_ns, head.origin_ns,
                            head.span))
            else:
                n = remaining
                # The head packet — and its span — leaves with this run.
                out.append((flow, n, head.enqueue_ns, head.origin_ns,
                            head.span))
                head.span = None
                head.count -= n
            remaining -= n
            taken_total += n
            chain = flow.chain
            if chain is not None:
                chain_counts[chain.name] -= n
        if taken_total:
            self._count -= taken_total
            self.dequeued_total += taken_total
            if self.bus is not None and self.bus.active:
                self.bus.publish("ring.dequeue", self.name,
                                 count=taken_total, depth=self._count)
        return out

    def drain(self) -> "Deque[PacketSegment]":
        """Remove and return every queued segment in FIFO order.

        Equivalent to ``dequeue(len(ring))`` but O(1) in accounting: the
        Tx ferry always takes everything, so the per-segment split/count
        bookkeeping of :meth:`dequeue` collapses to zeroing the chain
        counts wholesale.  Sealed rings yield nothing, like ``dequeue``.
        """
        n = self._count
        if not n or self.sealed:
            return _EMPTY_DEQUE
        segments = self._segments
        self._segments = deque()
        self._count = 0
        self.dequeued_total += n
        chain_counts = self._chain_counts
        for key in chain_counts:
            chain_counts[key] = 0
        if self.bus is not None and self.bus.active:
            self.bus.publish("ring.dequeue", self.name, count=n, depth=0)
        return segments

    def peek_head(self) -> Optional[PacketSegment]:
        """The oldest segment without removing it (None when empty)."""
        return self._segments[0] if self._segments else None

    def drop_chain(self, chain_name: str) -> int:
        """Discard every queued packet belonging to ``chain_name``.

        Supports the selective early-discard variant where the manager
        purges a throttled chain's packets from an upstream queue.  Returns
        the number of packets discarded.
        """
        dropped = 0
        kept: Deque[PacketSegment] = deque()
        for seg in self._segments:
            chain = seg.flow.chain
            if chain is not None and chain.name == chain_name:
                dropped += seg.count
                seg.flow.stats.queue_drops += seg.count
            else:
                kept.append(seg)
        if dropped:
            self._segments = kept
            self._count -= dropped
            self.dropped_total += dropped
            self.drops_by_reason["purged"] = (
                self.drops_by_reason.get("purged", 0) + dropped
            )
            self._chain_counts[chain_name] = 0
            if self.bus is not None and self.bus.active:
                self.bus.publish("ring.drop", self.name,
                                 count=dropped, depth=self._count,
                                 chain=chain_name, reason="purged")
        return dropped

    def clear(self) -> int:
        """Empty the ring (used by tests); returns packets removed."""
        removed = self._count
        self._segments.clear()
        self._count = 0
        self._chain_counts.clear()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketRing({self.name!r}, {self._count}/{self.capacity}, "
            f"hi={self.high_watermark}, lo={self.low_watermark})"
        )
