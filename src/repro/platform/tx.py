"""The NF Manager's Tx threads (paper §3.1, §3.5).

"After being processed by an NF, the NF Manager's Tx Threads move packets
through the remainder of the chain" — from each NF's Tx ring either to the
next NF's Rx ring (zero copy) or out the NIC when the chain is complete.

Overload *detection* lives here for free: the watermark feedback returned
by the downstream enqueue marks the NF overloaded on the backpressure
watch list without any extra work on the data path.  Packets that do not
fit in a downstream ring are dropped — this is precisely the *wasted work*
the paper quantifies (Tables 3, 5, 6), since every upstream NF already
spent cycles on them; the drop is attributed to the NF that just processed
them.

The Tx threads also update the per-ring queue-length EWMA and CE-mark
responsive flows when it exceeds the marking threshold (§3.3).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.platform.config import PlatformConfig
from repro.platform.nic import NIC
from repro.platform.wakeup import WakeupSubsystem
from repro.sched.base import TaskState
from repro.sim.engine import EventHandle, EventLoop

_BLOCKED = TaskState.BLOCKED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backpressure import BackpressureController
    from repro.core.ecn import ECNMarker
    from repro.core.nf import NFProcess


class TxThread:
    """Ferries segments NF→NF and NF→NIC, detecting overload as it goes."""

    def __init__(
        self,
        loop: EventLoop,
        nfs: List["NFProcess"],
        nic: NIC,
        wakeup: WakeupSubsystem,
        backpressure: Optional["BackpressureController"],
        ecn: Optional["ECNMarker"] = None,
        config: Optional[PlatformConfig] = None,
    ):
        self.loop = loop
        self.nfs = list(nfs)
        self.nic = nic
        self.wakeup = wakeup
        self.backpressure = backpressure
        self.ecn = ecn
        self.config = config if config is not None else PlatformConfig()
        self.forwarded = 0
        self.egressed = 0
        self.wasted_drops = 0
        #: Optional telemetry hooks (wired by NFManager.start()): a
        #: :class:`repro.obs.latency.FlowLatencyTracker` fed on every chain
        #: completion and a :class:`repro.obs.causality.CausalityTracer`
        #: fed deliveries and wasted drops.  One branch each when off.
        self.latency = None
        self.causality = None
        # Per-flow staging caches: deliveries arrive in long same-flow
        # runs, so one identity check replaces the tracker lookups.  The
        # staged containers are stable objects (drained in place), so a
        # cached reference never goes stale.
        self._tel_flow = None
        self._lat_pend = None
        self._cause_pend = None
        self._poll_ns = int(self.config.tx_poll_ns)
        self._tick: Optional[EventHandle] = None

    def start(self, phase_ns: int = 0) -> None:
        """Begin polling; ``phase_ns`` staggers multiple Tx threads so they
        interleave instead of firing back to back."""
        if self._tick is None:
            self._tick = self.loop.call_every(
                self._poll_ns, self.poll,
                first=self.loop.now + self._poll_ns + int(phase_ns))

    def stop(self) -> None:
        if self._tick is not None:
            self._tick.cancel()
            self._tick = None

    # ------------------------------------------------------------------
    def poll(self) -> None:
        now = self.loop.now
        route = self._route
        notify = self.wakeup.notify
        for nf in self.nfs:
            ring = nf.tx_ring
            if not ring._count:
                continue
            for seg in ring.drain():
                route(nf, seg, now)
            # The NF may have been blocked on a full Tx ring; there is room
            # again, so give it a chance to resume (local backpressure
            # release, §3.3).  notify() is a no-op unless the NF is
            # blocked, so the state check is pure fast-path.
            if nf.state is _BLOCKED:
                notify(nf)
        if self.ecn is not None:
            for nf in self.nfs:
                self.ecn.observe(nf.rx_ring)

    def _route(self, nf: "NFProcess", seg, now: int) -> None:
        flow = seg.flow
        chain = flow.chain
        if seg.span is not None:
            # Sampled packet: time spent parked in the NF's Tx ring
            # waiting for this ferry pass.
            seg.span.record_hop(f"{nf.name}:tx",
                                max(0, now - seg.enqueue_ns))
        if chain is None:
            # Untracked flow: send it out the port.
            if seg.span is not None:
                seg.span.finish(now)
            self.nic.transmit(seg)
            self.egressed += seg.count
            return
        nxt = chain._next[nf]
        if nxt is None:
            if seg.span is not None:
                seg.span.finish(now)
            self.nic.transmit(seg)
            self.egressed += seg.count
            chain.completed += seg.count
            chain.completed_bytes += seg.count * flow.pkt_size
            flow.stats.delivered += seg.count
            latency = now - seg.origin_ns
            if latency >= 0:
                chain.latency_hist.add(latency, weight=seg.count)
                lat = self.latency
                cause = self.causality
                if lat is not None or cause is not None:
                    if flow is not self._tel_flow:
                        self._tel_flow = flow
                        if lat is not None:
                            self._lat_pend = lat.delivery_staging(
                                flow.flow_id, chain.name)
                        if cause is not None:
                            self._cause_pend = cause.delivery_staging(
                                flow.flow_id, chain.name)
                    count = seg.count
                    if lat is not None:
                        fp = self._lat_pend
                        if latency in fp:
                            fp[latency] += count
                        else:
                            fp[latency] = count
                            if len(fp) >= lat._PENDING_LIMIT:
                                lat._flush()
                    if cause is not None:
                        pend = self._cause_pend
                        pend.append((seg.origin_ns, now, count))
                        if len(pend) >= cause._PENDING_LIMIT:
                            cause.drain_deliveries()
            return
        accepted, dropped, above_high = nxt.rx_ring.enqueue(
            flow, seg.count, now, origin_ns=seg.origin_ns, span=seg.span)
        self.forwarded += accepted
        if dropped:
            # Work already performed upstream is lost with these packets.
            chain.wasted_drops += dropped
            nf.wasted_processed += dropped
            self.wasted_drops += dropped
            if self.causality is not None:
                # The full ring that destroyed this upstream work belongs
                # to the congested downstream NF.
                self.causality.on_wasted_drop(nxt.name, dropped)
        if above_high and self.backpressure is not None:
            self.backpressure.mark_overloaded(nxt)
        if accepted:
            if self.ecn is not None and flow.responsive:
                fraction = self.ecn.mark_fraction(nxt.rx_ring)
                to_mark = int(round(accepted * fraction))
                if to_mark:
                    self.ecn.mark(flow, to_mark, now)
            if nxt.state is _BLOCKED:
                self.wakeup.notify(nxt)
