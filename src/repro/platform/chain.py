"""Service chains.

A chain is an ordered sequence of NF instances a packet traverses
(RFC 7665).  Chains may share NF instances (Figure 8: NF1 and NF4 serve
both chains) and may be defined "at fine granularity (e.g., at the
flow-level) in order to minimize head of line blocking" (§3.3) — an
experiment simply creates one chain per flow over the same NF instances.

The chain also carries the per-chain counters the evaluation reports:
entry discards (backpressure early drops — *saved* work), in-chain queue
drops (*wasted* work, since upstream NFs already spent cycles), and
completions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.metrics.histogram import CycleHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.nf import NFProcess


class ServiceChain:
    """An ordered list of NF instances with throttle state and counters."""

    def __init__(self, name: str, nfs: Sequence["NFProcess"]):
        if not nfs:
            raise ValueError("a service chain needs at least one NF")
        self.name = name
        self.nfs: List["NFProcess"] = list(nfs)
        #: Backpressure throttle: when True the Rx thread discards this
        #: chain's packets at the system entry point (§3.3, Figure 5).
        self.throttled = False
        #: The NF whose congested queue triggered the throttle (for debugging
        #: and for clearing the throttle when that queue drains).
        self.throttle_cause: Optional["NFProcess"] = None
        # Counters
        self.completed = 0        # packets that exited the last NF
        self.completed_bytes = 0
        self.entry_discards = 0   # early drops at system entry (saved work)
        self.wasted_drops = 0     # drops after at least one NF processed
        #: End-to-end latency (ns) of completed packets, NIC-arrival to
        #: chain exit, carried by each segment's origin timestamp.
        self.latency_hist = CycleHistogram()

        # Successor map for O(1) next-hop routing on the Tx ferry path.
        # Membership is fixed at construction; first occurrence wins for
        # an NF appearing twice, matching ``list.index`` semantics.
        self._next: Dict["NFProcess", Optional["NFProcess"]] = {}
        last = len(self.nfs) - 1
        for position, nf in enumerate(self.nfs):
            nf.join_chain(self, position)
            if nf not in self._next:
                self._next[nf] = self.nfs[position + 1] if position < last else None

    def __len__(self) -> int:
        return len(self.nfs)

    def __iter__(self):
        return iter(self.nfs)

    def first(self) -> "NFProcess":
        return self.nfs[0]

    def last(self) -> "NFProcess":
        return self.nfs[-1]

    def position_of(self, nf: "NFProcess") -> int:
        """Index of ``nf`` in this chain (ValueError if absent)."""
        return self.nfs.index(nf)

    def next_nf(self, nf: "NFProcess") -> Optional["NFProcess"]:
        """The NF after ``nf``, or None when ``nf`` is the chain tail."""
        try:
            return self._next[nf]
        except KeyError:
            raise ValueError(f"{nf!r} is not in chain {self.name!r}") from None

    def upstream_of(self, nf: "NFProcess") -> List["NFProcess"]:
        """All NFs strictly before ``nf`` in this chain."""
        return self.nfs[: self.position_of(nf)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "->".join(nf.name for nf in self.nfs)
        state = " THROTTLED" if self.throttled else ""
        return f"ServiceChain({self.name!r}: {path}{state})"
