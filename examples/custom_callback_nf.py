#!/usr/bin/env python3
"""Writing your own NF with the libnf API (paper Figure 6, §3.1).

"A simple bridge NF or a basic monitor NF is less than 100 lines" — this
example writes two in a handful each: a firewall that denies one flow and
an audit monitor that asynchronously logs a record per batch via
``libnf_write_data``.  Both inherit the full NFVnice machinery (batching,
relinquish checks, voluntary yields, backpressure) from the platform.

Run:  python examples/custom_callback_nf.py
"""

from repro import (
    SEC,
    CallbackNF,
    DiskDevice,
    EventLoop,
    FixedCost,
    Flow,
    NFManager,
    PlatformConfig,
    TrafficGenerator,
    render_table,
)

BLOCKED_FLOWS = {"flow-malware"}


def firewall_handler(api, flow, count, now_ns):
    """Deny packets of blacklisted flows, forward the rest."""
    if flow.flow_id in BLOCKED_FLOWS:
        return 0
    return count


def make_monitor_handler(audit_log):
    """A monitor that counts per-flow packets and logs audit records."""

    def handler(api, flow, count, now_ns):
        audit_log[flow.flow_id] = audit_log.get(flow.flow_id, 0) + count
        # One 64-byte audit record per processed batch, written async.
        api.write_data(64, lambda ctx: None, context=flow.flow_id)
        return count

    return handler


def main() -> None:
    loop = EventLoop()
    config = PlatformConfig()
    manager = NFManager(loop, scheduler="BATCH", config=config)
    disk = DiskDevice(loop)

    firewall = CallbackNF("firewall", FixedCost(550), firewall_handler,
                          config=config)
    audit_log = {}
    monitor = CallbackNF("monitor", FixedCost(270),
                         make_monitor_handler(audit_log),
                         config=config, disk=disk)
    manager.add_nf(firewall, core_id=0)
    manager.add_nf(monitor, core_id=0)
    chain = manager.add_chain("edge", [firewall, monitor])

    generator = TrafficGenerator(loop, manager.nic)
    flows = [Flow("flow-web"), Flow("flow-dns"), Flow("flow-malware")]
    for flow in flows:
        manager.install_flow(flow, chain)
        generator.add_flow(flow, rate_pps=500_000.0)

    manager.start()
    generator.start()
    loop.run_until(1 * SEC)
    manager.finalize()

    rows = [[f.flow_id, f.stats.offered, f.stats.delivered,
             audit_log.get(f.flow_id, 0)] for f in flows]
    print(render_table(
        ["flow", "offered", "delivered", "monitor count"],
        rows, title="firewall -> monitor chain (1 s at 0.5 Mpps per flow)",
    ))
    print(f"\nfirewall denied {firewall.dropped_by_handler:,} packets; "
          f"monitor issued {monitor.api.storage_writes:,} async audit writes")


if __name__ == "__main__":
    main()
