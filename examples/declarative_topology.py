#!/usr/bin/env python3
"""Running a JSON-described topology (the paper's Flow Rule Installer).

Loads ``examples/topologies/edge_gateway.json`` — two service chains over
four NFs with mixed cost models, a prioritised shaper, and a flow that
switches on mid-run — runs it for a simulated second, and reports the
per-chain outcome.  Equivalent CLI:

    python -m repro topology examples/topologies/edge_gateway.json

Run:  python examples/declarative_topology.py
"""

import pathlib

from repro import load_topology, render_table

SPEC = pathlib.Path(__file__).parent / "topologies" / "edge_gateway.json"


def main() -> None:
    topology = load_topology(SPEC)
    duration_s = 1.0
    topology.run(duration_s)

    rows = []
    for chain in topology.manager.chains.values():
        rows.append([
            chain.name,
            round(chain.completed / duration_s / 1e6, 3),
            round(chain.entry_discards / duration_s / 1e6, 3),
            round(chain.latency_hist.median() / 1e3, 1),
        ])
    print(render_table(
        ["chain", "tput Mpps", "entry-drop Mpps", "p50 latency us"],
        rows, title=f"topology {SPEC.name} after {duration_s:g} s",
    ))
    rows = [[f.flow_id, f.stats.offered, f.stats.delivered, f.stats.lost]
            for f in topology.flows.values()]
    print(render_table(["flow", "offered", "delivered", "lost"], rows,
                       title="per-flow accounting"))


if __name__ == "__main__":
    main()
