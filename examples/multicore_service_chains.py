#!/usr/bin/env python3
"""Two service chains sharing NF instances across four cores (Figure 8).

chain-1: NF1(270) → NF2(120) → NF4(300)     - light, no bottleneck
chain-2: NF1(270) → NF3(4500) → NF4(300)    - bottlenecked at NF3

NF1 and NF4 are *shared instances*.  Without NFVnice, NF1 burns its core
processing chain-2 packets that NF3 will drop, and chain-1 starves.  With
selective backpressure, chain-2 is shed at the system entry, chain-1
reclaims NF1's cycles, and chain-2 still runs at NF3's full rate.

Run:  python examples/multicore_service_chains.py
"""

from repro.experiments.common import Scenario
from repro.metrics.report import render_table

TOPOLOGY = {"nf1": 270, "nf2": 120, "nf3": 4500, "nf4": 300}


def run(features: str, duration_s: float = 1.0):
    scenario = Scenario(scheduler="NORMAL", features=features,
                        num_rx_threads=2)
    for core_id, (name, cycles) in enumerate(TOPOLOGY.items()):
        scenario.add_nf(name, cycles, core=core_id)
    scenario.add_chain("chain-1", ["nf1", "nf2", "nf4"])
    scenario.add_chain("chain-2", ["nf1", "nf3", "nf4"])
    scenario.add_flow("flow-1", "chain-1", line_rate_fraction=0.5)
    scenario.add_flow("flow-2", "chain-2", line_rate_fraction=0.5)
    return scenario.run(duration_s)


def main() -> None:
    results = {f: run(f) for f in ("Default", "NFVnice")}
    rows = []
    for chain in ("chain-1", "chain-2"):
        row = [chain]
        for features in ("Default", "NFVnice"):
            row.append(round(results[features].chain(chain).throughput_pps
                             / 1e6, 3))
        rows.append(row)
    print(render_table(["chain", "Default Mpps", "NFVnice Mpps"], rows,
                       title="Shared-NF chains on 4 cores"))

    rows = []
    for name in TOPOLOGY:
        row = [name]
        for features in ("Default", "NFVnice"):
            res = results[features]
            util = res.core_utilization[res.nf(name).core_id]
            row.append(f"{100 * util:.0f}%")
        rows.append(row)
    print(render_table(["NF (own core)", "Default CPU", "NFVnice CPU"], rows,
                       title="Per-core utilisation"))
    print("\nBackpressure sheds chain-2's excess at entry: chain-1 speeds up,"
          "\nchain-2 holds its bottleneck rate, and shared NF1 stops wasting"
          "\ncycles on doomed packets.")


if __name__ == "__main__":
    main()
