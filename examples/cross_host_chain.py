#!/usr/bin/env python3
"""A service chain spread over two hosts, with cross-host ECN (§3.3).

Host A runs a forwarder; a 10 µs / 10 GbE wire carries the flow to host
B, whose heavyweight NF is the end-to-end bottleneck.  Host A's
backpressure cannot see host B's queues — ECN marks applied by host B's
manager travel back to the TCP sender, which is the paper's answer for
"chains spread across several hosts".

Run:  python examples/cross_host_chain.py
"""

import dataclasses

from repro import (
    MSEC,
    SEC,
    USEC,
    EventLoop,
    Flow,
    HostLink,
    NFManager,
    TrafficGenerator,
    default_platform_config,
    make_nf,
    render_table,
)
from repro.traffic.flows import FlowSpec
from repro.traffic.tcp import TCPFlow


def run(ecn: bool, duration_s: float = 3.0):
    loop = EventLoop()
    config = dataclasses.replace(default_platform_config(), enable_ecn=ecn)

    host_a = NFManager(loop, scheduler="NORMAL", config=config)
    host_b = NFManager(loop, scheduler="NORMAL", config=config)
    host_a.add_nf(make_nf("fwd", 300, config=config))
    host_b.add_nf(make_nf("heavy", 8000, config=config))
    leg_a = host_a.add_chain("leg-a", [host_a.nf_by_name("fwd")])
    leg_b = host_b.add_chain("leg-b", [host_b.nf_by_name("heavy")])

    flow_a = Flow("tcp", pkt_size=1500, protocol="tcp")
    host_a.install_flow(flow_a, leg_a)
    link = HostLink(loop, host_a, host_b, latency_ns=10 * USEC)
    host_b.install_flow(link.connect_flow(flow_a), leg_b)

    generator = TrafficGenerator(loop, host_a.nic)
    spec = generator.add(FlowSpec(flow_a, rate_pps=1.0))
    tcp = TCPFlow(loop, spec, rtt_ns=1 * MSEC, max_cwnd=2000.0)

    host_a.start()
    host_b.start()
    generator.start()
    tcp.start()
    loop.run_until(int(duration_s * SEC))
    return {
        "goodput_gbps": leg_b.completed * 1500 * 8 / duration_s / 1e9,
        "lost": flow_a.stats.lost,
        "marks": flow_a.stats.ecn_marks,
        "wire_pkts": link.carried_packets,
        "e2e_p50_us": leg_b.latency_hist.median() / 1e3,
    }


def main() -> None:
    rows = []
    for ecn in (False, True):
        stats = run(ecn)
        rows.append([
            "ECN" if ecn else "drops-only",
            round(stats["goodput_gbps"], 3),
            stats["lost"],
            stats["marks"],
            round(stats["e2e_p50_us"], 1),
        ])
    print(render_table(
        ["signal", "goodput Gbps", "lost pkts", "CE marks", "e2e p50 us"],
        rows, title="TCP through a two-host chain",
    ))
    print("\nECN turns host B's congestion into sender backoff before host")
    print("B's rings overflow - losses vanish across the machine boundary.")


if __name__ == "__main__":
    main()
