#!/usr/bin/env python3
"""Quickstart: a 3-NF service chain on one shared core, Default vs NFVnice.

Builds the paper's §4.2.1 scenario — Low (120 cyc) → Medium (270 cyc) →
High (550 cyc) NFs sharing a CPU core, 64-byte packets at 10 GbE line
rate — and shows what NFVnice's cgroup weights plus backpressure buy:
higher chain throughput and near-zero wasted work.

Run:  python examples/quickstart.py
"""

from repro import (
    SEC,
    EventLoop,
    Flow,
    NFManager,
    PlatformConfig,
    TrafficGenerator,
    default_platform_config,
    make_nf,
    render_table,
)


def run_chain(nfvnice: bool, duration_s: float = 1.0):
    """One simulated second of the Figure 7 chain."""
    loop = EventLoop()
    config = PlatformConfig() if nfvnice else default_platform_config()

    manager = NFManager(loop, scheduler="BATCH", config=config)
    nfs = [
        manager.add_nf(make_nf(f"nf{i}", cycles, config=config), core_id=0)
        for i, cycles in enumerate((120, 270, 550), start=1)
    ]
    chain = manager.add_chain("chain", nfs)

    flow = Flow("flow-0", pkt_size=64)
    manager.install_flow(flow, chain)

    generator = TrafficGenerator(loop, manager.nic)
    generator.add_line_rate_flows([flow])

    manager.start()
    generator.start()
    loop.run_until(int(duration_s * SEC))
    manager.finalize()
    return manager, chain, duration_s


def main() -> None:
    rows = []
    for nfvnice in (False, True):
        manager, chain, duration = run_chain(nfvnice)
        label = "NFVnice" if nfvnice else "Default"
        rows.append([
            label,
            chain.completed / duration / 1e6,                  # Mpps out
            manager.total_wasted_drops / duration / 1e6,       # wasted Mpps
            manager.total_entry_discards / duration / 1e6,     # shed early
        ])
    print(render_table(
        ["system", "throughput Mpps", "wasted Mpps", "early-discard Mpps"],
        rows,
        title="3-NF chain (120/270/550 cycles) on one core, BATCH scheduler",
    ))
    print()
    print("NFVnice converts millions of wasted packet-drops per second into")
    print("early discards that never consume NF cycles - and throughput rises.")


if __name__ == "__main__":
    main()
