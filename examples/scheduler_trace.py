#!/usr/bin/env python3
"""Tracing scheduler decisions: an ASCII `perf sched`-style timeline.

Attaches a :class:`~repro.sched.tracing.SchedTracer` to the worker core
of the Figure 7 chain and renders who held the CPU millisecond by
millisecond, Default vs NFVnice.  The Default CFS timeline shows the
equal-time split the paper criticises; the NFVnice timeline shows the
cost-proportional split (NF3, the 550-cycle NF, visibly owns most of the
core) plus backpressure gaps.

Run:  python examples/scheduler_trace.py
"""

from repro import SEC, MSEC
from repro.experiments.common import Scenario, build_linear_chain
from repro.sched.tracing import SchedTracer


def run(features: str, duration_s: float = 0.2):
    scenario = Scenario(scheduler="BATCH", features=features)
    build_linear_chain(scenario, (120, 270, 550), core=0)
    scenario.add_flow("f", "chain", line_rate_fraction=1.0)
    tracer = SchedTracer()
    scenario.manager.core(0).tracer = tracer
    result = scenario.run(duration_s)
    return tracer, result


def main() -> None:
    window = (int(0.10 * SEC), int(0.15 * SEC))  # a steady-state 50 ms
    for features in ("Default", "NFVnice"):
        tracer, result = run(features)
        print(f"\n=== {features}: CPU timeline, t = 100..150 ms "
              f"(1 column = 1 ms; '#' ran most of it) ===")
        print(tracer.render_timeline(*window, bucket_ns=1 * MSEC))
        runtime = tracer.runtime_by_task(core_id=0)
        total = sum(runtime.values()) or 1
        shares = ", ".join(
            f"{task} {100 * ns / total:.0f}%"
            for task, ns in sorted(runtime.items())
        )
        print(f"on-CPU shares: {shares}")
        print(f"chain throughput: "
              f"{result.total_throughput_pps / 1e6:.2f} Mpps")


if __name__ == "__main__":
    main()
