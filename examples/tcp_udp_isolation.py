#!/usr/bin/env python3
"""Performance isolation: one TCP flow vs ten non-responsive UDP flows.

Reproduces the paper's §4.3.4 experiment on a compressed timeline: the
TCP flow crosses NF1→NF2 on a shared core; the UDP flows cross the same
NFs and continue to a heavyweight NF3 that bottlenecks them.  When the
UDP flows switch on, the Default platform lets them crowd out TCP (its
throughput collapses from ~4 Gbps to tens of Mbps); NFVnice's per-flow
backpressure sheds the UDP excess at entry and TCP barely notices.

Run:  python examples/tcp_udp_isolation.py
"""

from repro import SEC, MSEC
from repro.experiments.common import Scenario
from repro.metrics.report import render_table
from repro.traffic.tcp import TCPFlow

UDP_ON_S, UDP_OFF_S, DURATION_S = 4.0, 10.0, 13.0


def run(features: str):
    scenario = Scenario(scheduler="NORMAL", features=features)
    scenario.add_nf("nf1", 120, core=0)
    scenario.add_nf("nf2", 270, core=0)
    scenario.add_nf("nf3", 4500, core=1)

    scenario.add_chain("tcp-chain", ["nf1", "nf2"])
    tcp_flow = scenario.add_flow("tcp", "tcp-chain", rate_pps=1.0,
                                 pkt_size=1500, protocol="tcp")
    tcp = TCPFlow(scenario.loop, scenario.generator.specs[-1],
                  rtt_ns=1 * MSEC, max_cwnd=340.0)
    tcp.start()

    for i in range(10):
        scenario.add_chain(f"udp{i}", ["nf1", "nf2", "nf3"])
        scenario.add_flow(f"udp{i}", f"udp{i}", rate_pps=800_000.0,
                          pkt_size=64,
                          start_ns=int(UDP_ON_S * SEC),
                          stop_ns=int(UDP_OFF_S * SEC))

    result = scenario.run(DURATION_S, extra_probes={
        "tcp_pps": ((lambda: tcp_flow.stats.delivered), True),
    })
    series = result.series["tcp_pps"]
    return [(t / SEC, pps * 1500 * 8 / 1e9) for t, pps in series]


def main() -> None:
    default = dict(run("Default"))
    nfvnice = dict(run("NFVnice"))
    rows = [
        [f"{t:.0f}",
         ("UDP ON " if UDP_ON_S < t <= UDP_OFF_S + 1 else "       "),
         round(default.get(t, 0.0), 3),
         round(nfvnice.get(t, 0.0), 3)]
        for t in sorted(default)
    ]
    print(render_table(
        ["t (s)", "phase", "Default TCP Gbps", "NFVnice TCP Gbps"],
        rows, title="TCP throughput per second around UDP interference",
    ))


if __name__ == "__main__":
    main()
