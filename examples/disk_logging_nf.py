#!/usr/bin/env python3
"""An NF that logs packets to disk: blocking writes vs libnf's async I/O.

Two flows share a forwarder → logger chain; only ``flow-logged`` is
written to disk.  With synchronous writes every logged packet stalls the
whole NF for a device round trip, head-of-line blocking the innocent
flow.  libnf's batched, double-buffered asynchronous path (§3.4) keeps
the NF processing while the device drains.

Run:  python examples/disk_logging_nf.py
"""

from repro import (
    SEC,
    AsyncIOContext,
    DiskDevice,
    EventLoop,
    Flow,
    NFManager,
    PlatformConfig,
    SyncIOContext,
    TrafficGenerator,
    default_platform_config,
    make_logger,
    make_nf,
    render_table,
)


def run(use_async: bool, pkt_size: int = 256, duration_s: float = 1.0):
    loop = EventLoop()
    config = PlatformConfig() if use_async else default_platform_config()
    manager = NFManager(loop, scheduler="BATCH", config=config)

    disk = DiskDevice(loop, bandwidth_bps=400e6 * 8)  # 400 MB/s
    if use_async:
        io = AsyncIOContext(loop, disk, buffer_requests=256)
    else:
        io = SyncIOContext(loop, disk)

    manager.add_nf(make_nf("fwd", 270, config=config), core_id=0)
    manager.add_nf(
        make_logger("logger", io, config=config,
                    io_selector=lambda f: f.flow_id == "flow-logged"),
        core_id=0,
    )
    logged_chain = manager.add_chain("logged", [manager.nf_by_name("fwd"),
                                                manager.nf_by_name("logger")])
    plain_chain = manager.add_chain("plain", [manager.nf_by_name("fwd"),
                                              manager.nf_by_name("logger")])

    generator = TrafficGenerator(loop, manager.nic)
    for name, chain in (("flow-logged", logged_chain),
                        ("flow-plain", plain_chain)):
        flow = Flow(name, pkt_size=pkt_size)
        manager.install_flow(flow, chain)
        generator.add_line_rate_flows([flow])
        generator.specs[-1].rate_pps /= 2  # split line rate between the two

    manager.start()
    generator.start()
    loop.run_until(int(duration_s * SEC))
    manager.finalize()

    return {
        "logged_gbps": logged_chain.completed_bytes * 8 / duration_s / 1e9,
        "plain_gbps": plain_chain.completed_bytes * 8 / duration_s / 1e9,
        "disk_MB": disk.bytes_written / 1e6,
        "device_ops": disk.ops,
    }


def main() -> None:
    rows = []
    for use_async in (False, True):
        stats = run(use_async)
        rows.append([
            "async (libnf)" if use_async else "sync (baseline)",
            round(stats["logged_gbps"], 3),
            round(stats["plain_gbps"], 3),
            round(stats["disk_MB"], 1),
            stats["device_ops"],
        ])
    print(render_table(
        ["I/O mode", "logged-flow Gbps", "plain-flow Gbps",
         "disk MB written", "device ops"],
        rows, title="Packet-logging NF at 256 B packets",
    ))
    print()
    print("Batched async I/O amortises device ops and stops one flow's disk")
    print("writes from head-of-line blocking the other flow.")


if __name__ == "__main__":
    main()
