"""CI smoke test for the campaign runner.

Runs a short-duration campaign twice — serial and with two workers —
and asserts the per-experiment digests are bit-identical; then writes a
baseline (``BENCH_campaign.json``) and exercises ``--check`` against it.
Exits non-zero on any digest divergence, task failure, or check failure.

Usage::

    PYTHONPATH=src python benchmarks/campaign_smoke.py [baseline_path]

Environment: ``REPRO_SMOKE_DURATION`` (simulated seconds per case,
default 0.05), ``REPRO_SMOKE_EXPERIMENTS`` (comma-separated ids, default
a mix of sweep and whole-``main`` experiments).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner.baseline import (     # noqa: E402
    check_campaign, load_baseline, write_baseline,
)
from repro.runner.campaign import run_campaign  # noqa: E402

DEFAULT_EXPERIMENTS = "fig07,fig09,fig12,tab05"


def main() -> int:
    duration = float(os.environ.get("REPRO_SMOKE_DURATION", "0.05"))
    ids = os.environ.get(
        "REPRO_SMOKE_EXPERIMENTS", DEFAULT_EXPERIMENTS).split(",")
    baseline_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_campaign.json"

    print(f"[smoke] serial campaign: {ids} at {duration}s per case")
    serial = run_campaign(ids, workers=1, duration_s=duration,
                          task_timeout_s=300.0)
    print(f"[smoke] parallel campaign (2 workers)")
    parallel = run_campaign(ids, workers=2, duration_s=duration,
                            task_timeout_s=300.0)

    failed = False
    for exp_id in ids:
        s, p = serial.experiments[exp_id], parallel.experiments[exp_id]
        if not (s.ok and p.ok):
            print(f"[smoke] FAIL {exp_id}: task failures "
                  f"{s.failures + p.failures}")
            failed = True
            continue
        if s.digest != p.digest:
            print(f"[smoke] FAIL {exp_id}: parallel digest {p.digest[:12]}… "
                  f"!= serial {s.digest[:12]}…")
            failed = True
        else:
            print(f"[smoke] ok {exp_id}: digest {s.digest[:12]}… "
                  f"({len(s.tasks)} tasks, {s.task_wall_s:.2f}s worker time)")
    if failed:
        return 1

    write_baseline(baseline_path, parallel)
    print(f"[smoke] baseline written to {baseline_path}")
    problems = check_campaign(load_baseline(baseline_path), serial,
                              max_regression=0.5)
    for problem in problems:
        print(f"[smoke] CHECK FAILED {problem}")
    if problems:
        return 1
    print("[smoke] --check workflow passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
