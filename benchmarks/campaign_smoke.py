"""CI smoke test for the campaign runner.

Runs a short-duration campaign three ways — serial, with two workers,
and serially under the *other* event-loop engine — and asserts the
per-experiment digests are bit-identical across all three; then writes a
baseline (``BENCH_campaign.json``) and exercises ``--check`` against it.
Exits non-zero on any digest divergence (parallel vs serial, or wheel vs
heap), task failure, or check failure.

Usage::

    PYTHONPATH=src python benchmarks/campaign_smoke.py [baseline_path]

Environment: ``REPRO_SMOKE_DURATION`` (simulated seconds per case,
default 0.05), ``REPRO_SMOKE_EXPERIMENTS`` (comma-separated ids, default
a mix of sweep and whole-``main`` experiments).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner.baseline import (     # noqa: E402
    check_campaign, load_baseline, write_baseline,
)
from repro.runner.campaign import run_campaign  # noqa: E402
from repro.sim.engine import ENGINE_ENV, EventLoop  # noqa: E402

DEFAULT_EXPERIMENTS = "fig07,fig09,fig12,tab05"


def main() -> int:
    duration = float(os.environ.get("REPRO_SMOKE_DURATION", "0.05"))
    ids = os.environ.get(
        "REPRO_SMOKE_EXPERIMENTS", DEFAULT_EXPERIMENTS).split(",")
    baseline_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_campaign.json"

    print(f"[smoke] serial campaign: {ids} at {duration}s per case")
    serial = run_campaign(ids, workers=1, duration_s=duration,
                          task_timeout_s=300.0)
    print(f"[smoke] parallel campaign (2 workers)")
    parallel = run_campaign(ids, workers=2, duration_s=duration,
                            task_timeout_s=300.0)
    # Cross-engine gate: the same serial campaign under the *other*
    # event-loop engine must produce the same digests — the wheel's
    # firing-order contract makes engine choice digest-invisible.
    default_engine = EventLoop().impl
    other_engine = "heap" if default_engine == "wheel" else "wheel"
    print(f"[smoke] serial campaign under engine={other_engine} "
          f"(default was {default_engine})")
    prev = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = other_engine
    try:
        cross = run_campaign(ids, workers=1, duration_s=duration,
                             task_timeout_s=300.0)
    finally:
        if prev is None:
            del os.environ[ENGINE_ENV]
        else:
            os.environ[ENGINE_ENV] = prev

    failed = False
    for exp_id in ids:
        s, p = serial.experiments[exp_id], parallel.experiments[exp_id]
        x = cross.experiments[exp_id]
        if not (s.ok and p.ok and x.ok):
            print(f"[smoke] FAIL {exp_id}: task failures "
                  f"{s.failures + p.failures + x.failures}")
            failed = True
            continue
        if s.digest != p.digest:
            print(f"[smoke] FAIL {exp_id}: parallel digest {p.digest[:12]}… "
                  f"!= serial {s.digest[:12]}…")
            failed = True
        elif s.digest != x.digest:
            print(f"[smoke] FAIL {exp_id}: engine={other_engine} digest "
                  f"{x.digest[:12]}… != engine={default_engine} "
                  f"{s.digest[:12]}… — the engines must fire "
                  f"bit-identically")
            failed = True
        else:
            print(f"[smoke] ok {exp_id}: digest {s.digest[:12]}… "
                  f"({len(s.tasks)} tasks, {s.task_wall_s:.2f}s worker "
                  f"time, engines agree)")
    if failed:
        return 1

    write_baseline(baseline_path, parallel)
    print(f"[smoke] baseline written to {baseline_path}")
    problems = check_campaign(load_baseline(baseline_path), serial,
                              max_regression=0.5)
    for problem in problems:
        print(f"[smoke] CHECK FAILED {problem}")
    if problems:
        return 1
    print("[smoke] --check workflow passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
