"""Bench: Figure 16 — chain lengths 1..10, single- and multi-core
(§4.3.7)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig16_chain_length as fig16


def test_figure16_chain_length(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: fig16.run_fig16(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(fig16.format_figure16(results))
