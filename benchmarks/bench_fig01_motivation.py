"""Bench: Figure 1a/1b + Tables 1-2 — scheduler motivation study (§2.2)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig01_motivation as fig01

_cache = {}


def _grid(duration):
    if duration not in _cache:
        _cache[duration] = fig01.run_figure1(duration_s=duration)
    return _cache[duration]


def test_figure1_throughput_and_cpu(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(lambda: _grid(duration),
                                 rounds=1, iterations=1)
    report("\n".join([
        fig01.format_throughput_table(results, "homogeneous"),
        fig01.format_throughput_table(results, "heterogeneous"),
    ]))


def test_tables1_2_context_switches(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(lambda: _grid(duration),
                                 rounds=1, iterations=1)
    report("\n".join([
        fig01.format_context_switch_table(results, "homogeneous"),
        fig01.format_context_switch_table(results, "heterogeneous"),
    ]))
