"""Bench: ECN congestion-signalling extensions (§3.3) — single host and
across a two-host chain."""

from repro.experiments import cross_host_ecn, ecn_extension


def test_ecn_extension(benchmark, report):
    results = benchmark.pedantic(
        lambda: ecn_extension.run_ecn(duration_s=5.0),
        rounds=1, iterations=1,
    )
    report(ecn_extension.format_ecn(results))


def test_cross_host_ecn(benchmark, report):
    results = benchmark.pedantic(
        lambda: cross_host_ecn.run_cross_host(duration_s=5.0),
        rounds=1, iterations=1,
    )
    report(cross_host_ecn.format_cross_host(results))
