"""Trace-overhead smoke benchmark: the telemetry layer must be ~free when off.

Runs the same Figure-7-style chain workload twice:

* **disabled** — no bus attached (the default every experiment runs with);
  each publish site pays exactly one ``is not None`` branch.
* **enabled-inert** — an :class:`~repro.obs.bus.EventBus` attached with
  ``record=False`` and no subscribers.  Such a bus is ``active=False``,
  so publish sites must skip it with one extra attribute read — this
  variant verifies the attached-but-inert path stays allocation-free.

Fails (exit 1) if enabling the bus slows the workload by more than
``THRESHOLD`` (5%) beyond the measurement noise floor, so CI catches any
change that puts real work on the disabled fast path or makes publishes
disproportionately expensive.  Wall-clock noise is tamed by taking the
best of ``ROUNDS`` alternating runs of each variant.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead_smoke.py
"""

import sys
import time

from repro.experiments.common import Scenario, build_linear_chain
from repro.obs.bus import EventBus

THRESHOLD = 0.05
ROUNDS = 3
DURATION_S = 0.05


def run_workload(attach_bus: bool) -> float:
    """One seeded chain run; returns wall seconds spent simulating."""
    scenario = Scenario(scheduler="BATCH", features="NFVnice", seed=0)
    build_linear_chain(scenario, (120, 270, 550), core=0)
    scenario.add_flow("f", "chain", line_rate_fraction=1.0)
    if attach_bus:
        bus = EventBus(scenario.loop, record=False)
        scenario.manager.attach_observability(bus=bus)
    t0 = time.perf_counter()
    scenario.run(DURATION_S)
    return time.perf_counter() - t0


def main() -> int:
    # Warm-up: import costs, allocator pools, branch caches.
    run_workload(False)
    run_workload(True)
    disabled = []
    enabled = []
    for _ in range(ROUNDS):
        disabled.append(run_workload(False))
        enabled.append(run_workload(True))
    best_off, best_on = min(disabled), min(enabled)
    overhead = (best_on - best_off) / best_off
    print(f"observability disabled: best of {ROUNDS}  {best_off * 1e3:8.1f} ms")
    print(f"observability enabled:  best of {ROUNDS}  {best_on * 1e3:8.1f} ms")
    print(f"enable overhead: {overhead * 100:+.1f}% (threshold "
          f"{THRESHOLD * 100:.0f}%)")
    if overhead > THRESHOLD:
        print("FAIL: enabling the event bus exceeds the overhead budget",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
