"""Trace-overhead smoke benchmark: the telemetry layer must stay cheap.

Runs the same Figure-7-style chain workload in three variants:

* **disabled** — no bus attached (the default every experiment runs with);
  each publish site pays exactly one ``is not None`` branch.
* **enabled-inert** — an :class:`~repro.obs.bus.EventBus` attached with
  ``record=False`` and no subscribers.  Such a bus is ``active=False``,
  so publish sites must skip it with one extra attribute read — this
  variant verifies the attached-but-inert path stays allocation-free.
* **telemetry** — a :class:`~repro.obs.latency.FlowLatencyTracker` and
  :class:`~repro.obs.causality.CausalityTracer` attached: every delivered
  segment lands in latency histograms and every backpressure transition
  is traced.  This is the ``Scenario(telemetry=True)`` path fig07/fig09
  run on.

Fails (exit 1) if

* the inert bus costs more than ``BUS_THRESHOLD`` (5%) over disabled,
* full SLO telemetry costs more than ``TELEMETRY_THRESHOLD`` (10%) over
  disabled, or
* the result digest is not bit-identical with telemetry on and off —
  telemetry is observational by contract and must never perturb the
  simulation (the campaign runner's digests depend on it).

Noise handling: timing uses ``time.process_time()`` — CPU time of this
process only, immune to the machine-load drift that makes wall-clock
ratios swing tens of percent on a shared box.  On top of that, each
round runs the variants back to back and the gate takes the **minimum
per-round ratio** over ``ROUNDS`` rounds: adjacent runs see the same
cache/frequency state, and residual interference can only inflate a
round's ratio, so the minimum is the tightest observed bound on the
true overhead.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead_smoke.py
"""

import sys
import time

from repro.experiments.common import Scenario, build_linear_chain
from repro.obs.bus import EventBus

BUS_THRESHOLD = 0.05
TELEMETRY_THRESHOLD = 0.10
ROUNDS = 5
DURATION_S = 0.05


def run_workload(variant: str):
    """One seeded chain run; returns (wall seconds, ScenarioResult)."""
    scenario = Scenario(scheduler="BATCH", features="NFVnice", seed=0,
                        telemetry=(variant == "telemetry"))
    build_linear_chain(scenario, (120, 270, 550), core=0)
    scenario.add_flow("f", "chain", line_rate_fraction=1.0)
    if variant == "bus":
        bus = EventBus(scenario.loop, record=False)
        scenario.manager.attach_observability(bus=bus)
    t0 = time.process_time()
    result = scenario.run(DURATION_S)
    return time.process_time() - t0, result


def main() -> int:
    from repro.analysis.export import result_to_dict
    from repro.runner.digest import digest_of

    # Warm-up: import costs, allocator pools, branch caches.
    for variant in ("off", "bus", "telemetry"):
        run_workload(variant)
    best = {}
    ratios = {"bus": [], "telemetry": []}
    digests = {}
    for _ in range(ROUNDS):
        walls = {}
        for variant in ("off", "bus", "telemetry"):
            wall, result = run_workload(variant)
            walls[variant] = wall
            best[variant] = min(best.get(variant, wall), wall)
            digests[variant] = digest_of(result_to_dict(result))
        for variant in ("bus", "telemetry"):
            ratios[variant].append(walls[variant] / walls["off"])
    rc = 0
    bus_overhead = min(ratios["bus"]) - 1.0
    tel_overhead = min(ratios["telemetry"]) - 1.0
    print(f"observability disabled: best of {ROUNDS}  "
          f"{best['off'] * 1e3:8.1f} ms")
    print(f"inert bus attached:     best of {ROUNDS}  "
          f"{best['bus'] * 1e3:8.1f} ms  ({bus_overhead * 100:+.1f}%, "
          f"threshold {BUS_THRESHOLD * 100:.0f}%)")
    print(f"full SLO telemetry:     best of {ROUNDS}  "
          f"{best['telemetry'] * 1e3:8.1f} ms  ({tel_overhead * 100:+.1f}%, "
          f"threshold {TELEMETRY_THRESHOLD * 100:.0f}%)")
    if bus_overhead > BUS_THRESHOLD:
        print("FAIL: enabling the event bus exceeds the overhead budget",
              file=sys.stderr)
        rc = 1
    if tel_overhead > TELEMETRY_THRESHOLD:
        print("FAIL: SLO telemetry exceeds the overhead budget",
              file=sys.stderr)
        rc = 1
    if digests["telemetry"] != digests["off"]:
        print("FAIL: telemetry perturbed the result digest "
              f"({digests['telemetry']} != {digests['off']})",
              file=sys.stderr)
        rc = 1
    else:
        print(f"digest identical with telemetry on/off: {digests['off']}")
    if rc == 0:
        print("OK")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
