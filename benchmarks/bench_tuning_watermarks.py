"""Bench: §4.3.8 — HIGH watermark and margin tuning sweeps."""

from benchmarks.conftest import bench_duration
from repro.experiments import tuning_watermarks as tuning


def test_watermark_tuning(benchmark, report):
    duration = bench_duration()

    def run():
        return (tuning.run_high_sweep(duration_s=duration),
                tuning.run_margin_sweep(duration_s=duration))

    high, margin = benchmark.pedantic(run, rounds=1, iterations=1)
    report(tuning.format_sweeps(high, margin))
