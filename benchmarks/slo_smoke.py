"""CI smoke test for the SLO scheduler family and tail-latency battery.

Runs the ``slo_battery`` campaign (bursty/flash/mixed workloads x
NORMAL/EDF/DEADLINE schedulers) short-horizon with two workers and
checks two things against the committed ``benchmarks/BENCH_slo.json``:

* the per-experiment **digest** — the battery is deterministic, so any
  drift means scheduling, arrival-model, or governor behaviour changed
  and the baseline must be consciously regenerated;
* the per-cell **p99 sojourn grid** (digest-invisible telemetry, so the
  digest alone would not catch it): each recorded gold/bulk p99 may not
  regress by more than 10% relative *and* at least 1 µs absolute — the
  same tolerance semantics as ``repro obs diff``.

The EDF-vs-CFS crossover is asserted structurally: EDF must beat NORMAL
on gold-class p99 in at least one workload (the battery's reason to
exist), so a change that silently erases the win fails CI even inside
the drift tolerance::

    PYTHONPATH=src python benchmarks/slo_smoke.py            # check
    PYTHONPATH=src python benchmarks/slo_smoke.py --write    # regen

The committed baseline stores ``task_wall_s`` as 0 on purpose: the
digest check is machine-independent, wall-clock is not, and
``check_campaign`` skips the wall comparison for zero baselines.

Environment: ``REPRO_SLO_DURATION`` overrides the simulated seconds per
case (default 0.1 — must match the committed baseline when checking).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.slo_battery import (   # noqa: E402
    SCHEDULERS, WORKLOADS, _flow_id,
)
from repro.obs.latency import percentile_row  # noqa: E402
from repro.runner.baseline import (           # noqa: E402
    SCHEMA_VERSION, check_campaign, load_baseline,
)
from repro.runner.campaign import run_campaign  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_slo.json")
DEFAULT_DURATION = 0.1

#: ``repro obs diff`` semantics: a regression needs BOTH a >10% relative
#: increase AND at least 1 µs absolute movement (sub-µs jitter floor).
REL_TOLERANCE = 0.10
ABS_FLOOR_US = 1.0


def p99_grid(report) -> dict:
    """``{"<class>.<workload>.<sched>": p99_us}`` from merged telemetry."""
    flows = (report.telemetry.get("flow_latency") or {}).get("flows", {})
    grid = {}
    for workload in WORKLOADS:
        for scheduler in SCHEDULERS:
            for cls in ("gold", "bulk"):
                flow_id = _flow_id(cls, workload, scheduler)
                hist = flows.get(flow_id)
                if hist is not None:
                    grid[flow_id] = round(percentile_row(hist)["p99_us"], 3)
    return grid


def crossover_wins(grid: dict) -> list:
    """Workloads where EDF beats NORMAL on gold-class p99."""
    wins = []
    for workload in WORKLOADS:
        edf = grid.get(_flow_id("gold", workload, "EDF"))
        normal = grid.get(_flow_id("gold", workload, "NORMAL"))
        if edf is not None and normal is not None and edf < normal:
            wins.append(workload)
    return wins


def check_p99(baseline_grid: dict, grid: dict) -> list:
    problems = []
    for flow_id, base in sorted(baseline_grid.items()):
        cur = grid.get(flow_id)
        if cur is None:
            problems.append(f"{flow_id}: p99 cell missing from run")
            continue
        delta = cur - base
        rel = delta / base if base > 0 else float("inf")
        if rel > REL_TOLERANCE and delta >= ABS_FLOOR_US:
            problems.append(
                f"{flow_id}: p99 {cur:.3f}us vs baseline {base:.3f}us "
                f"(+{rel:.1%}, +{delta:.3f}us)")
    return problems


def main() -> int:
    write = "--write" in sys.argv[1:]
    duration = float(os.environ.get("REPRO_SLO_DURATION",
                                    str(DEFAULT_DURATION)))

    print(f"[slo-smoke] slo_battery campaign at {duration}s per case")
    campaign = run_campaign(["slo_battery"], workers=2,
                            duration_s=duration, task_timeout_s=300.0)
    report = campaign.experiments["slo_battery"]
    if not report.ok:
        for failure in report.failures:
            print(f"[slo-smoke] FAIL {failure}")
        return 1
    grid = p99_grid(report)
    print(f"[slo-smoke] {len(report.tasks)} cases ok, "
          f"digest {report.digest[:12]}…, {len(grid)} p99 cells")

    wins = crossover_wins(grid)
    if not wins:
        print("[slo-smoke] CROSSOVER LOST: EDF does not beat NORMAL on "
              "gold p99 in any workload")
        return 1
    print(f"[slo-smoke] EDF beats NORMAL on gold p99 in: {', '.join(wins)}")

    if write:
        data = {
            "version": SCHEMA_VERSION,
            "experiments": {
                "slo_battery": {
                    "digest": report.digest,
                    # Zeroed on purpose: digests travel between machines,
                    # wall clocks do not (check_campaign skips wall
                    # comparison when the baseline records 0).
                    "task_wall_s": 0.0,
                    "sim_seconds": report.sim_seconds,
                    "sim_time_throughput": None,
                    "tasks": len(report.tasks),
                },
            },
            # Digest-invisible telemetry pinned separately (extra keys
            # are ignored by load_baseline's schema check).
            "slo_p99_us": grid,
        }
        with open(BASELINE, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[slo-smoke] baseline written to {BASELINE}")
        return 0

    try:
        baseline = load_baseline(BASELINE)
    except (OSError, ValueError) as exc:
        print(f"[slo-smoke] cannot load baseline: {exc}")
        return 1
    problems = check_campaign(baseline, campaign)
    problems += check_p99(baseline.get("slo_p99_us", {}), grid)
    for problem in problems:
        print(f"[slo-smoke] CHECK FAILED {problem}")
    if problems:
        print("[slo-smoke] regenerate with --write if the change is "
              "intentional")
        return 1
    print(f"[slo-smoke] check passed against {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
