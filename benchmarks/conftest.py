"""Benchmark-suite plumbing.

Each bench regenerates one paper artifact (table or figure), reports its
wall time through pytest-benchmark, and hands the reproduced rows to the
``report`` fixture — which saves them under ``benchmarks/results/`` and
re-prints everything in the terminal summary so the artifact output
survives pytest's stdout capture.

``REPRO_BENCH_DURATION`` (seconds of simulated time per run, default 1.0)
trades fidelity against wall time.
"""

from __future__ import annotations

import os
import pathlib
from typing import List, Tuple

import pytest

_TABLES: List[Tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_duration(default: float = 1.0) -> float:
    return float(os.environ.get("REPRO_BENCH_DURATION", default))


@pytest.fixture
def report(request):
    """Record a reproduced artifact table for the terminal summary."""

    def _report(text: str) -> None:
        name = request.node.name
        _TABLES.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _report


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "=========== reproduced paper artifacts (also saved under "
        "benchmarks/results/) ===========")
    for _name, table in _TABLES:
        for line in table.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
