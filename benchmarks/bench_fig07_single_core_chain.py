"""Bench: Figure 7 + Tables 3-4 — 3-NF chain on one shared core (§4.2.1)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig07_single_core_chain as fig07

_cache = {}


def _grid(duration):
    if duration not in _cache:
        _cache[duration] = fig07.run_grid(duration_s=duration)
    return _cache[duration]


def test_figure7_throughput(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(lambda: _grid(duration),
                                 rounds=1, iterations=1)
    report(fig07.format_figure7(results))


def test_table3_drop_rate(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(lambda: _grid(duration),
                                 rounds=1, iterations=1)
    report(fig07.format_table3(results))


def test_table4_sched_latency_runtime(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(lambda: _grid(duration),
                                 rounds=1, iterations=1)
    report(fig07.format_table4(results))
