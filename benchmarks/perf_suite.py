"""CI-gated performance benchmark suite (schema v2: per-engine).

Runs a pinned set of experiments (the fig07, fig09 and fig16 short
grids, one SLO-battery cell and one 4-host cluster-scaling cell) under
**both** event-loop engines (``heap`` and ``wheel``) and records, per
experiment and per engine:

* wall-clock seconds for the whole case grid,
* simulation events processed and events/second (from the event loop's
  hygiene counters),
* peak pending events and wheel cascade count across the grid,
* the combined result digest over every case (bit-stability check: a
  faster simulator must compute the *same* results).

The digest is stored once per experiment because the engines are
required to agree — a divergence is a correctness bug, and the suite
fails immediately (with or without ``--check``) when the wheel and the
heap disagree on any case.

Results are written to ``benchmarks/BENCH_perf.json``.  With ``--check``
the run is compared against the committed baseline instead: digests must
match exactly, and per-engine wall-clock may not regress more than
``--tolerance`` (default 25%) after scaling by that engine's calibration
score — a fixed pure-Python microbenchmark that normalises for machine
speed, so a slow CI runner does not read as a regression and a fast one
does not mask it.

Usage::

    PYTHONPATH=src python benchmarks/perf_suite.py            # write baseline
    PYTHONPATH=src python benchmarks/perf_suite.py --check    # CI gate
    PYTHONPATH=src python benchmarks/perf_suite.py --ref OLD.json
                                                   # record speedup vs OLD

Environment: ``REPRO_PERF_DURATION`` overrides the simulated seconds per
case (default 0.1); ``REPRO_PERF_PASSES`` the timing passes per grid
(default 2 — the best pass is recorded, since the runs are
deterministic and min is the least-noise estimator); ``REPRO_PERF_GRIDS``
a comma-separated subset of experiment ids to run (smoke jobs).
"""

from __future__ import annotations

import argparse
import gc
import importlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.export import result_to_dict   # noqa: E402
from repro.runner.digest import digest_of          # noqa: E402
from repro.sim.engine import ENGINE_ENV            # noqa: E402

#: The pinned grids: experiment id -> module path.  Short durations keep
#: the whole suite under a few minutes while still exercising every
#: scheduler and feature combination the canonical figures sweep, plus
#: the SLO-governor and multi-host cluster subsystems.
GRIDS = {
    "fig07": "repro.experiments.fig07_single_core_chain",
    "fig09": "repro.experiments.fig09_shared_chains",
    "fig16": "repro.experiments.fig16_chain_length",
    "slo_battery": "repro.experiments.slo_battery",
    "cluster_scaling": "repro.experiments.cluster_scaling",
}

#: Both engines always run: the suite is the cross-engine equivalence
#: gate as much as it is the speed gate.
ENGINES = ("heap", "wheel")

DEFAULT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_perf.json")


class DigestDivergence(RuntimeError):
    """The two engines produced different results for the same cases."""


def calibrate(engine: str, n: int = 200_000) -> float:
    """Machine-speed score: events/second through a bare EventLoop.

    A fixed-size periodic-tick workload through the real event loop —
    the same interpreter-bound work the simulator spends its time on, so
    the score moves with the machine the way the experiments do.  Scored
    per engine: the wheel's dispatch constant is its own baseline.
    """
    from repro.sim.engine import EventLoop

    loop = EventLoop(impl=engine)
    loop.call_every(10, lambda: None)
    t0 = time.perf_counter()
    loop.run_until(n * 10)
    elapsed = time.perf_counter() - t0
    return loop.pops / elapsed


def run_grid(exp_id: str, engine: str, duration_s: float,
             passes: int) -> dict:
    """Run one experiment's campaign grid serially under ``engine``.

    The grid is executed ``passes`` times and the *minimum* wall-clock is
    recorded — the runs are deterministic, so min is the least-noise
    estimate of the machine's true speed.  Timing covers only the case
    executions; digesting the results happens outside the clock.
    """
    mod = importlib.import_module(GRIDS[exp_id])
    cases = mod.campaign_cases(duration_s=duration_s)
    fns = [(case, getattr(mod, case.fn)) for case in cases]
    prev = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = engine
    try:
        walls = []
        results = None
        for _ in range(passes):
            gc.collect()
            t0 = time.perf_counter()
            batch = [fn(**case.kwargs) for case, fn in fns]
            walls.append(time.perf_counter() - t0)
            results = batch
    finally:
        if prev is None:
            del os.environ[ENGINE_ENV]
        else:
            os.environ[ENGINE_ENV] = prev
    digests = {case.label: digest_of(result_to_dict(res))
               for (case, _), res in zip(fns, results)}
    events = 0
    peak_pending = 0
    cascades = 0
    for res in results:
        stats = getattr(res, "loop_stats", None) or {}
        if stats.get("impl", engine) != engine:
            raise RuntimeError(
                f"{exp_id}: requested engine {engine!r} but loop_stats "
                f"reports {stats.get('impl')!r}")
        events += stats.get("pops", 0)
        peak_pending = max(peak_pending, stats.get("peak_pending", 0))
        cascades += stats.get("cascades", 0)
    wall = min(walls)
    return {
        "cases": len(cases),
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "peak_pending": peak_pending,
        "cascades": cascades,
        "digest": digest_of(digests),
        "case_digests": digests,
    }


def run_experiment(exp_id: str, duration_s: float, passes: int) -> dict:
    """Run one grid under both engines; enforce digest identity."""
    engines = {}
    for engine in ENGINES:
        engines[engine] = run_grid(exp_id, engine, duration_s, passes)
    ref = engines[ENGINES[0]]
    for engine in ENGINES[1:]:
        cur = engines[engine]
        if cur["case_digests"] != ref["case_digests"]:
            drifted = sorted(
                label for label in ref["case_digests"]
                if cur["case_digests"].get(label)
                != ref["case_digests"][label])
            raise DigestDivergence(
                f"{exp_id}: engines {ENGINES[0]!r} and {engine!r} "
                f"disagree on case(s) {', '.join(drifted) or '<set>'} — "
                f"the wheel must fire bit-identically to the heap")
    record = {
        "duration_s": duration_s,
        "cases": ref["cases"],
        "digest": ref["digest"],
        "engines": {},
    }
    for engine, rec in engines.items():
        record["engines"][engine] = {
            k: rec[k] for k in
            ("wall_s", "events", "events_per_sec", "peak_pending",
             "cascades")
        }
    return record


def _selected_grids() -> list:
    raw = os.environ.get("REPRO_PERF_GRIDS", "").strip()
    if not raw:
        return list(GRIDS)
    selected = [g.strip() for g in raw.split(",") if g.strip()]
    unknown = [g for g in selected if g not in GRIDS]
    if unknown:
        raise SystemExit(f"REPRO_PERF_GRIDS: unknown grid id(s) "
                         f"{', '.join(unknown)}; known: {', '.join(GRIDS)}")
    return selected


def run_suite(duration_s: float, passes: int) -> dict:
    calibration = {}
    for engine in ENGINES:
        calibration[engine] = round(calibrate(engine))
        print(f"[perf] calibration[{engine}]: "
              f"{calibration[engine]:,} loop events/s")
    experiments = {}
    for exp_id in _selected_grids():
        rec = run_experiment(exp_id, duration_s, passes)
        experiments[exp_id] = rec
        for engine, eng in rec["engines"].items():
            print(f"[perf] {exp_id}/{engine}: {rec['cases']} cases in "
                  f"{eng['wall_s']:.2f}s — "
                  f"{eng['events_per_sec']:,} events/s, "
                  f"peak pending {eng['peak_pending']}, "
                  f"cascades {eng['cascades']}")
        print(f"[perf] {exp_id}: digest {rec['digest'][:12]}… "
              f"(identical across {len(rec['engines'])} engines)")
    return {
        "version": 2,
        "calibration": calibration,
        "experiments": experiments,
    }


def check(current: dict, baseline: dict, tolerance: float) -> list:
    """Compare a fresh run against the committed baseline.

    Returns a list of human-readable problems (empty = pass).  Digest
    mismatches always fail; per-engine wall-clock is compared after
    scaling the baseline by that engine's calibration scores.
    """
    problems = []
    if baseline.get("version") != 2:
        return [f"baseline schema version {baseline.get('version')!r} "
                f"is not 2 — rebaseline with: "
                f"python benchmarks/perf_suite.py"]
    cal_now = current["calibration"]
    cal_base = baseline.get("calibration", {})
    subset = bool(os.environ.get("REPRO_PERF_GRIDS", "").strip())
    for exp_id, base in baseline.get("experiments", {}).items():
        cur = current["experiments"].get(exp_id)
        if cur is None:
            # A REPRO_PERF_GRIDS smoke run legitimately checks a subset.
            if not subset:
                problems.append(f"{exp_id}: missing from current run")
            continue
        if cur["digest"] != base["digest"]:
            problems.append(
                f"{exp_id}: result digest drifted "
                f"({cur['digest'][:12]}… != {base['digest'][:12]}…) — "
                f"speed must not buy behaviour change")
        for engine, eng_base in base.get("engines", {}).items():
            eng_cur = cur.get("engines", {}).get(engine)
            if eng_cur is None:
                problems.append(f"{exp_id}/{engine}: missing from "
                                f"current run")
                continue
            scale = 1.0
            if cal_now.get(engine) and cal_base.get(engine):
                scale = cal_base[engine] / cal_now[engine]
            allowed = eng_base["wall_s"] * scale * (1.0 + tolerance)
            if eng_cur["wall_s"] > allowed:
                problems.append(
                    f"{exp_id}/{engine}: wall-clock "
                    f"{eng_cur['wall_s']:.2f}s exceeds {allowed:.2f}s "
                    f"(baseline {eng_base['wall_s']:.2f}s × calibration "
                    f"{scale:.2f} × {1 + tolerance:.2f})")
    return problems


def _load_ref(current: dict, path: str) -> None:
    """Record speedups against a prior suite run (v1 or v2 schema)."""
    with open(path) as fh:
        ref = json.load(fh)
    reference = {"experiments": {}}
    for exp_id, base in ref.get("experiments", {}).items():
        cur = current["experiments"].get(exp_id)
        if cur is None:
            continue
        if cur["digest"] != base["digest"]:
            print(f"[perf] WARNING {exp_id}: digest differs from "
                  f"reference — speedup not comparable")
            continue
        if "engines" in base:  # v2 reference: engine-for-engine
            rec = {
                engine: {
                    "wall_s": eng["wall_s"],
                    "speedup": round(
                        eng["wall_s"]
                        / cur["engines"][engine]["wall_s"], 3),
                }
                for engine, eng in base["engines"].items()
                if engine in cur["engines"]
            }
        else:  # v1 reference (single heap engine): compare both
            rec = {
                engine: {
                    "wall_s": base["wall_s"],
                    "speedup": round(
                        base["wall_s"] / eng_cur["wall_s"], 3),
                }
                for engine, eng_cur in cur["engines"].items()
            }
        reference["experiments"][exp_id] = rec
        for engine, r in rec.items():
            print(f"[perf] {exp_id}/{engine}: {r['speedup']}x vs "
                  f"reference ({r['wall_s']:.2f}s -> "
                  f"{cur['engines'][engine]['wall_s']:.2f}s)")
    current["reference"] = reference


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_PATH,
                        help="baseline path (default benchmarks/"
                             "BENCH_perf.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline "
                             "instead of overwriting it")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed wall-clock regression fraction "
                             "per engine with --check (default 0.25)")
    parser.add_argument("--ref", default=None, metavar="PATH",
                        help="a prior suite run (v1 or v2, e.g. from the "
                             "pre-optimisation commit) to record "
                             "speedups against in the written baseline")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="also write this run's measurements to "
                             "PATH (useful with --check: the CI gate "
                             "and the uploaded artifact from one run)")
    args = parser.parse_args()

    duration = float(os.environ.get("REPRO_PERF_DURATION", "0.1"))
    passes = int(os.environ.get("REPRO_PERF_PASSES", "2"))
    try:
        current = run_suite(duration, passes)
    except DigestDivergence as exc:
        print(f"[perf] ENGINE DIVERGENCE {exc}")
        return 1

    if args.snapshot:
        with open(args.snapshot, "w") as fh:
            json.dump(current, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[perf] snapshot written to {args.snapshot}")

    if args.check:
        try:
            with open(args.out) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"[perf] cannot load baseline {args.out}: {exc}")
            return 2
        problems = check(current, baseline, args.tolerance)
        for problem in problems:
            print(f"[perf] CHECK FAILED {problem}")
        if problems:
            return 1
        print(f"[perf] check passed against {args.out} "
              f"(tolerance {args.tolerance:.0%}, "
              f"engines {', '.join(ENGINES)})")
        return 0

    if args.ref:
        _load_ref(current, args.ref)

    with open(args.out, "w") as fh:
        json.dump(current, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"[perf] baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
