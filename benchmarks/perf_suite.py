"""CI-gated performance benchmark suite.

Runs a pinned set of experiments (the fig07, fig09 and fig16 short
grids) serially and records, per experiment:

* wall-clock seconds for the whole case grid,
* simulation events processed and events/second (from the event loop's
  hygiene counters),
* peak event-heap size across the grid,
* the combined result digest over every case (bit-stability check: a
  faster simulator must compute the *same* results).

Results are written to ``benchmarks/BENCH_perf.json``.  With ``--check``
the run is compared against the committed baseline instead: digests must
match exactly, and wall-clock may not regress more than ``--tolerance``
(default 25%) after scaling by the calibration score — a fixed pure-\
Python microbenchmark that normalises for machine speed, so a slow CI
runner does not read as a regression and a fast one does not mask it.

Usage::

    PYTHONPATH=src python benchmarks/perf_suite.py            # write baseline
    PYTHONPATH=src python benchmarks/perf_suite.py --check    # CI gate
    PYTHONPATH=src python benchmarks/perf_suite.py --ref OLD.json
                                                   # record speedup vs OLD

Environment: ``REPRO_PERF_DURATION`` overrides the simulated seconds per
case (default 0.1); ``REPRO_PERF_PASSES`` the timing passes per grid
(default 2 — the best pass is recorded, since the runs are
deterministic and min is the least-noise estimator).
"""

from __future__ import annotations

import argparse
import gc
import importlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.export import result_to_dict   # noqa: E402
from repro.runner.digest import digest_of          # noqa: E402

#: The pinned grids: experiment id -> module path.  Short durations keep
#: the whole suite under a minute while still exercising every scheduler
#: and feature combination the canonical figures sweep.
GRIDS = {
    "fig07": "repro.experiments.fig07_single_core_chain",
    "fig09": "repro.experiments.fig09_shared_chains",
    "fig16": "repro.experiments.fig16_chain_length",
}

DEFAULT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_perf.json")


def calibrate(n: int = 200_000) -> float:
    """Machine-speed score: events/second through a bare EventLoop.

    A fixed-size periodic-tick workload through the real event loop —
    the same interpreter-bound work the simulator spends its time on, so
    the score moves with the machine the way the experiments do.
    """
    from repro.sim.engine import EventLoop

    loop = EventLoop()
    if hasattr(loop, "call_every"):
        loop.call_every(10, lambda: None)
    else:  # pre-fast-path engine (reference measurements)
        def tick():
            loop.call_at(loop.now + 10, tick)
        loop.call_at(10, tick)
    t0 = time.perf_counter()
    loop.run_until(n * 10)
    elapsed = time.perf_counter() - t0
    return getattr(loop, "pops", n) / elapsed


def run_experiment(exp_id: str, duration_s: float, passes: int) -> dict:
    """Run one experiment's campaign grid serially; return its record.

    The grid is executed ``passes`` times and the *minimum* wall-clock is
    recorded — the runs are deterministic, so min is the least-noise
    estimate of the machine's true speed.  Timing covers only the case
    executions; digesting the results happens outside the clock.
    """
    mod = importlib.import_module(GRIDS[exp_id])
    cases = mod.campaign_cases(duration_s=duration_s)
    fns = [(case, getattr(mod, case.fn)) for case in cases]
    walls = []
    results = None
    for _ in range(passes):
        gc.collect()
        t0 = time.perf_counter()
        batch = [fn(**case.kwargs) for case, fn in fns]
        walls.append(time.perf_counter() - t0)
        results = batch
    digests = {case.label: digest_of(result_to_dict(res))
               for (case, _), res in zip(fns, results)}
    events = 0
    peak_heap = 0
    for res in results:
        stats = getattr(res, "loop_stats", None) or {}
        events += stats.get("pops", 0)
        peak_heap = max(peak_heap, stats.get("peak_heap", 0))
    wall = min(walls)
    return {
        "duration_s": duration_s,
        "cases": len(cases),
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "peak_heap": peak_heap,
        "digest": digest_of(digests),
    }


def run_suite(duration_s: float, passes: int) -> dict:
    cal = calibrate()
    print(f"[perf] calibration: {cal:,.0f} loop events/s")
    experiments = {}
    for exp_id in GRIDS:
        rec = run_experiment(exp_id, duration_s, passes)
        experiments[exp_id] = rec
        print(f"[perf] {exp_id}: {rec['cases']} cases in "
              f"{rec['wall_s']:.2f}s — {rec['events_per_sec']:,} events/s, "
              f"peak heap {rec['peak_heap']}, digest "
              f"{rec['digest'][:12]}…")
    return {
        "version": 1,
        "calibration_events_per_sec": round(cal),
        "experiments": experiments,
    }


def check(current: dict, baseline: dict, tolerance: float) -> list:
    """Compare a fresh run against the committed baseline.

    Returns a list of human-readable problems (empty = pass).  Digest
    mismatches always fail; wall-clock is compared after scaling the
    baseline by the two runs' calibration scores.
    """
    problems = []
    cal_now = current["calibration_events_per_sec"]
    cal_base = baseline.get("calibration_events_per_sec") or cal_now
    scale = cal_base / cal_now if cal_now else 1.0
    for exp_id, base in baseline.get("experiments", {}).items():
        cur = current["experiments"].get(exp_id)
        if cur is None:
            problems.append(f"{exp_id}: missing from current run")
            continue
        if cur["digest"] != base["digest"]:
            problems.append(
                f"{exp_id}: result digest drifted "
                f"({cur['digest'][:12]}… != {base['digest'][:12]}…) — "
                f"speed must not buy behaviour change")
        allowed = base["wall_s"] * scale * (1.0 + tolerance)
        if cur["wall_s"] > allowed:
            problems.append(
                f"{exp_id}: wall-clock {cur['wall_s']:.2f}s exceeds "
                f"{allowed:.2f}s (baseline {base['wall_s']:.2f}s × "
                f"calibration {scale:.2f} × {1 + tolerance:.2f})")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_PATH,
                        help="baseline path (default benchmarks/"
                             "BENCH_perf.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline "
                             "instead of overwriting it")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed wall-clock regression fraction "
                             "with --check (default 0.25)")
    parser.add_argument("--ref", default=None, metavar="PATH",
                        help="a prior suite run (e.g. from the pre-"
                             "optimisation commit) to record speedups "
                             "against in the written baseline")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="also write this run's measurements to "
                             "PATH (useful with --check: the CI gate "
                             "and the uploaded artifact from one run)")
    args = parser.parse_args()

    duration = float(os.environ.get("REPRO_PERF_DURATION", "0.1"))
    passes = int(os.environ.get("REPRO_PERF_PASSES", "2"))
    current = run_suite(duration, passes)

    if args.snapshot:
        with open(args.snapshot, "w") as fh:
            json.dump(current, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[perf] snapshot written to {args.snapshot}")

    if args.check:
        try:
            with open(args.out) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"[perf] cannot load baseline {args.out}: {exc}")
            return 2
        problems = check(current, baseline, args.tolerance)
        for problem in problems:
            print(f"[perf] CHECK FAILED {problem}")
        if problems:
            return 1
        print(f"[perf] check passed against {args.out} "
              f"(tolerance {args.tolerance:.0%})")
        return 0

    if args.ref:
        with open(args.ref) as fh:
            ref = json.load(fh)
        reference = {"experiments": {}}
        for exp_id, base in ref.get("experiments", {}).items():
            cur = current["experiments"].get(exp_id)
            if cur is None:
                continue
            if cur["digest"] != base["digest"]:
                print(f"[perf] WARNING {exp_id}: digest differs from "
                      f"reference — speedup not comparable")
                continue
            reference["experiments"][exp_id] = {
                "wall_s": base["wall_s"],
                "speedup": round(base["wall_s"] / cur["wall_s"], 3),
            }
        current["reference"] = reference
        for exp_id, rec in reference["experiments"].items():
            print(f"[perf] {exp_id}: {rec['speedup']}x vs reference "
                  f"({rec['wall_s']:.2f}s -> "
                  f"{current['experiments'][exp_id]['wall_s']:.2f}s)")

    with open(args.out, "w") as fh:
        json.dump(current, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"[perf] baseline written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
