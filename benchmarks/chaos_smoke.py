"""CI smoke test for the fault-injection subsystem.

Runs a short ``chaos_recovery`` campaign (every fault kind x detection
period x recovery policy case) with two workers and checks the
per-experiment digest against the committed baseline
``benchmarks/BENCH_chaos.json`` — the chaos pipeline is deterministic,
so any digest drift means fault mechanics, detection, or recovery
behaviour changed and the baseline must be consciously regenerated::

    PYTHONPATH=src python benchmarks/chaos_smoke.py            # check
    PYTHONPATH=src python benchmarks/chaos_smoke.py --write    # regen

The committed baseline stores ``task_wall_s`` as 0 on purpose: the
digest check is machine-independent, wall-clock is not, and
``check_campaign`` skips the wall comparison for zero baselines.

Environment: ``REPRO_CHAOS_DURATION`` overrides the simulated seconds
per case (default 0.1 — must match the committed baseline when
checking).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner.baseline import (     # noqa: E402
    SCHEMA_VERSION, check_campaign, load_baseline,
)
from repro.runner.campaign import run_campaign  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_chaos.json")
DEFAULT_DURATION = 0.1


def main() -> int:
    write = "--write" in sys.argv[1:]
    duration = float(os.environ.get("REPRO_CHAOS_DURATION",
                                    str(DEFAULT_DURATION)))

    print(f"[chaos-smoke] chaos_recovery campaign at {duration}s per case")
    campaign = run_campaign(["chaos_recovery"], workers=2,
                            duration_s=duration, task_timeout_s=300.0)
    report = campaign.experiments["chaos_recovery"]
    if not report.ok:
        for failure in report.failures:
            print(f"[chaos-smoke] FAIL {failure}")
        return 1
    print(f"[chaos-smoke] {len(report.tasks)} cases ok, "
          f"digest {report.digest[:12]}…")

    if write:
        data = {
            "version": SCHEMA_VERSION,
            "experiments": {
                "chaos_recovery": {
                    "digest": report.digest,
                    # Zeroed on purpose: digests travel between machines,
                    # wall clocks do not (check_campaign skips wall
                    # comparison when the baseline records 0).
                    "task_wall_s": 0.0,
                    "sim_seconds": report.sim_seconds,
                    "sim_time_throughput": None,
                    "tasks": len(report.tasks),
                },
            },
        }
        with open(BASELINE, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[chaos-smoke] baseline written to {BASELINE}")
        return 0

    try:
        baseline = load_baseline(BASELINE)
    except (OSError, ValueError) as exc:
        print(f"[chaos-smoke] cannot load baseline: {exc}")
        return 1
    problems = check_campaign(baseline, campaign)
    for problem in problems:
        print(f"[chaos-smoke] CHECK FAILED {problem}")
    if problems:
        print("[chaos-smoke] regenerate with --write if the change is "
              "intentional")
        return 1
    print(f"[chaos-smoke] check passed against {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
