"""Microbenchmarks of the simulator's hot data structures.

Not paper artifacts — these justify the engineering choices (segment
rings, lazy event cancellation, rbtree runqueue) by measuring the
operations the simulation spends its time in.
"""

import numpy as np

from repro.nfs.cost_models import ChoiceCost
from repro.platform.packet import Flow
from repro.platform.ring import PacketRing
from repro.sched.rbtree import RBTree
from repro.sim.engine import EventLoop


def test_event_loop_schedule_run(benchmark):
    def run():
        loop = EventLoop()
        for i in range(10_000):
            loop.schedule(i + 1, _noop)
        loop.run()

    benchmark(run)


def _noop():
    return None


def test_ring_enqueue_dequeue(benchmark):
    flow = Flow("f")

    def run():
        ring = PacketRing(capacity=4096)
        for t in range(2_000):
            ring.enqueue(flow, 32, t)
            ring.dequeue(32)

    benchmark(run)


def test_rbtree_insert_pop(benchmark):
    keys = np.random.default_rng(0).random(2_000)

    def run():
        tree = RBTree()
        for k in keys:
            tree.insert(float(k), k)
        while len(tree):
            tree.pop_min()

    benchmark(run)


def test_cost_model_consume(benchmark):
    def run():
        model = ChoiceCost((120.0, 270.0, 550.0),
                           rng=np.random.default_rng(0))
        for _ in range(1_000):
            model.consume_upto(10_000.0, 32)

    benchmark(run)


def test_simulation_second_per_wall_second(benchmark):
    """The headline simulator rate: one Figure-7-style chain second."""
    from repro.experiments.common import Scenario, build_linear_chain

    def run():
        scenario = Scenario(scheduler="BATCH", features="NFVnice")
        build_linear_chain(scenario, (120, 270, 550), core=0)
        scenario.add_flow("f", "chain", line_rate_fraction=1.0)
        return scenario.run(0.25)

    benchmark.pedantic(run, rounds=1, iterations=1)
