"""Bench: Figure 10 — variable per-packet processing cost (§4.3.1)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig10_variable_cost as fig10


def test_figure10_variable_cost(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: fig10.run_grid(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(fig10.format_figure10(results))
