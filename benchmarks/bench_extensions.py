"""Bench: extensions beyond the paper's figures — NUMA placement and
priority-based differentiated service."""

from benchmarks.conftest import bench_duration
from repro.experiments import numa_placement, priority_differentiation


def test_numa_placement(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: numa_placement.run_numa(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(numa_placement.format_numa(results))


def test_priority_differentiation(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: priority_differentiation.run_priority(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(priority_differentiation.format_priority(results))


def test_cooperative_comparison(benchmark, report):
    from repro.experiments import cooperative_comparison

    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: cooperative_comparison.run_comparison(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(cooperative_comparison.format_comparison(results))
