"""Bench: Table 5 — 3-NF chain, one dedicated core per NF (§4.2.2)."""

from benchmarks.conftest import bench_duration
from repro.experiments import tab05_multicore_chain as tab05


def test_table5_multicore_chain(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: tab05.run_table5(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(tab05.format_table5(results))
