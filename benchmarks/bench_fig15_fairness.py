"""Bench: Figure 15a/b/c — dynamic CPU tuning and fairness (§4.3.6)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig15_fairness as fig15


def test_figure15a_dynamic_tuning(benchmark, report):
    results = benchmark.pedantic(
        lambda: {system: fig15.run_dynamic_tuning(system)
                 for system in ("Default", "NFVnice")},
        rounds=1, iterations=1,
    )
    report(fig15.format_figure15a(results))


def test_figure15bc_fairness_vs_diversity(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: fig15.run_diversity(duration_s=duration),
        rounds=1, iterations=1,
    )
    report("\n".join([
        fig15.format_figure15b(results),
        fig15.format_figure15c(results),
    ]))
