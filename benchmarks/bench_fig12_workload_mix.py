"""Bench: Figure 12 — workload heterogeneity, random per-flow NF order
(§4.3.3)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig12_workload_mix as fig12


def test_figure12_workload_mix(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: fig12.run_grid(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(fig12.format_figure12(results))
