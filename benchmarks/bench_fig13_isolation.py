"""Bench: Figure 13 — TCP/UDP performance isolation (§4.3.4).

Runs the compressed timeline (UDP on at 6 s, off at 16 s, 22 s total);
``REPRO_BENCH_DURATION`` is ignored here because the artifact's dynamics
need the full on/off window.
"""

from repro.analysis.sparkline import render_series
from repro.experiments import fig13_isolation as fig13


def test_figure13_isolation(benchmark, report):
    results = benchmark.pedantic(fig13.run_isolation, rounds=1, iterations=1)
    parts = [fig13.format_figure13(results), ""]
    for system, res in results.items():
        parts.append(render_series(res.tcp_gbps, f"{system} TCP Gbps/s",
                                   unit="G"))
        parts.append(render_series(res.udp_gbps, f"{system} UDP Gbps/s",
                                   unit="G"))
    report("\n".join(parts))
