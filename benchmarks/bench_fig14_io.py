"""Bench: Figure 14 — async vs sync NF disk I/O across packet sizes
(§4.3.5)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig14_io as fig14


def test_figure14_io(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: fig14.run_fig14(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(fig14.format_figure14(results))
