"""Bench: ablations of NFVnice's design choices (DESIGN.md §5)."""

from benchmarks.conftest import bench_duration
from repro.experiments import ablations


def test_ablation_selectivity(benchmark, report):
    results = benchmark.pedantic(
        lambda: {sel: ablations.run_selectivity(sel, duration_s=0.5)
                 for sel in (True, False)},
        rounds=1, iterations=1,
    )
    report(ablations.format_selectivity(results))


def test_ablation_hysteresis(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: {t: ablations.run_hysteresis(t, duration_s=duration)
                 for t in ablations.HYSTERESIS_SWEEP_NS},
        rounds=1, iterations=1,
    )
    report(ablations.format_hysteresis(results))


def test_ablation_estimator(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: {est: ablations.run_estimator(est, duration_s=duration)
                 for est in ("median", "mean")},
        rounds=1, iterations=1,
    )
    report(ablations.format_estimator(results))


def test_ablation_weight_period(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: {p: ablations.run_weight_period(p, duration_s=duration)
                 for p in ablations.WEIGHT_PERIODS_NS},
        rounds=1, iterations=1,
    )
    report(ablations.format_weight_period(results))
