"""CI smoke test for the cluster auto-scaling battery.

Runs the ``cluster_scaling`` campaign (flash/mmpp arrivals x 2/4/8-host
clusters x auto/static provisioning) short-horizon with two workers and
checks three things against the committed ``benchmarks/BENCH_cluster.json``:

* the per-experiment **digest** — the battery is deterministic and
  worker-count invariant, so any drift means steering, fabric, autoscaler
  or scheduling behaviour changed and the baseline must be consciously
  regenerated;
* the per-cell **gold p99 sojourn grid** (digest-invisible telemetry, so
  the digest alone would not catch it): each recorded p99 may not regress
  by more than 10% relative *and* at least 1 µs absolute — the same
  tolerance semantics as ``repro obs diff``;
* the battery's reason to exist, asserted **structurally** so a change
  that silently erases it fails CI even inside the drift tolerance: the
  2-host flash-crowd cell must scale out at least once, and elastic
  provisioning must beat static on gold p99 in every flash cell::

    PYTHONPATH=src python benchmarks/cluster_smoke.py            # check
    PYTHONPATH=src python benchmarks/cluster_smoke.py --write    # regen

The committed baseline stores ``task_wall_s`` as 0 on purpose: the digest
check is machine-independent, wall-clock is not, and ``check_campaign``
skips the wall comparison for zero baselines.

Environment: ``REPRO_CLUSTER_DURATION`` overrides the simulated seconds
per case (default 0.3 — must match the committed baseline when checking;
shorter horizons end before the flash crowd forces a scale-out).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.export import result_from_dict   # noqa: E402
from repro.experiments.cluster_scaling import (      # noqa: E402
    HOSTS, MODES, WORKLOADS, _tag, cluster_block, gold_p99_us,
)
from repro.runner.baseline import (                  # noqa: E402
    SCHEMA_VERSION, check_campaign, load_baseline,
)
from repro.runner.campaign import run_campaign       # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_cluster.json")
DEFAULT_DURATION = 0.3

#: ``repro obs diff`` semantics: a regression needs BOTH a >10% relative
#: increase AND at least 1 µs absolute movement (sub-µs jitter floor).
REL_TOLERANCE = 0.10
ABS_FLOOR_US = 1.0


def cell_results(report) -> dict:
    """``{(workload, hosts, mode): ScenarioResult}`` with telemetry."""
    results = {}
    for outcome in report.tasks:
        result = result_from_dict(outcome.payload["value"])
        extra = outcome.payload.get("telemetry") or {}
        result.flow_latency = extra.get("flow_latency", {})
        results[tuple(outcome.spec.key)] = result
    return results


def p99_grid(results: dict) -> dict:
    """``{"<workload>.h<hosts>.<mode>": gold p99 us}`` per cell."""
    grid = {}
    for workload in WORKLOADS:
        for hosts in HOSTS:
            for mode in MODES:
                result = results.get((workload, hosts, mode))
                if result is None:
                    continue
                p99 = gold_p99_us(result)
                if p99 is not None:
                    grid[_tag(workload, hosts, mode)] = round(p99, 3)
    return grid


def structural_problems(results: dict, grid: dict) -> list:
    problems = []
    flash_auto = results.get(("flash", 2, "auto"))
    if flash_auto is None:
        problems.append("flash.h2.auto cell missing from campaign")
    else:
        scaler = cluster_block(flash_auto).get("autoscaler", {})
        scale_outs = scaler.get("scale_outs", 0)
        if not isinstance(scale_outs, int) or scale_outs < 1:
            problems.append(
                f"flash.h2.auto scaled out {scale_outs} times; the flash "
                f"crowd must force at least one scale-out")
    for hosts in HOSTS:
        auto = grid.get(_tag("flash", hosts, "auto"))
        static = grid.get(_tag("flash", hosts, "static"))
        if auto is None or static is None:
            problems.append(f"flash h{hosts}: p99 cell missing")
        elif auto >= static:
            problems.append(
                f"CROSSOVER LOST flash h{hosts}: auto p99 {auto:.1f}us "
                f"is not below static {static:.1f}us")
    return problems


def check_p99(baseline_grid: dict, grid: dict) -> list:
    problems = []
    for cell, base in sorted(baseline_grid.items()):
        cur = grid.get(cell)
        if cur is None:
            problems.append(f"{cell}: p99 cell missing from run")
            continue
        delta = cur - base
        rel = delta / base if base > 0 else float("inf")
        if rel > REL_TOLERANCE and delta >= ABS_FLOOR_US:
            problems.append(
                f"{cell}: gold p99 {cur:.3f}us vs baseline {base:.3f}us "
                f"(+{rel:.1%}, +{delta:.3f}us)")
    return problems


def main() -> int:
    write = "--write" in sys.argv[1:]
    duration = float(os.environ.get("REPRO_CLUSTER_DURATION",
                                    str(DEFAULT_DURATION)))

    print(f"[cluster-smoke] cluster_scaling campaign at {duration}s "
          f"per case")
    campaign = run_campaign(["cluster_scaling"], workers=2,
                            duration_s=duration, task_timeout_s=300.0)
    report = campaign.experiments["cluster_scaling"]
    if not report.ok:
        for failure in report.failures:
            print(f"[cluster-smoke] FAIL {failure}")
        return 1
    results = cell_results(report)
    grid = p99_grid(results)
    print(f"[cluster-smoke] {len(report.tasks)} cases ok, "
          f"digest {report.digest[:12]}…, {len(grid)} p99 cells")

    problems = structural_problems(results, grid)
    for problem in problems:
        print(f"[cluster-smoke] STRUCTURAL {problem}")
    if problems:
        return 1
    flash = cluster_block(results[("flash", 2, "auto")])
    scaler = flash.get("autoscaler", {})
    print(f"[cluster-smoke] flash.h2.auto: {scaler.get('scale_outs', 0)} "
          f"scale-out(s), {scaler.get('replicas', 0)} replica(s), gold "
          f"p99 {grid['flash.h2.auto']:.1f}us vs static "
          f"{grid['flash.h2.static']:.1f}us")

    if write:
        data = {
            "version": SCHEMA_VERSION,
            "experiments": {
                "cluster_scaling": {
                    "digest": report.digest,
                    # Zeroed on purpose: digests travel between machines,
                    # wall clocks do not (check_campaign skips wall
                    # comparison when the baseline records 0).
                    "task_wall_s": 0.0,
                    "sim_seconds": report.sim_seconds,
                    "sim_time_throughput": None,
                    "tasks": len(report.tasks),
                },
            },
            # Digest-invisible telemetry pinned separately (extra keys
            # are ignored by load_baseline's schema check).
            "cluster_gold_p99_us": grid,
        }
        with open(BASELINE, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[cluster-smoke] baseline written to {BASELINE}")
        return 0

    try:
        baseline = load_baseline(BASELINE)
    except (OSError, ValueError) as exc:
        print(f"[cluster-smoke] cannot load baseline: {exc}")
        return 1
    problems = check_campaign(baseline, campaign)
    problems += check_p99(baseline.get("cluster_gold_p99_us", {}), grid)
    for problem in problems:
        print(f"[cluster-smoke] CHECK FAILED {problem}")
    if problems:
        print("[cluster-smoke] regenerate with --write if the change is "
              "intentional")
        return 1
    print(f"[cluster-smoke] check passed against {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
