"""Bench: Figure 9 + Table 6 — two chains sharing NF1/NF4 (§4.2.2)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig09_shared_chains as fig09


def test_figure9_table6_shared_chains(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: fig09.run_fig9(duration_s=duration),
        rounds=1, iterations=1,
    )
    report("\n".join([
        fig09.format_figure9(results),
        fig09.format_table6(results),
    ]))
