"""Bench: Figure 11 — all six orderings of the Low/Med/High chain (§4.3.2)."""

from benchmarks.conftest import bench_duration
from repro.experiments import fig11_chain_permutations as fig11


def test_figure11_chain_permutations(benchmark, report):
    duration = bench_duration()
    results = benchmark.pedantic(
        lambda: fig11.run_grid(duration_s=duration),
        rounds=1, iterations=1,
    )
    report(fig11.format_figure11(results))
