"""Tests for the unified telemetry layer (:mod:`repro.obs`).

Covers the event bus (ordering, caps, determinism), packet-lifecycle
spans (deterministic 1-in-N sampling, per-hop recording), the metrics
registry and sampler, the Chrome-trace / Prometheus exporters, and the
end-to-end wiring through :class:`~repro.obs.session.ObsSession`.
"""

import json

import pytest

from repro.experiments.common import Scenario, build_linear_chain
from repro.obs.bus import EventBus
from repro.obs.export import (
    chrome_trace_events,
    render_prometheus,
    write_chrome_trace,
)
from repro.obs.registry import MetricsRegistry, RegistrySampler
from repro.obs.session import (
    ObsSession,
    activate_session,
    current_session,
    deactivate_session,
)
from repro.obs.spans import SpanCollector, _percentile
from repro.sim.clock import MSEC
from repro.sim.engine import EventLoop


def build_scenario(**kwargs):
    scenario = Scenario(scheduler="BATCH", features="NFVnice", **kwargs)
    build_linear_chain(scenario, (120, 550), core=0)
    scenario.add_flow("f", "chain", line_rate_fraction=0.5)
    return scenario


class TestEventBus:
    def test_publish_records_in_order(self, loop):
        bus = EventBus(loop)
        bus.publish("a.one", "x", n=1)
        loop.schedule(5, lambda: bus.publish("a.two", "y"))
        loop.run_until(10)
        assert [ev.kind for ev in bus.events] == ["a.one", "a.two"]
        assert bus.events[0].time_ns == 0
        assert bus.events[1].time_ns == 5
        assert bus.events[0].args == {"n": 1}

    def test_counts_and_cap(self, loop):
        bus = EventBus(loop, max_events=3)
        for i in range(5):
            bus.publish("k", str(i))
        assert len(bus.events) == 3
        assert bus.dropped == 2
        assert bus.counts["k"] == 5  # counts keep running past the cap

    def test_record_false_keeps_counts_only(self, loop):
        bus = EventBus(loop, record=False)
        bus.publish("k", "s")
        assert not bus.events
        assert bus.counts["k"] == 1

    def test_subscribers_fire_even_past_cap(self, loop):
        bus = EventBus(loop, max_events=1)
        seen = []
        bus.subscribe(seen.append)
        bus.publish("k", "a")
        bus.publish("k", "b")
        assert [ev.source for ev in seen] == ["a", "b"]

    def test_adopt_subscribers(self, loop):
        old, new = EventBus(loop), EventBus(loop)
        seen = []
        old.subscribe(seen.append)
        new.adopt_subscribers(old)
        new.publish("k", "s")
        assert len(seen) == 1

    def test_platform_events_deterministic(self):
        """Two identical seeded runs publish identical event streams."""

        def run():
            scenario = build_scenario(seed=3)
            bus = EventBus(scenario.loop)
            scenario.manager.attach_observability(bus=bus)
            scenario.run(0.05)
            return [(ev.time_ns, ev.kind, ev.source) for ev in bus.events]

        first, second = run(), run()
        assert first == second
        kinds = {kind for _t, kind, _s in first}
        assert "sched.dispatch" in kinds
        assert "ring.enqueue" in kinds
        assert "ring.dequeue" in kinds

    def test_backpressure_events_published(self):
        scenario = build_scenario()
        bus = EventBus(scenario.loop)
        scenario.manager.attach_observability(bus=bus)
        scenario.run(0.1)
        kinds = bus.kinds()
        assert "bp.watch" in kinds
        assert "bp.throttle" in kinds
        # The bottleneck NF's throttle event names the chain it sheds at
        # entry; nf1's own throttle (entry NF) legitimately sheds none.
        evs = bus.of_kind("bp.throttle")
        assert any(ev.source == "nf2" and ev.args["chains"] == ["chain"]
                   for ev in evs)
        for ev in evs:
            assert ev.args["depth"] > 0


class TestSpans:
    def test_sampling_is_deterministic_counting(self):
        coll = SpanCollector(sample_rate=10)
        starts = []
        for i in range(50):
            span = coll.maybe_start("f", 2, origin_ns=i)
            if span is not None:
                starts.append(i)
                span.finish(i)
        # 100 packets in 2-packet segments: one span per 10 packets.
        assert coll.started == 10
        assert starts == [4, 9, 14, 19, 24, 29, 34, 39, 44, 49]

    def test_cap_drops_excess_spans(self):
        coll = SpanCollector(sample_rate=1, max_spans=2)
        spans = [coll.maybe_start("f", 1, 0) for _ in range(4)]
        for s in spans:
            if s is not None:
                s.finish(10)
        assert len(coll) == 2
        assert coll.dropped == 2
        assert "dropped at cap" in coll.render_report()

    def test_hop_stats_order_and_percentiles(self):
        coll = SpanCollector(sample_rate=1)
        for waits in ((100, 10), (300, 30)):
            span = coll.maybe_start("f", 1, 0)
            span.record_hop("rx", waits[0])
            span.record_hop("nf1", waits[1], 7.0)
            span.finish(1000)
        rows = coll.hop_stats()
        assert [r[0] for r in rows] == ["rx", "nf1"]
        rx = rows[0]
        assert rx[1] == 2
        assert rx[2] == 100  # p50 (nearest rank of [100, 300])
        assert rx[3] == 300  # p95
        assert rows[1][4] == 7.0

    def test_percentile_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert _percentile(values, 50) == 50.0
        assert _percentile(values, 95) == 95.0
        assert _percentile([], 50) == 0.0

    def test_percentile_single_sample(self):
        # Any percentile of one sample is that sample.
        for p in (0, 1, 50, 99, 100):
            assert _percentile([42.0], p) == 42.0

    def test_percentile_all_equal(self):
        values = [7.0] * 10
        for p in (1, 50, 95, 99.9):
            assert _percentile(values, p) == 7.0

    def test_percentile_extremes(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0) == 1.0    # rank clamps to 1
        assert _percentile(values, 100) == 4.0

    def test_platform_spans_record_every_hop(self):
        scenario = build_scenario()
        spans = SpanCollector(sample_rate=32)
        scenario.manager.attach_observability(spans=spans)
        scenario.run(0.05)
        assert len(spans) > 0
        hop_names = [r[0] for r in spans.hop_stats()]
        # NIC wait, then each NF and its Tx-ring wait, in chain order.
        assert hop_names == ["rx", "nf1", "nf1:tx", "nf2", "nf2:tx"]
        for span in spans.spans:
            assert span.end_ns is not None
            assert span.total_ns >= 0

    def test_platform_spans_deterministic(self):
        def run():
            scenario = build_scenario(seed=7)
            spans = SpanCollector(sample_rate=16)
            scenario.manager.attach_observability(spans=spans)
            scenario.run(0.05)
            return [
                (s.flow_id, s.origin_ns, s.end_ns,
                 [(h.name, h.wait_ns, h.service_ns) for h in s.hops])
                for s in spans.spans
            ]

        assert run() == run()


class TestRegistry:
    def test_counter_gauge_histogram_registration(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "total hits", nf="a")
        c.add(3)
        g = reg.gauge("depth", "ring depth", nf="a")
        g.set(17)
        reg.histogram("lat", "latency", nf="a")
        assert len(reg) == 3
        assert reg.scalar_value("hits", nf="a") == 3
        assert reg.scalar_value("depth", nf="a") == 17

    def test_same_name_different_labels_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("hits", nf="a").add(1)
        reg.counter("hits", nf="b").add(2)
        assert reg.scalar_value("hits", nf="a") == 1
        assert reg.scalar_value("hits", nf="b") == 2

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("hits", nf="a") is reg.counter("hits", nf="a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_gauge_callable_reads_live_state(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.gauge("live", fn=lambda: state["v"])
        assert reg.scalar_value("live") == 1
        state["v"] = 5
        assert reg.scalar_value("live") == 5

    def test_counter_callable_reads_live_state(self):
        reg = MetricsRegistry()
        state = {"n": 3}
        reg.counter("drops_total", fn=lambda: state["n"], nf="a")
        assert reg.scalar_value("drops_total", nf="a") == 3
        state["n"] = 8
        assert reg.scalar_value("drops_total", nf="a") == 8
        # Re-registration is idempotent and keeps the original callable.
        reg.counter("drops_total", nf="a")
        assert reg.scalar_value("drops_total", nf="a") == 8

    def test_sampler_snapshots_scalars(self, loop):
        reg = MetricsRegistry()
        ticks = {"n": 0}
        reg.gauge("g", fn=lambda: ticks["n"])
        sampler = RegistrySampler(loop, reg, period_ns=MSEC)
        sampler.start()
        loop.schedule(int(1.5 * MSEC), lambda: ticks.update(n=10))
        loop.run_until(3 * MSEC + 1)
        series = reg.snapshots[("g", ())]
        assert list(series.values)[:3] == [0.0, 10.0, 10.0]

    def test_sampler_label_filter(self, loop):
        reg = MetricsRegistry()
        reg.gauge("g", scenario="one").set(1)
        reg.gauge("g", scenario="two").set(2)
        sampler = RegistrySampler(loop, reg, period_ns=MSEC,
                                  label_filter={"scenario": "one"})
        sampler.start()
        loop.run_until(MSEC + 1)
        assert ("g", (("scenario", "one"),)) in reg.snapshots
        assert ("g", (("scenario", "two"),)) not in reg.snapshots


class TestExporters:
    def _traced_bus(self):
        scenario = build_scenario()
        bus = EventBus(scenario.loop)
        scenario.manager.attach_observability(bus=bus)
        scenario.run(0.05)
        return bus

    def test_chrome_trace_shape(self):
        events = chrome_trace_events(self._traced_bus(), pid=4, label="lbl")
        slices = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        meta = [e for e in events if e["ph"] == "M"]
        assert slices and counters and meta
        for e in slices:
            assert e["pid"] == 4
            assert e["dur"] >= 0
        counter_names = {e["name"] for e in counters}
        assert "ring nf1.rx" in counter_names
        process_names = [e for e in meta if e["name"] == "process_name"]
        assert process_names[0]["args"]["name"] == "lbl"

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, [("case", self._traced_bus())])
        with open(path) as fh:
            data = json.load(fh)
        assert data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"

    def test_prometheus_text_parses(self):
        reg = MetricsRegistry()
        reg.counter("repro_hits_total", "total hits", nf="a").add(5)
        reg.gauge("repro_depth", "queue depth", nf='we"ird').set(2.5)
        h = reg.histogram("repro_lat", "latency ns")
        for v in (100, 200, 300):
            h.add(v)
        text = render_prometheus(reg)
        assert "# HELP repro_hits_total total hits" in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{nf="a"} 5' in text
        assert 'nf="we\\"ird"' in text
        assert 'repro_lat{quantile="0.5"}' in text
        assert "repro_lat_count 3" in text
        # Every non-comment line is "name{labels} value" with float value.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            float(line.rsplit(" ", 1)[1])

    def test_callback_counter_renders_as_counter_with_escaping(self):
        """Fn-backed counters expose TYPE counter and escape label values
        (backslash, quote, newline) exactly like value-backed metrics."""
        reg = MetricsRegistry()
        state = {"n": 7}
        reg.counter("repro_drops_total", "ring drops",
                    fn=lambda: state["n"],
                    nf="a", reason='sea\\led "hard"\nnewline')
        text = render_prometheus(reg)
        assert "# TYPE repro_drops_total counter" in text
        assert 'reason="sea\\\\led \\"hard\\"\\nnewline"' in text
        line = [l for l in text.splitlines()
                if l.startswith("repro_drops_total")][0]
        # The raw newline was escaped, so the sample stays on one line.
        assert line.rsplit(" ", 1)[1] == "7"

    def test_ring_drop_counters_exported_per_reason(self):
        """The per-reason ring drop split reaches Prometheus as labelled
        monotonic counters (not gauges)."""
        from repro.platform.ring import DROP_REASONS

        session = ObsSession()
        activate_session(session)
        try:
            build_scenario().run(0.05)
        finally:
            deactivate_session()
        text = render_prometheus(session.registry)
        assert "# TYPE repro_nf_rx_ring_drops_total counter" in text
        assert ("# TYPE repro_nf_rx_ring_drops_by_reason_total counter"
                in text)
        for reason in DROP_REASONS:
            assert f'reason="{reason}"' in text
        # The overloaded chain must actually have counted full-ring drops.
        full_lines = [l for l in text.splitlines()
                      if l.startswith("repro_nf_rx_ring_drops_by_reason")
                      and 'reason="full"' in l]
        assert any(float(l.rsplit(" ", 1)[1]) > 0 for l in full_lines)


class TestObsSession:
    def test_session_activation_lifecycle(self):
        assert current_session() is None
        session = ObsSession()
        activate_session(session)
        try:
            assert current_session() is session
        finally:
            deactivate_session()
        assert current_session() is None

    def test_scenario_attaches_to_active_session(self, tmp_path):
        trace = tmp_path / "t.json"
        prom = tmp_path / "m.prom"
        session = ObsSession(trace_path=str(trace), metrics_path=str(prom),
                             span_sample_rate=16)
        activate_session(session)
        try:
            build_scenario().run(0.05)
        finally:
            deactivate_session()
        summary = session.finalize()
        assert trace.exists() and prom.exists()
        assert "per-hop latency breakdown" in summary
        with open(trace) as fh:
            assert json.load(fh)["traceEvents"]
        assert "repro_chain_completed_packets" in prom.read_text()

    def test_session_streams_snapshots(self, tmp_path):
        from repro.sim.clock import MSEC as _MSEC

        path = tmp_path / "snaps.jsonl"
        session = ObsSession(stream_path=str(path),
                             stream_interval_ns=10 * _MSEC)
        activate_session(session)
        try:
            build_scenario().run(0.05)
        finally:
            deactivate_session()
        summary = session.finalize()
        assert "streamed" in summary
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) >= 5  # 4 periodic at 10 ms + final
        for snap in lines:
            assert {"scenario", "t_ns", "gauges", "latency",
                    "causality"} <= set(snap)
        final = lines[-1]
        assert final["latency"]["flows"]["f"]["count"] > 0
        assert final["causality"]["culprits"]  # nf2 throttles this chain

    def test_no_session_means_no_bus(self):
        scenario = build_scenario()
        scenario.run(0.02)
        assert scenario.manager.bus is None
        for core in scenario.manager.cores.values():
            assert core.bus is None
