"""Tests for declarative topology construction (Flow Rule Installer)."""

import json

import pytest

from repro.nfs.cost_models import ChoiceCost, FixedCost
from repro.platform.orchestrator import (
    Topology,
    TopologyError,
    build_topology,
    load_topology,
)
from repro.sim.clock import SEC


def minimal_spec():
    return {
        "scheduler": "BATCH",
        "nfs": [
            {"name": "fw", "cycles": 550, "core": 0},
            {"name": "nat", "cycles": 270, "core": 0},
        ],
        "chains": [{"name": "edge", "nfs": ["fw", "nat"]}],
        "flows": [{"id": "f0", "chain": "edge", "rate_pps": 1e6}],
    }


class TestBuild:
    def test_builds_and_runs(self):
        topo = build_topology(minimal_spec())
        topo.run(0.2)
        chain = topo.manager.chains["edge"]
        assert chain.completed > 100_000
        assert topo.flows["f0"].stats.offered > 0

    def test_nf_attributes(self):
        spec = minimal_spec()
        spec["nfs"][0]["priority"] = 2.5
        topo = build_topology(spec)
        nf = topo.manager.nf_by_name("fw")
        assert nf.priority == 2.5
        # FixedCost folded with framework overhead.
        assert nf.cost_model.mean_cycles == pytest.approx(
            550 + topo.manager.config.nf_overhead_cycles)

    def test_stochastic_cost_spec(self):
        spec = minimal_spec()
        spec["nfs"][1] = {"name": "nat", "core": 0,
                          "cost": {"kind": "choice",
                                   "values": [120, 270, 550]}}
        topo = build_topology(spec)
        nf = topo.manager.nf_by_name("nat")
        assert nf.cost_model.mean_cycles == pytest.approx(
            (120 + 270 + 550) / 3 + topo.manager.config.nf_overhead_cycles)

    def test_all_cost_kinds(self):
        for cost in (
            {"kind": "normal", "mean": 500, "std": 50},
            {"kind": "uniform", "low": 100, "high": 200},
            {"kind": "exponential", "mean": 800},
        ):
            spec = minimal_spec()
            spec["nfs"][0] = {"name": "fw", "core": 0, "cost": cost}
            build_topology(spec)

    def test_line_rate_fraction_flow(self):
        spec = minimal_spec()
        spec["flows"][0] = {"id": "f0", "chain": "edge",
                            "line_rate_fraction": 0.5}
        topo = build_topology(spec)
        assert topo.generator.specs[0].rate_pps == pytest.approx(
            14.88e6 / 2, rel=0.01)

    def test_flow_window(self):
        spec = minimal_spec()
        spec["flows"][0]["start_s"] = 1.0
        spec["flows"][0]["stop_s"] = 2.0
        topo = build_topology(spec)
        fs = topo.generator.specs[0]
        assert fs.start_ns == SEC and fs.stop_ns == 2 * SEC

    def test_deterministic_given_seed(self):
        spec = minimal_spec()
        spec["nfs"][1] = {"name": "nat", "core": 0,
                          "cost": {"kind": "exponential", "mean": 300}}
        t1 = build_topology(spec, seed=3)
        t2 = build_topology(spec, seed=3)
        t1.run(0.1)
        t2.run(0.1)
        assert t1.manager.chains["edge"].completed == \
            t2.manager.chains["edge"].completed


class TestValidation:
    def test_not_a_dict(self):
        with pytest.raises(TopologyError):
            build_topology([])

    def test_no_nfs(self):
        with pytest.raises(TopologyError):
            build_topology({"nfs": []})

    def test_nf_without_name(self):
        with pytest.raises(TopologyError):
            build_topology({"nfs": [{"cycles": 100}]})

    def test_nf_without_cost(self):
        with pytest.raises(TopologyError):
            build_topology({"nfs": [{"name": "x"}]})

    def test_unknown_cost_kind(self):
        with pytest.raises(TopologyError):
            build_topology({"nfs": [{"name": "x",
                                     "cost": {"kind": "quantum"}}]})

    def test_chain_references_unknown_nf(self):
        spec = minimal_spec()
        spec["chains"][0]["nfs"] = ["fw", "ghost"]
        with pytest.raises(TopologyError):
            build_topology(spec)

    def test_flow_references_unknown_chain(self):
        spec = minimal_spec()
        spec["flows"][0]["chain"] = "ghost"
        with pytest.raises(TopologyError):
            build_topology(spec)

    def test_flow_without_rate(self):
        spec = minimal_spec()
        del spec["flows"][0]["rate_pps"]
        with pytest.raises(TopologyError):
            build_topology(spec)


def test_load_topology_json(tmp_path):
    path = tmp_path / "topo.json"
    path.write_text(json.dumps(minimal_spec()))
    topo = load_topology(path)
    assert isinstance(topo, Topology)
    assert "edge" in topo.manager.chains
