"""loop_stats semantics across engines + the digest-invisible contract.

The timer-wheel engine realises the hygiene counters differently from
the heap (``peak_pending`` counts live entries across current window,
buckets and overflow; ``cascades`` counts bucket redistributions), so
these tests pin the shared counter surface, assert the counters never
leak into a digest, and — the regression the wheel migration demands —
that sanitized runs digest identically under both engines.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import result_to_dict
from repro.check.sanitizer import (
    Sanitizer, activate_sanitizer, deactivate_sanitizer,
)
from repro.experiments.common import Scenario
from repro.runner.digest import digest_of
from repro.sim.engine import ENGINE_ENV

ENGINES = ("heap", "wheel")

#: Every engine must report exactly this counter surface.
STATS_KEYS = {"impl", "pushes", "pops", "lazy_cancel_skips",
              "compactions", "cascades", "peak_pending"}


def small_run(duration_s=0.02, scheduler="NORMAL"):
    scenario = Scenario(scheduler=scheduler, features="NFVnice", seed=3)
    scenario.add_nf("nf0", 120, core=0)
    scenario.add_nf("nf1", 270, core=0)
    scenario.add_chain("chain0", ["nf0", "nf1"])
    scenario.add_flow("flow0", "chain0", rate_pps=50_000.0)
    return scenario.run(duration_s)


@pytest.mark.parametrize("engine", ENGINES)
def test_loop_stats_surface_is_engine_tagged(engine, monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, engine)
    result = small_run()
    stats = result.loop_stats
    assert set(stats) == STATS_KEYS
    assert stats["impl"] == engine
    assert stats["pops"] > 0
    assert stats["pushes"] >= stats["pops"] - stats["lazy_cancel_skips"]
    assert stats["peak_pending"] > 0
    if engine == "heap":
        # Cascades are a wheel-only phenomenon by definition.
        assert stats["cascades"] == 0


def test_loop_stats_never_enter_the_digest(monkeypatch):
    """Same behaviour, different hygiene counters => same digest: the
    exported dict must not contain loop_stats at all."""
    exported = {}
    for engine in ENGINES:
        monkeypatch.setenv(ENGINE_ENV, engine)
        result = small_run()
        d = result_to_dict(result)
        assert "loop_stats" not in json.dumps(d)
        exported[engine] = digest_of(d)
    # The counters differ between engines (peak semantics, cascades) but
    # the digest is identical — the counters are provably invisible.
    assert exported["heap"] == exported["wheel"]


@pytest.mark.parametrize("engine", ENGINES)
def test_sanitized_run_digests_identically_per_engine(engine, monkeypatch):
    """--sanitize must not perturb results under either engine: the
    sanitizer's integer time-partition probes ride the same event
    stream, so a clean sanitized run is bit-identical to a plain one."""
    monkeypatch.setenv(ENGINE_ENV, engine)
    plain = small_run()
    activate_sanitizer(Sanitizer(per_tick=True))
    try:
        sanitized = small_run()
    finally:
        deactivate_sanitizer()
    assert sanitized.sanitizer_violations == []
    assert digest_of(result_to_dict(plain)) \
        == digest_of(result_to_dict(sanitized))


def test_sanitized_digest_identical_across_engines(monkeypatch):
    """The cross product: sanitized-wheel == sanitized-heap == plain."""
    digests = set()
    for engine in ENGINES:
        monkeypatch.setenv(ENGINE_ENV, engine)
        activate_sanitizer(Sanitizer(per_tick=True))
        try:
            result = small_run(scheduler="DEADLINE")
        finally:
            deactivate_sanitizer()
        assert result.sanitizer_violations == []
        digests.add(digest_of(result_to_dict(result)))
    assert len(digests) == 1
