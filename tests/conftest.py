"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.platform.config import PlatformConfig
from repro.sim.engine import EventLoop


@pytest.fixture(params=["heap", "wheel"])
def loop(request) -> EventLoop:
    """An EventLoop, parametrized over both engines.

    Any test taking this fixture runs once per implementation, so the
    whole suite doubles as an equivalence battery for the timer wheel.
    """
    return EventLoop(impl=request.param)


@pytest.fixture
def config() -> PlatformConfig:
    """A small, fast configuration for unit tests.

    Framework overhead is disabled so tests can reason about exact cycle
    arithmetic; rings are small so watermark behaviour is cheap to reach.
    """
    return PlatformConfig(
        ring_capacity=256,
        nf_overhead_cycles=0.0,
        rx_thread_max_pps=None,
    )


@pytest.fixture
def default_config() -> PlatformConfig:
    """Same as ``config`` but with every NFVnice feature off."""
    return PlatformConfig(
        ring_capacity=256,
        nf_overhead_cycles=0.0,
        rx_thread_max_pps=None,
        enable_backpressure=False,
        enable_cgroups=False,
        enable_relinquish=False,
        enable_ecn=False,
    )


def make_flow(flow_id="f0", chain=None, pkt_size=64, protocol="udp"):
    from repro.platform.packet import Flow

    flow = Flow(flow_id, pkt_size=pkt_size, protocol=protocol)
    flow.chain = chain
    return flow
