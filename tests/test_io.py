"""Tests for the disk model and the sync/async I/O contexts."""

import pytest

from repro.core.io import AsyncIOContext, DiskDevice, SyncIOContext
from repro.core.nf import NFProcess
from repro.nfs.cost_models import FixedCost
from repro.platform.packet import Flow
from repro.sched.base import ExecOutcome
from repro.sim.clock import MSEC, SEC, USEC


class TestDiskDevice:
    def test_transfer_time(self, loop):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=1000)
        # 1000 bytes at 1 GB/s = 1000 ns transfer + 1000 ns latency.
        assert disk.transfer_ns(1000) == pytest.approx(2000.0)

    def test_completion_event(self, loop):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=0)
        done = []
        disk.submit(1000, lambda: done.append(loop.now))
        loop.run()
        assert done == [1000]

    def test_requests_serialised(self, loop):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=0)
        done = []
        disk.submit(1000, lambda: done.append(loop.now))
        disk.submit(1000, lambda: done.append(loop.now))
        loop.run()
        assert done == [1000, 2000]

    def test_counters(self, loop):
        disk = DiskDevice(loop)
        disk.submit(100, lambda: None)
        disk.submit(200, lambda: None)
        assert disk.ops == 2
        assert disk.bytes_written == 300

    def test_invalid(self, loop):
        with pytest.raises(ValueError):
            DiskDevice(loop, bandwidth_bps=0)
        with pytest.raises(ValueError):
            DiskDevice(loop).submit(-1, lambda: None)


class TestAsyncIO:
    def test_not_blocked_until_both_buffers_full(self, loop):
        disk = DiskDevice(loop, bandwidth_bps=1.0, op_latency_ns=SEC)  # slow
        io = AsyncIOContext(loop, disk, buffer_requests=10,
                            flush_interval_ns=0)
        assert io.submit(10, 640, 0)      # fills buffer A -> flush starts
        assert io.submit(9, 576, 0)       # buffer B filling
        assert not io.blocked
        assert not io.submit(1, 64, 0)    # B full, A still in flight
        assert io.blocked

    def test_unblocks_on_flush_completion(self, loop):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=1000)
        unblocked = []
        io = AsyncIOContext(loop, disk, buffer_requests=10,
                            flush_interval_ns=0,
                            on_unblock=lambda: unblocked.append(loop.now))
        io.submit(20, 1280, 0)  # both buffers full
        assert io.blocked
        loop.run()
        assert not io.blocked
        assert unblocked  # callback fired

    def test_periodic_flush_drains_trickle(self, loop):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=0)
        io = AsyncIOContext(loop, disk, buffer_requests=1000,
                            flush_interval_ns=MSEC)
        io.submit(3, 192, 0)
        loop.run_until(2 * MSEC)
        assert disk.ops == 1
        assert disk.bytes_written == 192

    def test_batching_amortises_ops(self, loop):
        """256 writes -> 1 device op (the batching benefit of §3.4)."""
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=0)
        io = AsyncIOContext(loop, disk, buffer_requests=256,
                            flush_interval_ns=0)
        for _ in range(256):
            io.submit(1, 64, 0)
        loop.run()
        assert disk.ops == 1

    def test_invalid_buffer_size(self, loop):
        with pytest.raises(ValueError):
            AsyncIOContext(loop, DiskDevice(loop), buffer_requests=0)


class TestSyncIO:
    def test_every_write_blocks(self, loop):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=1000)
        io = SyncIOContext(loop, disk)
        assert not io.submit(1, 64, 0)
        assert io.blocked
        loop.run()
        assert not io.blocked

    def test_unblock_callback(self, loop):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=1000)
        called = []
        io = SyncIOContext(loop, disk, on_unblock=lambda: called.append(1))
        io.submit(1, 64, 0)
        loop.run()
        assert called == [1]


class TestNFWithIO:
    def test_sync_io_nf_blocks_per_packet(self, loop, config):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=10 * USEC)
        io = SyncIOContext(loop, disk)
        nf = NFProcess("logger", FixedCost(260), config=config, io=io)
        nf.rx_ring.enqueue(Flow("f"), 100, 0)
        result = nf.execute(0, SEC)
        assert result.outcome is ExecOutcome.IO_BLOCKED
        assert nf.processed_packets == 1

    def test_async_io_nf_continues(self, loop, config):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=10 * USEC)
        io = AsyncIOContext(loop, disk, buffer_requests=1000,
                            flush_interval_ns=0)
        nf = NFProcess("logger", FixedCost(260), config=config, io=io)
        nf.rx_ring.enqueue(Flow("f"), 100, 0)
        result = nf.execute(0, SEC)
        assert result.outcome is ExecOutcome.RAN_OUT
        assert nf.processed_packets == 100

    def test_io_selector_limits_io_flows(self, loop, config):
        disk = DiskDevice(loop, bandwidth_bps=8e9, op_latency_ns=0)
        io = AsyncIOContext(loop, disk, buffer_requests=10 ** 6,
                            flush_interval_ns=0)
        nf = NFProcess(
            "logger", FixedCost(260), config=config, io=io,
            io_selector=lambda flow: flow.flow_id == "logged",
        )
        logged, plain = Flow("logged"), Flow("plain")
        nf.rx_ring.enqueue(logged, 10, 0)
        nf.rx_ring.enqueue(plain, 10, 1)
        nf.execute(0, SEC)
        assert io.requests == 10

    def test_estimate_zero_while_io_blocked(self, loop, config):
        disk = DiskDevice(loop, bandwidth_bps=1.0, op_latency_ns=SEC)
        io = SyncIOContext(loop, disk)
        nf = NFProcess("logger", FixedCost(260), config=config, io=io)
        nf.rx_ring.enqueue(Flow("f"), 10, 0)
        nf.execute(0, SEC)  # blocks on first write
        assert nf.estimate_run_ns(0) == 0.0
